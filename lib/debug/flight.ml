(* Post-mortem flight recorder: a bounded ring buffer holding the last
   N target cycles of watched signals plus per-channel queue depths,
   dumped as a VCD + JSON bundle when the simulation dies — LI-BDN
   deadlock (through the network's deadlock hook), worker death,
   supervisor exhaustion, or an assertion failure.  The dump names the
   blocked channels and their last in-flight tokens, which is usually
   enough to localize a mis-cut partition boundary without re-running. *)

module Json = Telemetry.Json

type t = {
  fl_probes : Capture.probes;
  fl_tracks : Capture.track array;
  fl_offset : int;
  fl_depth : int;
  fl_dir : string;
  fl_net : Libdn.Network.t;
  fl_ring : (int * int array * int array) option array;  (* ring of samples *)
  mutable fl_next : int;  (* ring write position *)
  mutable fl_count : int;
  mutable fl_last_cycle : int;
  mutable fl_dumps : string list;  (* dump directories, newest first *)
}

let default_depth = 256

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

(** Records the watched values for target cycle [cycle], evicting the
    oldest sample once the ring is full.  Re-recording an
    already-recorded cycle is a no-op (rollback + re-execution safe). *)
let record t ~cycle =
  if cycle > t.fl_last_cycle then begin
    (* Read before committing: a failed read (e.g. a worker dying under
       a remote sample) must leave the ring untouched so a retry after
       recovery still records this cycle. *)
    let pv = t.fl_probes.Capture.pb_read () in
    let tv = Array.map (fun tr -> tr.Capture.tr_read ()) t.fl_tracks in
    t.fl_last_cycle <- cycle;
    t.fl_ring.(t.fl_next) <- Some (cycle, pv, tv);
    t.fl_next <- (t.fl_next + 1) mod t.fl_depth;
    t.fl_count <- min t.fl_depth (t.fl_count + 1)
  end

(* Ring contents, oldest first. *)
let samples t =
  let start = (t.fl_next - t.fl_count + t.fl_depth) mod t.fl_depth in
  List.init t.fl_count (fun i ->
      Option.get t.fl_ring.((start + i) mod t.fl_depth))

(* ------------------------------------------------------------------ *)
(* Dumping                                                             *)
(* ------------------------------------------------------------------ *)

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let slug reason =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' -> c | _ -> '-')
    (String.lowercase_ascii reason)

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

(* Per-channel live state: queue depth and the head (oldest in-flight)
   token, read straight from the network queues. *)
let channels_json t =
  Json.List
    (Libdn.Network.partitions t.fl_net
    |> Array.to_list
    |> List.concat_map (fun (p : Libdn.Network.partition) ->
           Array.to_list p.Libdn.Network.pt_ins
           |> List.map (fun (ic : Libdn.Network.in_chan) ->
                  let q = ic.Libdn.Network.ic_queue in
                  Json.Obj
                    [
                      ("partition", Json.String p.Libdn.Network.pt_name);
                      ( "channel",
                        Json.String ic.Libdn.Network.ic_spec.Libdn.Channel.name );
                      ("depth", Json.Int (Libdn.Channel.Bqueue.length q));
                      ( "last_token",
                        match Libdn.Channel.Bqueue.peek_opt q with
                        | Some tok ->
                          Json.List
                            (Array.to_list tok |> List.map (fun v -> Json.Int v))
                        | None -> Json.Null );
                    ])))

(** Dumps the ring as [flight.vcd] + [flight.json] under a fresh
    directory [<dir>/flight-c<cycle>-<reason>]; returns its path.
    [snapshot] supplies the structured network state when the caller
    already has one (the deadlock hook does); otherwise it is read
    live. *)
let dump ?snapshot t ~reason =
  let snap =
    match snapshot with Some s -> s | None -> Libdn.Network.introspect t.fl_net
  in
  let dir =
    Filename.concat t.fl_dir
      (Printf.sprintf "flight-c%d-%s"
         (max 0 t.fl_last_cycle)
         (slug reason))
  in
  mkdir_p dir;
  let samples = samples t in
  write_file
    (Filename.concat dir "flight.vcd")
    (Capture.render_vcd ~version:"fireaxe flight recorder" ~probes:t.fl_probes
       ~tracks:t.fl_tracks ~offset:t.fl_offset ~samples ());
  let first_cycle = match samples with (c, _, _) :: _ -> c | [] -> -1 in
  let json =
    Json.Obj
      [
        ("schema", Json.String "fireaxe-flight-1");
        ("reason", Json.String reason);
        ("first_cycle", Json.Int first_cycle);
        ("last_cycle", Json.Int t.fl_last_cycle);
        ("samples", Json.Int t.fl_count);
        ( "probes",
          Json.List
            (Array.to_list
               (Array.mapi
                  (fun i name ->
                    Json.Obj
                      [
                        ("name", Json.String name);
                        ("scope", Json.String t.fl_probes.Capture.pb_scopes.(i));
                        ("width", Json.Int t.fl_probes.Capture.pb_widths.(i));
                      ])
                  t.fl_probes.Capture.pb_names)) );
        ( "blocked",
          Json.List
            (Telemetry.Snapshot.blocked snap
            |> List.map (fun (part, chan) ->
                   Json.Obj
                     [
                       ("partition", Json.String part);
                       ("channel", Json.String chan);
                     ])) );
        ("channels", channels_json t);
        ("network", Telemetry.Snapshot.to_json snap);
      ]
  in
  write_file (Filename.concat dir "flight.json") (Json.to_string json);
  t.fl_dumps <- dir :: t.fl_dumps;
  dir

(* A dump must never mask the failure that triggered it. *)
let safe_dump ?snapshot t ~reason =
  try ignore (dump ?snapshot t ~reason) with _ -> ()

let last_dump t = match t.fl_dumps with [] -> None | d :: _ -> Some d
let dumps t = List.rev t.fl_dumps

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let make ?(depth = default_depth) ?(dir = "flight") ~probes ~tracks ~offset net =
  if depth <= 0 then invalid_arg "Flight.create: depth must be positive";
  let t =
    {
      fl_probes = probes;
      fl_tracks = tracks;
      fl_offset = offset;
      fl_depth = depth;
      fl_dir = dir;
      fl_net = net;
      fl_ring = Array.make depth None;
      fl_next = 0;
      fl_count = 0;
      fl_last_cycle = min_int;
      fl_dumps = [];
    }
  in
  (* A deadlock dumps automatically, with the raise site's snapshot. *)
  Libdn.Network.add_deadlock_hook net (fun snap ->
      safe_dump ~snapshot:snap t ~reason:"deadlock");
  t

(** Flight recorder over a partitioned handle: watches [probes]
    (resolved anywhere, local or remote) plus every boundary channel,
    keeps the last [depth] recorded cycles, dumps under [dir].
    Registers itself on the network's deadlock hook. *)
let of_handle ?depth ?dir ?(probes = []) h =
  make ?depth ?dir
    ~probes:(Capture.resolve h probes)
    ~tracks:(Capture.network_tracks h.Fireripper.Runtime.h_net)
    ~offset:(Capture.seed_offset h)
    h.Fireripper.Runtime.h_net

(** Flight recorder over a bare LI-BDN network (no plan/handle), for
    network-level harnesses: [probes] are (name, width, read) triples
    rendered under a [top] scope. *)
let of_network ?depth ?dir ?(probes = []) net =
  let names = Array.of_list (List.map (fun (n, _, _) -> n) probes) in
  let widths = Array.of_list (List.map (fun (_, w, _) -> w) probes) in
  let reads = Array.of_list (List.map (fun (_, _, r) -> r) probes) in
  make ?depth ?dir
    ~probes:
      {
        Capture.pb_names = names;
        pb_scopes = Array.make (Array.length names) "top";
        pb_widths = widths;
        pb_read = (fun () -> Array.map (fun r -> r ()) reads);
      }
    ~tracks:(Capture.network_tracks net) ~offset:0 net

(* ------------------------------------------------------------------ *)
(* Guarded execution                                                   *)
(* ------------------------------------------------------------------ *)

(** Runs [f], dumping the ring before re-raising when it dies of a
    worker crash, supervisor exhaustion, failed recovery, or a
    simulator error.  Deadlocks are already dumped by the network hook,
    so they pass through untouched. *)
let guard t f =
  try f () with
  | Libdn.Remote_engine.Worker_died _ as e ->
    safe_dump t ~reason:"worker-died";
    raise e
  | Resilience.Supervisor.Gave_up _ as e ->
    safe_dump t ~reason:"gave-up";
    raise e
  | Resilience.Supervisor.Recovery_failed _ as e ->
    safe_dump t ~reason:"recovery-failed";
    raise e
  | Rtlsim.Sim.Sim_error _ as e ->
    safe_dump t ~reason:"sim-error";
    raise e
