(* Partition-aware waveform capture (the §V-A debugging workflow's
   missing half): watch flattened signals ANYWHERE in a partitioned
   design — local units read through their backing simulator, remote
   units through one batched [sample] round trip per worker per cycle —
   plus the LI-BDN boundary channels as token-depth tracks, and render
   everything as a single GTKWave-loadable VCD with one scope per
   partition.

   Fast-mode alignment: fast partitioning seeds one zero token per
   boundary channel (§III-A2), so a channel's token for target cycle N
   sits in the consumer's queue one cycle late.  Channel-track events
   are therefore remapped onto target cycles by the seed offset at
   render time, so partitioned and monolithic waves line up under the
   same timestamps. *)

module R = Fireripper.Runtime

(** Signal names that resolved to no partition (or to a memory, which
    cannot be waveform-sampled). *)
exception Unknown_signal of string list

let () =
  Printexc.register_printer (function
    | Unknown_signal names ->
      Some
        (Printf.sprintf "waveform capture: no partition holds signal(s): %s"
           (String.concat ", " names))
    | _ -> None)

(** A resolved probe set: per-signal metadata plus ONE batched reader
    returning every current value in probe order. *)
type probes = {
  pb_names : string array;
  pb_scopes : string array;  (** owning unit name, per probe *)
  pb_widths : int array;
  pb_read : unit -> int array;
}

(** One extra waveform lane read from outside the probe set (channel
    queue depths). *)
type track = { tr_name : string; tr_width : int; tr_read : unit -> int }

type divergence = {
  dv_cycle : int;
  dv_signal : string;
  dv_a : int;  (** value in the first (golden) capture *)
  dv_b : int;  (** value in the second capture *)
}

(* ------------------------------------------------------------------ *)
(* Probe resolution                                                    *)
(* ------------------------------------------------------------------ *)

(** Resolves [names] against every unit of [handle] — local simulators
    first, then remote workers (one [width] query each) — and builds
    the batched reader: local probes are direct simulator reads, remote
    probes cost one [sample] round trip per worker per call.  Raises
    {!Unknown_signal} listing every name no unit holds as a signal. *)
let resolve h names =
  let names = Array.of_list names in
  let n = Array.length names in
  let n_units = Array.length h.R.h_sims in
  let unit_name k = h.R.h_plan.Fireripper.Plan.p_units.(k).Fireripper.Plan.u_name in
  let classify name =
    let rec go k =
      if k >= n_units then None
      else
        match h.R.h_sims.(k) with
        | Some sim -> (
          match Hashtbl.find_opt sim.Rtlsim.Sim.slots name with
          | Some slot -> Some (`Local (k, sim), sim.Rtlsim.Sim.widths.(slot))
          | None -> try_remote k)
        | None -> try_remote k
    and try_remote k =
      match h.R.h_remote.(k) with
      | Some conn -> (
        match Libdn.Remote_engine.signal_width conn name with
        | Some w -> Some (`Remote (k, conn), w)
        | None -> go (k + 1))
      | None -> go (k + 1)
    in
    go 0
  in
  let resolved = Array.map classify names in
  let unknown =
    Array.to_list names
    |> List.filteri (fun i _ -> resolved.(i) = None)
  in
  if unknown <> [] then raise (Unknown_signal unknown);
  let scopes = Array.make n "" in
  let widths = Array.make n 0 in
  let locals = ref [] in
  (* Remote probes grouped per worker so each costs one round trip. *)
  let remote_groups : (int, Libdn.Remote_engine.conn * (int * string) list ref) Hashtbl.t =
    Hashtbl.create 7
  in
  Array.iteri
    (fun i r ->
      match r with
      | None -> assert false
      | Some (`Local (k, sim), w) ->
        scopes.(i) <- unit_name k;
        widths.(i) <- w;
        locals := (sim, i, names.(i)) :: !locals
      | Some (`Remote (k, conn), w) ->
        scopes.(i) <- unit_name k;
        widths.(i) <- w;
        let _, group =
          match Hashtbl.find_opt remote_groups k with
          | Some g -> g
          | None ->
            let g = (conn, ref []) in
            Hashtbl.replace remote_groups k g;
            g
        in
        group := (i, names.(i)) :: !group)
    resolved;
  (* Hoist the name→slot hash lookup out of the per-cycle read: during
     capture every probe is read every target cycle, and the lookups
     dominate the sampling cost.  Lane 0's value array is stable for
     the life of the simulation, so the slot index alone suffices. *)
  let locals =
    Array.of_list
      (List.rev_map
         (fun (sim, i, name) -> (sim.Rtlsim.Sim.values, i, Rtlsim.Sim.slot sim name))
         !locals)
  in
  (* Unboxed parallel arrays: the read runs once per target cycle. *)
  let l_vals = Array.map (fun (v, _, _) -> v) locals in
  let l_idx = Array.map (fun (_, i, _) -> i) locals in
  let l_slot = Array.map (fun (_, _, s) -> s) locals in
  let n_local = Array.length locals in
  let remotes =
    Hashtbl.fold (fun _ (conn, group) acc -> (conn, List.rev !group) :: acc)
      remote_groups []
  in
  let read () =
    let out = Array.make n 0 in
    for k = 0 to n_local - 1 do
      out.(l_idx.(k)) <- l_vals.(k).(l_slot.(k))
    done;
    List.iter
      (fun (conn, group) ->
        let values = Libdn.Remote_engine.sample conn (List.map snd group) in
        List.iter2 (fun (i, _) v -> out.(i) <- v) group values)
      remotes;
    out
  in
  { pb_names = names; pb_scopes = scopes; pb_widths = widths; pb_read = read }

(** One queue-depth track per LI-BDN input channel of [net], named
    [<partition>.<channel>.depth]. *)
let network_tracks net =
  Libdn.Network.partitions net
  |> Array.to_list
  |> List.concat_map (fun (p : Libdn.Network.partition) ->
         Array.to_list p.Libdn.Network.pt_ins
         |> List.map (fun (ic : Libdn.Network.in_chan) ->
                {
                  tr_name =
                    Printf.sprintf "%s.%s.depth" p.Libdn.Network.pt_name
                      ic.Libdn.Network.ic_spec.Libdn.Channel.name;
                  tr_width = 16;
                  tr_read =
                    (fun () -> Libdn.Channel.Bqueue.length ic.Libdn.Network.ic_queue);
                }))
  |> Array.of_list

(* The injected boundary latency to subtract from channel-track
   timestamps: one cycle per seeded token in fast mode, none in exact
   mode (§III-A2). *)
let seed_offset h =
  match h.R.h_plan.Fireripper.Plan.p_mode with
  | Fireripper.Spec.Fast -> 1
  | Fireripper.Spec.Exact -> 0

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(** Renders (probes, tracks, samples-oldest-first) as a VCD document:
    one scope per distinct probe scope (first-appearance order, vars in
    probe order within each), plus a [channels] scope for the tracks.
    Track events are shifted [offset] cycles earlier (fast-mode
    remapping); events are merged time-sorted so timestamps stay
    monotone. *)
let render_vcd ?(version = "fireaxe debug") ~probes ~tracks ~offset ~samples () =
  let w = Rtlsim.Vcd.Writer.create ~version () in
  let n = Array.length probes.pb_names in
  let scopes =
    Array.fold_left
      (fun acc s -> if List.mem s acc then acc else s :: acc)
      [] probes.pb_scopes
    |> List.rev
  in
  let vars = Array.make n None in
  List.iter
    (fun scope ->
      Rtlsim.Vcd.Writer.scope w scope;
      Array.iteri
        (fun i name ->
          if probes.pb_scopes.(i) = scope then
            vars.(i) <-
              Some (Rtlsim.Vcd.Writer.var w ~name ~width:probes.pb_widths.(i)))
        probes.pb_names;
      Rtlsim.Vcd.Writer.upscope w)
    scopes;
  let tvars =
    if Array.length tracks = 0 then [||]
    else begin
      Rtlsim.Vcd.Writer.scope w "channels";
      let tv =
        Array.map
          (fun tr -> Rtlsim.Vcd.Writer.var w ~name:tr.tr_name ~width:tr.tr_width)
          tracks
      in
      Rtlsim.Vcd.Writer.upscope w;
      tv
    end
  in
  let events =
    List.concat_map
      (fun (c, pv, tv) ->
        let probe_ev = [ (c, `Probes pv) ] in
        if Array.length tvars > 0 && c - offset >= 0 then
          probe_ev @ [ (c - offset, `Tracks tv) ]
        else probe_ev)
      samples
    |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (time, ev) ->
      Rtlsim.Vcd.Writer.time w time;
      match ev with
      | `Probes pv ->
        Array.iteri
          (fun i v -> Rtlsim.Vcd.Writer.change w (Option.get vars.(i)) v)
          pv
      | `Tracks tv ->
        Array.iteri (fun i v -> Rtlsim.Vcd.Writer.change w tvars.(i) v) tv)
    events;
  Rtlsim.Vcd.Writer.contents w

(* ------------------------------------------------------------------ *)
(* Capture                                                             *)
(* ------------------------------------------------------------------ *)

type t = {
  cp_probes : probes;
  cp_tracks : track array;
  cp_offset : int;
  mutable cp_samples : (int * int array * int array) list;  (* newest first *)
  mutable cp_last_cycle : int;
}

let of_probes ?(tracks = [||]) ?(offset = 0) probes =
  { cp_probes = probes; cp_tracks = tracks; cp_offset = offset;
    cp_samples = []; cp_last_cycle = min_int }

(** Watches [probes] (flattened names, any partition, local or remote)
    of a partitioned handle; [channels] (default true) adds one
    queue-depth track per boundary channel.  Raises {!Unknown_signal}
    for unresolvable names. *)
let of_handle ?(channels = true) h ~probes =
  of_probes (resolve h probes)
    ~tracks:(if channels then network_tracks h.R.h_net else [||])
    ~offset:(seed_offset h)

(** Watches [probes] of a monolithic simulation — the golden side of a
    partitioned-vs-monolithic wave comparison. *)
let of_sim sim ~probes =
  let names = Array.of_list probes in
  let unknown =
    Array.to_list names
    |> List.filter (fun s -> not (Hashtbl.mem sim.Rtlsim.Sim.slots s))
  in
  if unknown <> [] then raise (Unknown_signal unknown);
  (* Same hoist as [resolve]: slot indices once, direct value-array
     reads per cycle. *)
  let slots = Array.map (fun s -> Hashtbl.find sim.Rtlsim.Sim.slots s) names in
  let vals = sim.Rtlsim.Sim.values in
  of_probes
    {
      pb_names = names;
      pb_scopes = Array.make (Array.length names) "top";
      pb_widths = Array.map (fun s -> sim.Rtlsim.Sim.widths.(s)) slots;
      pb_read = (fun () -> Array.map (fun s -> vals.(s)) slots);
    }

(** Records the watched values for target cycle [cycle] (call right
    after advancing to it).  Re-sampling an already-recorded cycle is a
    no-op, so supervisor-driven re-execution after a rollback cannot
    corrupt the trace. *)
let sample t ~cycle =
  if cycle > t.cp_last_cycle then begin
    (* Read before committing: a failed read (e.g. a worker dying under
       a remote sample) must leave the capture untouched so a retry
       after recovery still records this cycle. *)
    let pv = t.cp_probes.pb_read () in
    let tv = Array.map (fun tr -> tr.tr_read ()) t.cp_tracks in
    t.cp_last_cycle <- cycle;
    t.cp_samples <- (cycle, pv, tv) :: t.cp_samples
  end

let sample_count t = List.length t.cp_samples

let probe_names t = Array.to_list t.cp_probes.pb_names

(** The merged multi-scope VCD: one scope per partition plus the
    [channels] track scope, fast-mode channel events remapped. *)
let contents t =
  render_vcd ~version:"fireaxe debug capture" ~probes:t.cp_probes
    ~tracks:t.cp_tracks ~offset:t.cp_offset
    ~samples:(List.rev t.cp_samples) ()

(** The canonical probe-only VCD (single [top] scope, vars in probe
    order, no channel tracks): for the same probes and values this is
    byte-identical whether captured from a monolithic simulation or any
    partitioning of it. *)
let probe_trace t =
  let probes =
    { t.cp_probes with pb_scopes = Array.make (Array.length t.cp_probes.pb_names) "top" }
  in
  render_vcd ~version:"fireaxe probes" ~probes ~tracks:[||] ~offset:0
    ~samples:(List.rev t.cp_samples) ()

let save t ~path =
  let oc = open_out path in
  output_string oc (contents t);
  close_out oc

(** The probe samples re-encoded as a [fireaxe-wave-1] binary store
    (signal table in probe order, no channel tracks) — the affordable
    full-capture sink.  [Wavestore.Reader.to_vcd] of these bytes
    reproduces {!probe_trace} byte for byte. *)
let wave_contents t =
  let signals =
    Array.to_list
      (Array.map2 (fun n w -> (n, w)) t.cp_probes.pb_names t.cp_probes.pb_widths)
  in
  let w = Wavestore.Writer.create ~signals () in
  List.iter (fun (c, pv, _) -> Wavestore.Writer.sample w ~cycle:c pv)
    (List.rev t.cp_samples);
  Wavestore.Writer.contents w

let save_wave t ~path =
  let oc = open_out_bin path in
  output_string oc (wave_contents t);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Divergence localization                                             *)
(* ------------------------------------------------------------------ *)

(** The first (cycle, signal) at which two captures of the same probe
    list disagree — comparing cycles both sampled, lowest cycle first,
    probe order within a cycle.  [None] when every common sample
    matches.  Raises [Invalid_argument] when the probe lists differ. *)
let diff a b =
  if a.cp_probes.pb_names <> b.cp_probes.pb_names then
    invalid_arg "Capture.diff: captures watch different probe lists";
  let b_samples = Hashtbl.create 97 in
  List.iter (fun (c, pv, _) -> Hashtbl.replace b_samples c pv) b.cp_samples;
  let rec scan = function
    | [] -> None
    | (c, pv, _) :: rest -> (
      match Hashtbl.find_opt b_samples c with
      | None -> scan rest
      | Some qv ->
        let rec cmp i =
          if i >= Array.length pv then None
          else if pv.(i) <> qv.(i) then
            Some
              {
                dv_cycle = c;
                dv_signal = a.cp_probes.pb_names.(i);
                dv_a = pv.(i);
                dv_b = qv.(i);
              }
          else cmp (i + 1)
        in
        (match cmp 0 with Some _ as d -> d | None -> scan rest))
  in
  scan (List.rev a.cp_samples)
