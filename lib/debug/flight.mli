(** Post-mortem flight recorder: a bounded ring buffer of the last N
    target cycles of watched signals and boundary-channel depths,
    dumped automatically as a VCD + JSON bundle when the simulation
    dies — LI-BDN deadlock (via {!Libdn.Network.add_deadlock_hook}),
    worker death, supervisor exhaustion ({!guard}), or explicitly
    ({!dump}, e.g. on an assertion failure).  The JSON names the
    blocked channels and their last in-flight tokens. *)

type t

val default_depth : int

(** Flight recorder over a partitioned handle: watches [probes]
    (resolved anywhere — local or remote units; raises
    {!Capture.Unknown_signal} for unresolvable names) plus every
    boundary channel, keeps the last [depth] (default
    {!default_depth}) recorded cycles, dumps under [dir] (default
    ["flight"]).  Registers itself on the network's deadlock hook. *)
val of_handle :
  ?depth:int -> ?dir:string -> ?probes:string list -> Fireripper.Runtime.handle -> t

(** Flight recorder over a bare LI-BDN network: [probes] are
    (name, width, read) triples rendered under a [top] scope. *)
val of_network :
  ?depth:int ->
  ?dir:string ->
  ?probes:(string * int * (unit -> int)) list ->
  Libdn.Network.t ->
  t

(** Records the watched values for target cycle [cycle]; the oldest
    sample is evicted once the ring is full.  Re-recording a cycle is a
    no-op (rollback + re-execution safe). *)
val record : t -> cycle:int -> unit

(** Dumps the ring as [flight.vcd] + [flight.json] under a fresh
    directory [<dir>/flight-c<cycle>-<reason>]; returns its path.
    [snapshot] supplies the structured network state when already
    captured (the deadlock hook passes the raise site's). *)
val dump : ?snapshot:Telemetry.Snapshot.t -> t -> reason:string -> string

(** The newest dump directory, if any dump happened. *)
val last_dump : t -> string option

(** Every dump directory, oldest first. *)
val dumps : t -> string list

(** Runs [f], dumping the ring before re-raising when it dies of a
    worker crash ({!Libdn.Remote_engine.Worker_died}), supervisor
    exhaustion ({!Resilience.Supervisor.Gave_up}), failed recovery, or
    a simulator error.  Deadlocks are already dumped by the network
    hook and pass through untouched. *)
val guard : t -> (unit -> 'a) -> 'a
