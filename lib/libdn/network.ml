(* The LI-BDN simulation network (the heart of host-decoupled execution,
   Section II-A of the paper).

   Each partition wraps its target logic in a latency-insensitive
   bounded dataflow network: input channels carry tokens into the
   partition, output channels carry tokens out.  Every output channel
   has a firing rule — it may produce its token for target cycle N once
   every input channel it combinationally depends on holds a token for
   cycle N (an empty dependency set is a "source" channel that fires
   from register state alone).  A partition advances a target cycle
   (the fireFSM) when all of its input channels hold a token and all of
   its output channels have fired.

   This module is the passive *topology*: partitions, channels,
   connections, seed tokens, and the two primitive state transitions
   ({!try_fire}, {!try_advance}) those firing rules allow.  It does not
   decide WHEN to attempt them — that is the {!Scheduler}'s job, which
   may sweep partitions round-robin in one thread or run each partition
   on its own domain.  Tokens are the only cross-partition (and
   cross-domain) communication, mirroring the QSFP cable. *)

type in_chan = {
  ic_spec : Channel.spec;
  ic_queue : Channel.token Channel.Bqueue.t;
}

type out_chan = {
  oc_spec : Channel.spec;
  oc_deps : int list;  (** indices of input channels this one waits for *)
  oc_eval : unit -> unit;  (** evaluates the cone feeding this channel *)
  mutable oc_fired : bool;
  mutable oc_dests : (int * int) list;  (** (partition, input channel) *)
}

type partition = {
  pt_index : int;
  pt_name : string;
  pt_engine : Engine.t;
  pt_notif : Channel.Notifier.t;
      (** synchronization point shared by this partition's input queues *)
  pt_ins : in_chan array;
  pt_outs : out_chan array;
  mutable pt_cycle : int;
  mutable pt_drive : Engine.t -> int -> unit;
      (** Hook that sets the partition's external (non-channel) inputs
          for the given target cycle. *)
}

type t = {
  mutable parts : partition list;  (* reversed during construction *)
  mutable frozen : partition array;
  queue_capacity : int;
  token_transfers : int Atomic.t;  (** total tokens moved, for statistics *)
}

exception Deadlock of string

let default_queue_capacity = 1024

let create ?(queue_capacity = default_queue_capacity) () =
  { parts = []; frozen = [||]; queue_capacity; token_transfers = Atomic.make 0 }

(** Declares a partition.  [outs] gives each output channel's spec
    together with the names of the input channels it combinationally
    depends on. *)
let add_partition t ~name ~engine ~(ins : Channel.spec list)
    ~(outs : (Channel.spec * string list) list) =
  let notif = Channel.Notifier.create () in
  let pt_ins =
    Array.of_list
      (List.map
         (fun spec ->
           {
             ic_spec = spec;
             ic_queue = Channel.Bqueue.create ~capacity:t.queue_capacity ~notif;
           })
         ins)
  in
  let index_of_in n =
    match
      Array.to_list pt_ins
      |> List.mapi (fun i ic -> (i, ic))
      |> List.find_opt (fun (_, ic) -> ic.ic_spec.Channel.name = n)
    with
    | Some (i, _) -> i
    | None -> invalid_arg (Printf.sprintf "partition %s: no input channel %s" name n)
  in
  let pt_outs =
    Array.of_list
      (List.map
         (fun ((spec : Channel.spec), deps) ->
           {
             oc_spec = spec;
             oc_deps = List.map index_of_in deps;
             oc_eval = engine.Engine.make_cone_eval (List.map fst spec.Channel.ports);
             oc_fired = false;
             oc_dests = [];
           })
         outs)
  in
  let part =
    {
      pt_index = List.length t.parts;
      pt_name = name;
      pt_engine = engine;
      pt_notif = notif;
      pt_ins;
      pt_outs;
      pt_cycle = 0;
      pt_drive = (fun _ _ -> ());
    }
  in
  t.parts <- part :: t.parts;
  part.pt_index

let freeze t = if t.frozen = [||] then t.frozen <- Array.of_list (List.rev t.parts)

let partitions t =
  freeze t;
  t.frozen

let partition t i =
  freeze t;
  t.frozen.(i)

let find_out t part name =
  let p = partition t part in
  match
    Array.to_list p.pt_outs |> List.find_opt (fun oc -> oc.oc_spec.Channel.name = name)
  with
  | Some oc -> oc
  | None -> invalid_arg (Printf.sprintf "partition %s: no output channel %s" p.pt_name name)

let find_in_index t part name =
  let p = partition t part in
  let rec go i =
    if i >= Array.length p.pt_ins then
      invalid_arg (Printf.sprintf "partition %s: no input channel %s" p.pt_name name)
    else if p.pt_ins.(i).ic_spec.Channel.name = name then i
    else go (i + 1)
  in
  go 0

(** Connects an output channel to an input channel (possibly of the same
    partition).  Fan-out is allowed: each destination receives a copy of
    every token. *)
let connect t ~src:(sp, sc) ~dst:(dp, dc) =
  let oc = find_out t sp sc in
  let di = find_in_index t dp dc in
  oc.oc_dests <- (dp, di) :: oc.oc_dests

let never_abort () = false

(** Pre-loads a token into an input channel before the simulation starts
    (fast-mode initialization; Section III-A2). *)
let seed t ~part ~chan (tok : Channel.token) =
  let p = partition t part in
  Channel.Bqueue.push
    p.pt_ins.(find_in_index t part chan).ic_queue
    tok ~block:false ~abort:never_abort

let set_drive t part f = (partition t part).pt_drive <- f

let cycle_of t part = (partition t part).pt_cycle

let token_transfers t = Atomic.get t.token_transfers

(** Applies every partition's drive hook for target cycle 0.  Schedulers
    call this once at the start of each run. *)
let prime t =
  freeze t;
  Array.iter (fun p -> p.pt_drive p.pt_engine 0) t.frozen

let diagnose t =
  freeze t;
  let buf = Buffer.create 256 in
  Array.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "partition %s @ cycle %d:\n" p.pt_name p.pt_cycle);
      Array.iter
        (fun ic ->
          Buffer.add_string buf
            (Printf.sprintf "  in  %-24s queue=%d\n" ic.ic_spec.Channel.name
               (Channel.Bqueue.length ic.ic_queue)))
        p.pt_ins;
      Array.iter
        (fun oc ->
          Buffer.add_string buf
            (Printf.sprintf "  out %-24s fired=%b deps=[%s]\n" oc.oc_spec.Channel.name
               oc.oc_fired
               (String.concat ","
                  (List.map
                     (fun i -> p.pt_ins.(i).ic_spec.Channel.name)
                     oc.oc_deps))))
        p.pt_outs)
    t.frozen;
  Buffer.contents buf

(* Applies the head token of input channel [i] to the engine inputs. *)
let apply_head p i =
  let ic = p.pt_ins.(i) in
  match Channel.Bqueue.peek_opt ic.ic_queue with
  | Some tok -> Channel.apply_token ic.ic_spec p.pt_engine.Engine.set_input tok
  | None -> invalid_arg "apply_head: empty queue"

(** Attempts the output-channel firing rule: if [oc] has not fired for
    the current target cycle and every input channel it depends on holds
    a token, evaluates its cone and sends the token to all destinations.
    [block] selects backpressure behavior on a full destination queue
    (parallel scheduler blocks, sequential treats it as a hard error);
    [abort] lets a blocked push bail out.  Returns whether it fired. *)
let try_fire t p oc ~block ~abort =
  if
    (not oc.oc_fired)
    && List.for_all
         (fun i -> not (Channel.Bqueue.is_empty p.pt_ins.(i).ic_queue))
         oc.oc_deps
  then begin
    List.iter (apply_head p) oc.oc_deps;
    oc.oc_eval ();
    let tok = Channel.token_of_ports oc.oc_spec p.pt_engine.Engine.get in
    oc.oc_fired <- true;
    List.iter
      (fun (dp, di) ->
        Channel.Bqueue.push t.frozen.(dp).pt_ins.(di).ic_queue (Array.copy tok) ~block
          ~abort;
        Atomic.incr t.token_transfers)
      oc.oc_dests;
    true
  end
  else false

(** Attempts the fireFSM advance rule: if every input channel holds a
    token and every output channel has fired, applies the inputs, steps
    the engine one target cycle, consumes the tokens, resets the fired
    flags and calls the drive hook for the new cycle.  Returns whether
    it advanced. *)
let try_advance p =
  if
    Array.for_all (fun ic -> not (Channel.Bqueue.is_empty ic.ic_queue)) p.pt_ins
    && Array.for_all (fun oc -> oc.oc_fired) p.pt_outs
  then begin
    Array.iteri (fun i _ -> apply_head p i) p.pt_ins;
    p.pt_engine.Engine.eval_comb ();
    p.pt_engine.Engine.step_seq ();
    Array.iter (fun ic -> Channel.Bqueue.drop ic.ic_queue) p.pt_ins;
    Array.iter (fun oc -> oc.oc_fired <- false) p.pt_outs;
    p.pt_cycle <- p.pt_cycle + 1;
    p.pt_drive p.pt_engine p.pt_cycle;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Quiescence (deadlock detection)                                     *)
(* ------------------------------------------------------------------ *)

(* Whether the firing rules permit [p] any state transition, judged
   purely from token availability and fired flags — the same condition
   {!try_fire}/{!try_advance} test before touching the engine.  Reads
   are unsynchronized: only call when every domain that could mutate the
   state is parked (all-blocked in the parallel scheduler, or trivially
   in the sequential one). *)
let can_progress p =
  let can_fire oc =
    (not oc.oc_fired)
    && List.for_all
         (fun i -> not (Channel.Bqueue.is_empty_unsynchronized p.pt_ins.(i).ic_queue))
         oc.oc_deps
  in
  let can_advance =
    Array.for_all
      (fun ic -> not (Channel.Bqueue.is_empty_unsynchronized ic.ic_queue))
      p.pt_ins
    && Array.for_all (fun oc -> oc.oc_fired) p.pt_outs
  in
  Array.exists can_fire p.pt_outs || can_advance

(** True when no partition still short of [target] cycles can fire or
    advance: the network can never make progress again — the Fig. 2a
    circular-dependency deadlock.  Only meaningful when all partitions
    are quiescent (see {!can_progress}). *)
let quiescent t ~target =
  freeze t;
  Array.for_all (fun p -> p.pt_cycle >= target || not (can_progress p)) t.frozen

let deadlock_message t =
  "LI-BDN deadlock: network is quiescent — no output channel can fire and no \
   partition can advance\n" ^ diagnose t

(* ------------------------------------------------------------------ *)
(* Checkpoints and snapshots                                           *)
(* ------------------------------------------------------------------ *)

(** Captures the whole network's state — engine architectural state,
    in-flight channel tokens, per-channel fired flags and target cycles.
    The returned thunk rolls everything back, enabling re-execution from
    a checkpoint (e.g. to bisect for the first bad cycle after a long
    bug hunt). *)
let checkpoint t =
  freeze t;
  let parts =
    Array.map
      (fun p ->
        let queues =
          Array.map
            (fun ic -> List.map Array.copy (Channel.Bqueue.to_list ic.ic_queue))
            p.pt_ins
        in
        let fired = Array.map (fun oc -> oc.oc_fired) p.pt_outs in
        let restore_engine = p.pt_engine.Engine.checkpoint () in
        (p, queues, fired, restore_engine, p.pt_cycle))
      t.frozen
  in
  let transfers = Atomic.get t.token_transfers in
  fun () ->
    Array.iter
      (fun (p, queues, fired, restore_engine, cycle) ->
        restore_engine ();
        Array.iteri
          (fun i toks ->
            Channel.Bqueue.set_contents p.pt_ins.(i).ic_queue (List.map Array.copy toks))
          queues;
        Array.iteri (fun i f -> p.pt_outs.(i).oc_fired <- f) fired;
        p.pt_cycle <- cycle)
      parts;
    Atomic.set t.token_transfers transfers

(* Serializable counterpart of {!checkpoint}: plain data (no closures),
   so callers can write it to disk.  Engine architectural state is NOT
   included — the runtime layer serializes each unit's simulator state
   alongside. *)
type snapshot = {
  sn_parts : (Channel.token list array * bool array * int) array;
      (** per partition: in-channel queues, out-channel fired flags,
          target cycle *)
  sn_transfers : int;
}

let snapshot t =
  freeze t;
  {
    sn_parts =
      Array.map
        (fun p ->
          ( Array.map
              (fun ic -> List.map Array.copy (Channel.Bqueue.to_list ic.ic_queue))
              p.pt_ins,
            Array.map (fun oc -> oc.oc_fired) p.pt_outs,
            p.pt_cycle ))
        t.frozen;
    sn_transfers = Atomic.get t.token_transfers;
  }

let restore t sn =
  freeze t;
  if Array.length sn.sn_parts <> Array.length t.frozen then
    invalid_arg "Network.restore: partition count mismatch";
  Array.iteri
    (fun i p ->
      let queues, fired, cycle = sn.sn_parts.(i) in
      if Array.length queues <> Array.length p.pt_ins
         || Array.length fired <> Array.length p.pt_outs
      then invalid_arg "Network.restore: channel count mismatch";
      Array.iteri
        (fun j toks ->
          Channel.Bqueue.set_contents p.pt_ins.(j).ic_queue (List.map Array.copy toks))
        queues;
      Array.iteri (fun j f -> p.pt_outs.(j).oc_fired <- f) fired;
      p.pt_cycle <- cycle)
    t.frozen;
  Atomic.set t.token_transfers sn.sn_transfers
