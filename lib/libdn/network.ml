(* The LI-BDN simulation network (the heart of host-decoupled execution,
   Section II-A of the paper).

   Each partition wraps its target logic in a latency-insensitive
   bounded dataflow network: input channels carry tokens into the
   partition, output channels carry tokens out.  Every output channel
   has a firing rule — it may produce its token for target cycle N once
   every input channel it combinationally depends on holds a token for
   cycle N (an empty dependency set is a "source" channel that fires
   from register state alone).  A partition advances a target cycle
   (the fireFSM) when all of its input channels hold a token and all of
   its output channels have fired.

   This module is the passive *topology*: partitions, channels,
   connections, seed tokens, and the two primitive state transitions
   ({!try_fire}, {!try_advance}) those firing rules allow.  It does not
   decide WHEN to attempt them — that is the {!Scheduler}'s job, which
   may sweep partitions round-robin in one thread or run each partition
   on its own domain.  Tokens are the only cross-partition (and
   cross-domain) communication, mirroring the QSFP cable. *)

type in_chan = {
  ic_spec : Channel.spec;
  ic_queue : Channel.token Channel.Bqueue.t;
  ic_enq : Telemetry.counter;  (** tokens pushed into this queue *)
  ic_deq : Telemetry.counter;  (** tokens consumed by advances *)
  ic_peak : Telemetry.gauge;  (** peak queue occupancy observed *)
  ic_stalled : Telemetry.counter;
      (** times this input was the blocking one when its partition
          stalled (see {!blocking_input}) *)
  ic_prof : Telemetry.Profile.chan;
      (** per-channel exchange cost (enq+deq ns, batch sizes) *)
}

type out_chan = {
  oc_spec : Channel.spec;
  oc_deps : int list;  (** indices of input channels this one waits for *)
  oc_eval : unit -> unit;  (** evaluates the cone feeding this channel *)
  mutable oc_fired : bool;
  mutable oc_dests : (int * int) list;  (** (partition, input channel) *)
  oc_attempts : Telemetry.counter;  (** firing-rule attempts *)
  oc_fires : Telemetry.counter;  (** successful fires *)
}

type partition = {
  pt_index : int;
  pt_name : string;
  pt_engine : Engine.t;
  mutable pt_notif : Channel.Notifier.t;
      (** synchronization point shared by this partition's input queues
          (and, under fused domain placement, by the whole group's) *)
  pt_ins : in_chan array;
  pt_outs : out_chan array;
  mutable pt_cycle : int;
  mutable pt_drive : Engine.t -> int -> unit;
      (** Hook that sets the partition's external (non-channel) inputs
          for the given target cycle. *)
  pt_prof : Telemetry.Profile.part;
      (** the scheduler's run/exchange/spin/park/barrier timeline *)
}

type t = {
  mutable parts : partition list;  (* reversed during construction *)
  mutable frozen : partition array;
  queue_capacity : int;
  token_transfers : int Atomic.t;  (** total tokens moved, for statistics *)
  tel : Telemetry.t;
  tel_on : bool;
      (** cached [Telemetry.enabled tel]: gates instrumentation that must
          do extra work to compute a sample (queue lengths) *)
  prof : Telemetry.Profile.t;
  prof_on : bool;
      (** cached [Telemetry.Profile.enabled prof]: gates the clock reads
          around token pushes/drops *)
  mutable on_deadlock : (Telemetry.Snapshot.t -> unit) list;
      (** observers invoked (newest last) before {!raise_deadlock}
          raises — how a flight recorder dumps post-mortem state without
          this layer depending on it *)
  mutable groups : int array;
      (** domain-placement assignment: [groups.(i)] is partition [i]'s
          domain slot.  [[||]] (the default) means one domain per
          partition. *)
}

exception Deadlock of string

let default_queue_capacity = 1024

let create ?(queue_capacity = default_queue_capacity) ?(telemetry = Telemetry.null)
    ?(profile = Telemetry.Profile.null) () =
  {
    parts = [];
    frozen = [||];
    queue_capacity;
    token_transfers = Atomic.make 0;
    tel = telemetry;
    tel_on = Telemetry.enabled telemetry;
    prof = profile;
    prof_on = Telemetry.Profile.enabled profile;
    on_deadlock = [];
    groups = [||];
  }

let telemetry t = t.tel
let profile t = t.prof
let profile_enabled t = t.prof_on

(** Registers an observer of {!raise_deadlock}: it receives the
    structured snapshot before the {!Deadlock} exception propagates.
    Observer exceptions are swallowed — the deadlock must surface. *)
let add_deadlock_hook t f = t.on_deadlock <- f :: t.on_deadlock

(** Declares a partition.  [outs] gives each output channel's spec
    together with the names of the input channels it combinationally
    depends on. *)
let add_partition t ~name ~engine ~(ins : Channel.spec list)
    ~(outs : (Channel.spec * string list) list) =
  let notif = Channel.Notifier.create () in
  let in_metric chan kind =
    Printf.sprintf "net.%s.in.%s.%s" name chan kind
  in
  let out_metric chan kind =
    Printf.sprintf "net.%s.out.%s.%s" name chan kind
  in
  let pt_ins =
    Array.of_list
      (List.map
         (fun (spec : Channel.spec) ->
           let chan = spec.Channel.name in
           {
             ic_spec = spec;
             ic_queue = Channel.Bqueue.create ~capacity:t.queue_capacity ~notif;
             ic_enq = Telemetry.counter t.tel (in_metric chan "enq");
             ic_deq = Telemetry.counter t.tel (in_metric chan "deq");
             ic_peak = Telemetry.gauge t.tel (in_metric chan "peak");
             ic_stalled = Telemetry.counter t.tel (in_metric chan "stalled");
             ic_prof = Telemetry.Profile.channel t.prof ~part:name ~name:chan;
           })
         ins)
  in
  let index_of_in n =
    match
      Array.to_list pt_ins
      |> List.mapi (fun i ic -> (i, ic))
      |> List.find_opt (fun (_, ic) -> ic.ic_spec.Channel.name = n)
    with
    | Some (i, _) -> i
    | None -> invalid_arg (Printf.sprintf "partition %s: no input channel %s" name n)
  in
  let pt_outs =
    Array.of_list
      (List.map
         (fun ((spec : Channel.spec), deps) ->
           {
             oc_spec = spec;
             oc_deps = List.map index_of_in deps;
             oc_eval = engine.Engine.make_cone_eval (List.map fst spec.Channel.ports);
             oc_fired = false;
             oc_dests = [];
             oc_attempts = Telemetry.counter t.tel (out_metric spec.Channel.name "attempts");
             oc_fires = Telemetry.counter t.tel (out_metric spec.Channel.name "fires");
           })
         outs)
  in
  let part =
    {
      pt_index = List.length t.parts;
      pt_name = name;
      pt_engine = engine;
      pt_notif = notif;
      pt_ins;
      pt_outs;
      pt_cycle = 0;
      pt_drive = (fun _ _ -> ());
      pt_prof =
        Telemetry.Profile.part t.prof ~name ~index:(List.length t.parts);
    }
  in
  t.parts <- part :: t.parts;
  part.pt_index

let freeze t = if t.frozen = [||] then t.frozen <- Array.of_list (List.rev t.parts)

let partitions t =
  freeze t;
  t.frozen

let partition t i =
  freeze t;
  t.frozen.(i)

let find_out t part name =
  let p = partition t part in
  match
    Array.to_list p.pt_outs |> List.find_opt (fun oc -> oc.oc_spec.Channel.name = name)
  with
  | Some oc -> oc
  | None -> invalid_arg (Printf.sprintf "partition %s: no output channel %s" p.pt_name name)

let find_in_index t part name =
  let p = partition t part in
  let rec go i =
    if i >= Array.length p.pt_ins then
      invalid_arg (Printf.sprintf "partition %s: no input channel %s" p.pt_name name)
    else if p.pt_ins.(i).ic_spec.Channel.name = name then i
    else go (i + 1)
  in
  go 0

(** Connects an output channel to an input channel (possibly of the same
    partition).  Fan-out is allowed: each destination receives a copy of
    every token. *)
let connect t ~src:(sp, sc) ~dst:(dp, dc) =
  let oc = find_out t sp sc in
  let di = find_in_index t dp dc in
  oc.oc_dests <- (dp, di) :: oc.oc_dests

let never_abort () = false

(** Pre-loads a token into an input channel before the simulation starts
    (fast-mode initialization; Section III-A2). *)
let seed t ~part ~chan (tok : Channel.token) =
  let p = partition t part in
  Channel.Bqueue.push
    p.pt_ins.(find_in_index t part chan).ic_queue
    tok ~block:false ~abort:never_abort

let set_drive t part f = (partition t part).pt_drive <- f

let cycle_of t part = (partition t part).pt_cycle

let token_transfers t = Atomic.get t.token_transfers

(** Applies a domain-placement assignment: partitions sharing a slot in
    [assign] are fused onto one domain and one synchronization point —
    their notifiers (and their input queues') are re-pointed at a shared
    per-group notifier, so a producer waking any member wakes the
    domain that multiplexes them all.  Slots must cover 0..max
    contiguously in the sense that every value in [0, max] appears.
    Only legal between runs (no domain may be blocked on the old
    notifiers); the assignment sticks until replaced.  An empty array
    restores the default one-domain-per-partition mapping (fresh
    per-partition notifiers). *)
let set_groups t assign =
  freeze t;
  let n = Array.length t.frozen in
  let rewire p notif =
    p.pt_notif <- notif;
    Array.iter (fun ic -> Channel.Bqueue.set_notifier ic.ic_queue notif) p.pt_ins
  in
  if Array.length assign = 0 then begin
    Array.iter (fun p -> rewire p (Channel.Notifier.create ())) t.frozen;
    t.groups <- [||]
  end
  else begin
    if Array.length assign <> n then
      invalid_arg "Network.set_groups: one slot per partition required";
    let slots = 1 + Array.fold_left max 0 assign in
    Array.iter
      (fun g ->
        if g < 0 || g >= n then invalid_arg "Network.set_groups: slot out of range")
      assign;
    let notifs = Array.init slots (fun _ -> Channel.Notifier.create ()) in
    Array.iteri (fun i p -> rewire p notifs.(assign.(i))) t.frozen;
    t.groups <- Array.copy assign
  end

(** The current placement assignment ([[||]] = one domain per
    partition). *)
let groups t = t.groups

(** Applies every partition's drive hook for target cycle 0.  Schedulers
    call this once at the start of each run. *)
let prime t =
  freeze t;
  Array.iter (fun p -> p.pt_drive p.pt_engine 0) t.frozen

(** Captures the structured network-state snapshot every diagnostic
    derives from: per partition, the target cycle, input-queue depths,
    and each output channel's fired flag, dependencies and the empty
    subset of those dependencies currently blocking it. *)
let introspect t : Telemetry.Snapshot.t =
  freeze t;
  let parts =
    Array.to_list t.frozen
    |> List.map (fun p ->
           let in_name i = p.pt_ins.(i).ic_spec.Channel.name in
           {
             Telemetry.Snapshot.p_name = p.pt_name;
             p_index = p.pt_index;
             p_cycle = p.pt_cycle;
             p_inputs =
               Array.to_list p.pt_ins
               |> List.map (fun ic ->
                      {
                        Telemetry.Snapshot.in_chan = ic.ic_spec.Channel.name;
                        in_depth = Channel.Bqueue.length ic.ic_queue;
                      });
             p_outputs =
               Array.to_list p.pt_outs
               |> List.map (fun oc ->
                      {
                        Telemetry.Snapshot.out_chan = oc.oc_spec.Channel.name;
                        out_fired = oc.oc_fired;
                        out_deps = List.map in_name oc.oc_deps;
                        out_blocked_on =
                          (if oc.oc_fired then []
                           else
                             List.filter_map
                               (fun i ->
                                 if Channel.Bqueue.is_empty p.pt_ins.(i).ic_queue
                                 then Some (in_name i)
                                 else None)
                               oc.oc_deps);
                      });
           })
  in
  { Telemetry.Snapshot.parts }

let diagnose t = Telemetry.Snapshot.to_string (introspect t)

(* Applies the head token of input channel [i] to the engine inputs. *)
let apply_head p i =
  let ic = p.pt_ins.(i) in
  match Channel.Bqueue.peek_opt ic.ic_queue with
  | Some tok -> Channel.apply_token ic.ic_spec p.pt_engine.Engine.set_input tok
  | None -> invalid_arg "apply_head: empty queue"

(** Attempts the output-channel firing rule: if [oc] has not fired for
    the current target cycle and every input channel it depends on holds
    a token, evaluates its cone and sends the token to all destinations.
    [block] selects backpressure behavior on a full destination queue
    (parallel scheduler blocks, sequential treats it as a hard error);
    [abort] lets a blocked push bail out.  Returns whether it fired. *)
let try_fire t p oc ~block ~abort =
  Telemetry.incr oc.oc_attempts;
  if
    (not oc.oc_fired)
    && List.for_all
         (fun i -> not (Channel.Bqueue.is_empty p.pt_ins.(i).ic_queue))
         oc.oc_deps
  then begin
    List.iter (apply_head p) oc.oc_deps;
    oc.oc_eval ();
    let tok = Channel.token_of_ports_batch oc.oc_spec p.pt_engine.Engine.get_ports in
    oc.oc_fired <- true;
    List.iter
      (fun (dp, di) ->
        let dst = t.frozen.(dp).pt_ins.(di) in
        Channel.Bqueue.push dst.ic_queue (Array.copy tok) ~block ~abort;
        Atomic.incr t.token_transfers;
        if t.tel_on then begin
          Telemetry.incr dst.ic_enq;
          Telemetry.set_max dst.ic_peak (Channel.Bqueue.length dst.ic_queue)
        end)
      oc.oc_dests;
    Telemetry.incr oc.oc_fires;
    true
  end
  else false

(** Attempts the fireFSM advance rule: if every input channel holds a
    token and every output channel has fired, applies the inputs, steps
    the engine one target cycle, consumes the tokens, resets the fired
    flags and calls the drive hook for the new cycle.  Returns whether
    it advanced. *)
let try_advance p =
  if
    Array.for_all (fun ic -> not (Channel.Bqueue.is_empty ic.ic_queue)) p.pt_ins
    && Array.for_all (fun oc -> oc.oc_fired) p.pt_outs
  then begin
    Array.iteri (fun i _ -> apply_head p i) p.pt_ins;
    p.pt_engine.Engine.eval_comb ();
    p.pt_engine.Engine.step_seq ();
    Array.iter
      (fun ic ->
        Channel.Bqueue.drop ic.ic_queue;
        Telemetry.incr ic.ic_deq)
      p.pt_ins;
    Array.iter (fun oc -> oc.oc_fired <- false) p.pt_outs;
    p.pt_cycle <- p.pt_cycle + 1;
    p.pt_drive p.pt_engine p.pt_cycle;
    true
  end
  else false

(** One batched attempt over everything partition [p] can do — the
    amortized equivalent of [try_fire] on every output followed by
    [try_advance], designed to touch the shared queue locks a constant
    number of times per sweep instead of a few times per channel:

    - ONE notifier lock snapshots every input channel's head token.
      Sound because this partition's domain is the only consumer: a
      non-empty head stays the head until we drop it, and a token
      pushed after the snapshot is caught by the scheduler's version
      guard (the push bumps the version, forcing a re-sweep before any
      park).
    - Every locally-ready output fires from that snapshot; each head is
      applied to the engine at most once per sweep even when several
      outputs share the dependency.
    - The advance rule consumes all heads under ONE lock with a single
      wakeup bump, instead of a lock + broadcast per queue.

    Returns whether any transition happened. *)
let sweep t p ~block ~abort =
  freeze t;
  let n = p.pt_notif in
  let ni = Array.length p.pt_ins in
  let heads =
    if ni = 0 then [||]
    else begin
      Mutex.lock n.Channel.Notifier.n_mu;
      let hs =
        Array.map (fun ic -> Channel.Bqueue.peek_opt_unlocked ic.ic_queue) p.pt_ins
      in
      Mutex.unlock n.Channel.Notifier.n_mu;
      hs
    end
  in
  let applied = Array.make (max ni 1) false in
  let apply_once i =
    if not applied.(i) then begin
      applied.(i) <- true;
      match heads.(i) with
      | Some tok ->
        Channel.apply_token p.pt_ins.(i).ic_spec p.pt_engine.Engine.set_input tok
      | None -> invalid_arg "sweep: applying empty input"
    end
  in
  let have i = heads.(i) <> None in
  let progress = ref false in
  Array.iter
    (fun oc ->
      Telemetry.incr oc.oc_attempts;
      if (not oc.oc_fired) && List.for_all have oc.oc_deps then begin
        List.iter apply_once oc.oc_deps;
        oc.oc_eval ();
        let tok = Channel.token_of_ports_batch oc.oc_spec p.pt_engine.Engine.get_ports in
        oc.oc_fired <- true;
        List.iter
          (fun (dp, di) ->
            let dst = t.frozen.(dp).pt_ins.(di) in
            if t.prof_on then begin
              (* Enqueue cost lands on the destination channel and on
                 the executing partition's exchange slice. *)
              let t0 = Telemetry.Profile.now_ns t.prof in
              Channel.Bqueue.push dst.ic_queue (Array.copy tok) ~block ~abort;
              let dt = Telemetry.Profile.now_ns t.prof - t0 in
              Telemetry.Profile.add_enq dst.ic_prof ~tokens:1 dt;
              Telemetry.Profile.add_exchange p.pt_prof dt
            end
            else Channel.Bqueue.push dst.ic_queue (Array.copy tok) ~block ~abort;
            Atomic.incr t.token_transfers;
            if t.tel_on then begin
              Telemetry.incr dst.ic_enq;
              Telemetry.set_max dst.ic_peak (Channel.Bqueue.length dst.ic_queue)
            end)
          oc.oc_dests;
        Telemetry.incr oc.oc_fires;
        progress := true
      end)
    p.pt_outs;
  let all_inputs = Array.for_all Option.is_some heads in
  if all_inputs && Array.for_all (fun oc -> oc.oc_fired) p.pt_outs then begin
    for i = 0 to ni - 1 do
      apply_once i
    done;
    p.pt_engine.Engine.eval_comb ();
    p.pt_engine.Engine.step_seq ();
    if ni > 0 then begin
      (* The batched drop is one locked section for all ni heads; its
         cost is split evenly across the consumed channels. *)
      let t0 = if t.prof_on then Telemetry.Profile.now_ns t.prof else 0 in
      Mutex.lock n.Channel.Notifier.n_mu;
      Array.iter
        (fun ic ->
          Channel.Bqueue.drop_unlocked ic.ic_queue;
          Telemetry.incr ic.ic_deq)
        p.pt_ins;
      Channel.Notifier.bump n;
      Mutex.unlock n.Channel.Notifier.n_mu;
      if t.prof_on then begin
        let dt = Telemetry.Profile.now_ns t.prof - t0 in
        Telemetry.Profile.add_exchange p.pt_prof dt;
        let share = dt / ni in
        Array.iter
          (fun ic -> Telemetry.Profile.add_deq ic.ic_prof ~tokens:1 share)
          p.pt_ins
      end
    end;
    Array.iter (fun oc -> oc.oc_fired <- false) p.pt_outs;
    p.pt_cycle <- p.pt_cycle + 1;
    if t.prof_on then Telemetry.Profile.add_cycles p.pt_prof 1;
    p.pt_drive p.pt_engine p.pt_cycle;
    progress := true
  end;
  !progress

(** Cycle-batched sweep — the software generalization of the paper's
    fast-mode crossing amortization: fire and advance partition [p] for
    up to [max_cycles] consecutive target cycles from ONE snapshot of
    its input queues, deferring every cross-partition token until the
    end so the whole batch costs one locked snapshot, one locked
    multi-drop and one slab push per destination queue — instead of
    that much synchronization PER CYCLE.

    Equivalence with per-cycle exchange is by construction: the LI-BDN
    firing rules make token streams deterministic regardless of attempt
    order, and deferring a push is merely a different attempt order (the
    destination sees the same tokens in the same sequence, just later in
    wall time).  Exact mode therefore preserves LI-BDN timing bit-for-
    bit; fast mode works unchanged on top of its seed tokens (the seeded
    slack is precisely what lets a batch run longer than one cycle).

    Internals:
    - ONE notifier lock snapshots up to [max_cycles] tokens per input
      channel (sound: this domain is the sole consumer, so snapshot
      heads stay the heads until we drop them).
    - A local loop fires ready outputs and advances the fireFSM against
      cursor positions into the snapshot; produced tokens accumulate in
      per-output pending slabs.  Self-destined tokens are ALSO deferred
      — the next call picks them up, matching the unbatched sweep,
      which likewise never sees its own sweep's pushes (its head
      snapshot predates them).
    - Flush: first the consumed input heads are dropped under one lock
      with a single wakeup bump (freeing space for our producers —
      dropping BEFORE pushing is what keeps two mutually-full partitions
      from blocking on each other's flushes), then each pending slab is
      pushed with one {!Channel.Bqueue.push_list} per destination.

    Never advances past [limit] (the run target).  Returns
    [(cycles_advanced, any_progress)]; no pending state survives the
    call, so quiescence checks, checkpoints and introspection stay
    sound unchanged. *)
let sweep_batch t p ~limit ~max_cycles ~block ~abort =
  freeze t;
  let budget = min max_cycles (limit - p.pt_cycle) in
  if budget <= 1 then begin
    let c0 = p.pt_cycle in
    let progress = sweep t p ~block ~abort in
    (p.pt_cycle - c0, progress)
  end
  else begin
    let n = p.pt_notif in
    let ni = Array.length p.pt_ins in
    let heads =
      if ni = 0 then [||]
      else begin
        Mutex.lock n.Channel.Notifier.n_mu;
        let hs =
          Array.map
            (fun ic -> Channel.Bqueue.peek_upto_unlocked ic.ic_queue budget)
            p.pt_ins
        in
        Mutex.unlock n.Channel.Notifier.n_mu;
        hs
      end
    in
    let pos = Array.make (max ni 1) 0 in
    let applied = Array.make (max ni 1) (-1) in
    let no = Array.length p.pt_outs in
    let pending = Array.make (max no 1) [] in
    let progress = ref false in
    let advanced = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let step = !advanced in
      let avail i = pos.(i) < Array.length heads.(i) in
      let apply_once i =
        if applied.(i) < step then begin
          applied.(i) <- step;
          Channel.apply_token p.pt_ins.(i).ic_spec p.pt_engine.Engine.set_input
            heads.(i).(pos.(i))
        end
      in
      Array.iteri
        (fun oi oc ->
          Telemetry.incr oc.oc_attempts;
          if (not oc.oc_fired) && List.for_all avail oc.oc_deps then begin
            List.iter apply_once oc.oc_deps;
            oc.oc_eval ();
            let tok = Channel.token_of_ports_batch oc.oc_spec p.pt_engine.Engine.get_ports in
            oc.oc_fired <- true;
            if oc.oc_dests <> [] then pending.(oi) <- tok :: pending.(oi);
            Telemetry.incr oc.oc_fires;
            progress := true
          end)
        p.pt_outs;
      let all_inputs =
        let rec go i = i >= ni || (avail i && go (i + 1)) in
        go 0
      in
      if all_inputs && Array.for_all (fun oc -> oc.oc_fired) p.pt_outs then begin
        for i = 0 to ni - 1 do
          apply_once i
        done;
        p.pt_engine.Engine.eval_comb ();
        p.pt_engine.Engine.step_seq ();
        for i = 0 to ni - 1 do
          pos.(i) <- pos.(i) + 1
        done;
        Array.iter (fun oc -> oc.oc_fired <- false) p.pt_outs;
        p.pt_cycle <- p.pt_cycle + 1;
        incr advanced;
        progress := true;
        p.pt_drive p.pt_engine p.pt_cycle;
        if !advanced >= budget then continue_ := false
      end
      else continue_ := false
    done;
    if t.prof_on && !advanced > 0 then Telemetry.Profile.add_cycles p.pt_prof !advanced;
    (* Flush, drops first: every advance consumed one head per input. *)
    if ni > 0 && !advanced > 0 then begin
      let t0 = if t.prof_on then Telemetry.Profile.now_ns t.prof else 0 in
      Mutex.lock n.Channel.Notifier.n_mu;
      Array.iter
        (fun ic ->
          Channel.Bqueue.drop_n_unlocked ic.ic_queue !advanced;
          Telemetry.add ic.ic_deq !advanced)
        p.pt_ins;
      Channel.Notifier.bump n;
      Mutex.unlock n.Channel.Notifier.n_mu;
      if t.prof_on then begin
        let dt = Telemetry.Profile.now_ns t.prof - t0 in
        Telemetry.Profile.add_exchange p.pt_prof dt;
        let share = dt / ni in
        Array.iter
          (fun ic -> Telemetry.Profile.add_deq ic.ic_prof ~tokens:!advanced share)
          p.pt_ins
      end
    end;
    Array.iteri
      (fun oi oc ->
        match pending.(oi) with
        | [] -> ()
        | rev_toks ->
          let toks = List.rev rev_toks in
          let k = List.length toks in
          List.iter
            (fun (dp, di) ->
              let dst = t.frozen.(dp).pt_ins.(di) in
              let copies = List.map Array.copy toks in
              if t.prof_on then begin
                let t0 = Telemetry.Profile.now_ns t.prof in
                Channel.Bqueue.push_list dst.ic_queue copies ~block ~abort;
                let dt = Telemetry.Profile.now_ns t.prof - t0 in
                Telemetry.Profile.add_enq dst.ic_prof ~tokens:k dt;
                Telemetry.Profile.add_exchange p.pt_prof dt
              end
              else Channel.Bqueue.push_list dst.ic_queue copies ~block ~abort;
              ignore (Atomic.fetch_and_add t.token_transfers k);
              if t.tel_on then begin
                Telemetry.add dst.ic_enq k;
                Telemetry.set_max dst.ic_peak (Channel.Bqueue.length dst.ic_queue)
              end)
            oc.oc_dests)
      p.pt_outs;
    (!advanced, !progress)
  end

(* ------------------------------------------------------------------ *)
(* Quiescence (deadlock detection)                                     *)
(* ------------------------------------------------------------------ *)

(* Whether the firing rules permit [p] any state transition, judged
   purely from token availability and fired flags — the same condition
   {!try_fire}/{!try_advance} test before touching the engine.  Reads
   are unsynchronized: only call when every domain that could mutate the
   state is parked (all-blocked in the parallel scheduler, or trivially
   in the sequential one). *)
let can_progress p =
  let can_fire oc =
    (not oc.oc_fired)
    && List.for_all
         (fun i -> not (Channel.Bqueue.is_empty_unsynchronized p.pt_ins.(i).ic_queue))
         oc.oc_deps
  in
  let can_advance =
    Array.for_all
      (fun ic -> not (Channel.Bqueue.is_empty_unsynchronized ic.ic_queue))
      p.pt_ins
    && Array.for_all (fun oc -> oc.oc_fired) p.pt_outs
  in
  Array.exists can_fire p.pt_outs || can_advance

(** True when no partition still short of [target] cycles can fire or
    advance: the network can never make progress again — the Fig. 2a
    circular-dependency deadlock.  Only meaningful when all partitions
    are quiescent (see {!can_progress}). *)
let quiescent t ~target =
  freeze t;
  Array.for_all (fun p -> p.pt_cycle >= target || not (can_progress p)) t.frozen

(** The empty input channel currently gating [p]'s progress: a
    dependency of an unfired output, or — when every output has fired —
    an empty input blocking the advance rule.  Unsynchronized reads
    (telemetry attribution only, so a racing push is harmless). *)
let blocking_input p =
  let empty i = Channel.Bqueue.is_empty_unsynchronized p.pt_ins.(i).ic_queue in
  let from_outputs =
    Array.to_list p.pt_outs
    |> List.find_map (fun oc ->
           if oc.oc_fired then None else List.find_opt empty oc.oc_deps)
  in
  let from_advance () =
    if Array.for_all (fun oc -> oc.oc_fired) p.pt_outs then
      let rec go i =
        if i >= Array.length p.pt_ins then None
        else if empty i then Some i
        else go (i + 1)
      in
      go 0
    else None
  in
  (match from_outputs with Some _ as s -> s | None -> from_advance ())
  |> Option.map (fun i -> p.pt_ins.(i))

(** Attributes one stall of [p] to its blocking input channel (bumps its
    [stalled] counter) and returns the channel name, for span labels. *)
let record_stall p =
  match blocking_input p with
  | None -> None
  | Some ic ->
    Telemetry.incr ic.ic_stalled;
    Some ic.ic_spec.Channel.name

let deadlock_message t =
  "LI-BDN deadlock: network is quiescent — no output channel can fire and no \
   partition can advance\n" ^ diagnose t

(** Captures the structured snapshot, records it on the network's
    telemetry sinks (metrics registry and trace collector), and raises
    {!Deadlock} with the human rendering embedded in the message. *)
let raise_deadlock t =
  let snap = introspect t in
  Telemetry.record_deadlock t.tel snap;
  List.iter (fun f -> try f snap with _ -> ()) (List.rev t.on_deadlock);
  raise
    (Deadlock
       ("LI-BDN deadlock: network is quiescent — no output channel can fire \
         and no partition can advance\n"
       ^ Telemetry.Snapshot.to_string snap))

(* ------------------------------------------------------------------ *)
(* Checkpoints and snapshots                                           *)
(* ------------------------------------------------------------------ *)

(** Captures the whole network's state — engine architectural state,
    in-flight channel tokens, per-channel fired flags and target cycles.
    The returned thunk rolls everything back, enabling re-execution from
    a checkpoint (e.g. to bisect for the first bad cycle after a long
    bug hunt). *)
let checkpoint t =
  freeze t;
  let parts =
    Array.map
      (fun p ->
        let queues =
          Array.map
            (fun ic -> List.map Array.copy (Channel.Bqueue.to_list ic.ic_queue))
            p.pt_ins
        in
        let fired = Array.map (fun oc -> oc.oc_fired) p.pt_outs in
        let restore_engine = p.pt_engine.Engine.checkpoint () in
        (p, queues, fired, restore_engine, p.pt_cycle))
      t.frozen
  in
  let transfers = Atomic.get t.token_transfers in
  fun () ->
    Array.iter
      (fun (p, queues, fired, restore_engine, cycle) ->
        restore_engine ();
        Array.iteri
          (fun i toks ->
            Channel.Bqueue.set_contents p.pt_ins.(i).ic_queue (List.map Array.copy toks))
          queues;
        Array.iteri (fun i f -> p.pt_outs.(i).oc_fired <- f) fired;
        p.pt_cycle <- cycle)
      parts;
    Atomic.set t.token_transfers transfers

(* Serializable counterpart of {!checkpoint}: plain data (no closures),
   so callers can write it to disk.  Engine architectural state is NOT
   included — the runtime layer serializes each unit's simulator state
   alongside. *)
type snapshot = {
  sn_parts : (Channel.token list array * bool array * int) array;
      (** per partition: in-channel queues, out-channel fired flags,
          target cycle *)
  sn_transfers : int;
}

let snapshot t =
  freeze t;
  {
    sn_parts =
      Array.map
        (fun p ->
          ( Array.map
              (fun ic -> List.map Array.copy (Channel.Bqueue.to_list ic.ic_queue))
              p.pt_ins,
            Array.map (fun oc -> oc.oc_fired) p.pt_outs,
            p.pt_cycle ))
        t.frozen;
    sn_transfers = Atomic.get t.token_transfers;
  }

let restore t sn =
  freeze t;
  if Array.length sn.sn_parts <> Array.length t.frozen then
    invalid_arg "Network.restore: partition count mismatch";
  Array.iteri
    (fun i p ->
      let queues, fired, cycle = sn.sn_parts.(i) in
      if Array.length queues <> Array.length p.pt_ins
         || Array.length fired <> Array.length p.pt_outs
      then invalid_arg "Network.restore: channel count mismatch";
      Array.iteri
        (fun j toks ->
          Channel.Bqueue.set_contents p.pt_ins.(j).ic_queue (List.map Array.copy toks))
        queues;
      Array.iteri (fun j f -> p.pt_outs.(j).oc_fired <- f) fired;
      p.pt_cycle <- cycle)
    t.frozen;
  Atomic.set t.token_transfers sn.sn_transfers
