(** The LI-BDN simulation network (paper §II-A): partitions exchange
    per-cycle tokens over latency-insensitive channels; each output
    channel fires once its combinational dependencies hold tokens; a
    partition advances (fireFSM) when all inputs hold tokens and all
    outputs have fired.

    This module is the passive topology plus the two primitive state
    transitions the firing rules allow ({!try_fire}, {!try_advance});
    deciding when to attempt them belongs to {!Scheduler}, which can
    sweep partitions in one thread or run each on its own domain. *)

type in_chan = {
  ic_spec : Channel.spec;
  ic_queue : Channel.token Channel.Bqueue.t;
  ic_enq : Telemetry.counter;
  ic_deq : Telemetry.counter;
  ic_peak : Telemetry.gauge;
  ic_stalled : Telemetry.counter;
  ic_prof : Telemetry.Profile.chan;
}

type out_chan = {
  oc_spec : Channel.spec;
  oc_deps : int list;
  oc_eval : unit -> unit;
  mutable oc_fired : bool;
  mutable oc_dests : (int * int) list;
  oc_attempts : Telemetry.counter;
  oc_fires : Telemetry.counter;
}

type partition = {
  pt_index : int;
  pt_name : string;
  pt_engine : Engine.t;
  mutable pt_notif : Channel.Notifier.t;
  pt_ins : in_chan array;
  pt_outs : out_chan array;
  mutable pt_cycle : int;
  mutable pt_drive : Engine.t -> int -> unit;
  pt_prof : Telemetry.Profile.part;
}

type t

exception Deadlock of string

(** [queue_capacity] bounds every input channel queue (default
    {!default_queue_capacity}); the parallel scheduler backpressures on
    a full queue, the sequential one treats it as a hard error.
    [telemetry] (default {!Telemetry.null}, free on the hot path) makes
    every channel register per-channel counters and gauges. *)
val create :
  ?queue_capacity:int -> ?telemetry:Telemetry.t -> ?profile:Telemetry.Profile.t -> unit -> t

val default_queue_capacity : int

(** The sink the network records into ({!Telemetry.null} if none was
    given). *)
val telemetry : t -> Telemetry.t

(** The profile sink the network (and the schedulers running it)
    record into ({!Telemetry.Profile.null} if none was given). *)
val profile : t -> Telemetry.Profile.t

val profile_enabled : t -> bool

(** Declares a partition; [outs] pairs each output channel with the
    names of the input channels it combinationally depends on.  Returns
    the partition index.  Add all partitions before connecting. *)
val add_partition :
  t ->
  name:string ->
  engine:Engine.t ->
  ins:Channel.spec list ->
  outs:(Channel.spec * string list) list ->
  int

val partition : t -> int -> partition

(** All partitions, in declaration order (freezes the topology). *)
val partitions : t -> partition array

(** Connects an output channel to an input channel; fan-out allowed. *)
val connect : t -> src:int * string -> dst:int * string -> unit

(** Pre-loads a token (fast-mode seeding, §III-A2). *)
val seed : t -> part:int -> chan:string -> Channel.token -> unit

(** Per-cycle hook setting a partition's external inputs. *)
val set_drive : t -> int -> (Engine.t -> int -> unit) -> unit

val cycle_of : t -> int -> int
val token_transfers : t -> int

(** Applies a domain-placement assignment: partitions sharing a slot
    are fused onto one domain and one shared notifier (their input
    queues re-pointed), so the parallel scheduler spawns one domain per
    group instead of one per partition.  Only legal between runs; an
    empty array restores one-domain-per-partition (fresh notifiers). *)
val set_groups : t -> int array -> unit

(** The current placement assignment ([[||]] = one domain per
    partition). *)
val groups : t -> int array

(** Applies every partition's drive hook for target cycle 0; schedulers
    call this once at the start of each run. *)
val prime : t -> unit

(** Structured network-state snapshot — per partition: target cycle,
    input-queue depths, unfired outputs with their dependencies and the
    empty subset currently blocking them.  Every diagnostic rendering
    derives from this. *)
val introspect : t -> Telemetry.Snapshot.t

(** Human rendering of {!introspect}, used in deadlock messages. *)
val diagnose : t -> string

(** Attempts the output-channel firing rule; returns whether it fired.
    [block] selects backpressure behavior on full destination queues
    ([true] in the parallel scheduler); [abort] lets a blocked push bail
    out. *)
val try_fire :
  t -> partition -> out_chan -> block:bool -> abort:(unit -> bool) -> bool

(** Attempts the fireFSM advance rule (consume one token per input,
    step the engine one target cycle, reset fired flags); returns
    whether it advanced. *)
val try_advance : partition -> bool

(** One batched attempt over everything [p] can do: a single notifier
    lock snapshots all input heads, every locally-ready output fires
    from the snapshot (each head applied to the engine at most once),
    and the advance rule consumes all heads under one lock with a
    single wakeup bump.  Equivalent to [try_fire] on every output then
    [try_advance], with constant lock traffic per sweep.  Returns
    whether any transition happened. *)
val sweep : t -> partition -> block:bool -> abort:(unit -> bool) -> bool

(** Cycle-batched {!sweep} — the software generalization of the paper's
    fast-mode crossing amortization: fires and advances [p] for up to
    [max_cycles] consecutive target cycles (never past [limit]) from
    ONE locked snapshot of its input queues, deferring every produced
    token into per-output slabs flushed at the end (consumed heads
    dropped under one lock, then one {!Channel.Bqueue.push_list} per
    destination).  Bit-exact vs per-cycle exchange by LI-BDN
    determinism — deferral is merely a different attempt order.  No
    pending state survives the call.  Returns
    [(cycles_advanced, any_progress)]. *)
val sweep_batch :
  t ->
  partition ->
  limit:int ->
  max_cycles:int ->
  block:bool ->
  abort:(unit -> bool) ->
  int * bool

(** Whether the firing rules permit [p] any transition, judged purely
    from token availability and fired flags.  Unsynchronized reads —
    only call when every mutating domain is parked. *)
val can_progress : partition -> bool

(** True when no partition short of [target] cycles can fire or advance:
    the Fig. 2a deadlock.  Only meaningful when all partitions are
    quiescent. *)
val quiescent : t -> target:int -> bool

(** The empty input channel currently gating [p]'s progress, if any.
    Unsynchronized reads — telemetry attribution only. *)
val blocking_input : partition -> in_chan option

(** Attributes one stall of [p] to its blocking input (bumping its
    [stalled] counter); returns the channel name for span labels. *)
val record_stall : partition -> string option

(** The message schedulers put in {!Deadlock} (includes {!diagnose}). *)
val deadlock_message : t -> string

(** Registers an observer of {!raise_deadlock}: it receives the
    structured snapshot before the {!Deadlock} exception propagates
    (how a flight recorder dumps post-mortem state without this layer
    depending on it).  Observer exceptions are swallowed. *)
val add_deadlock_hook : t -> (Telemetry.Snapshot.t -> unit) -> unit

(** Captures {!introspect}, records it on the telemetry sinks (metrics
    registry and trace collector), notifies {!add_deadlock_hook}
    observers, and raises {!Deadlock} with the human rendering embedded
    in the message. *)
val raise_deadlock : t -> 'a

(** Captures the whole network (engine state, in-flight tokens, fired
    flags, cycles); the returned thunk rolls everything back. *)
val checkpoint : t -> unit -> unit

(** Serializable counterpart of {!checkpoint}: plain data (per-partition
    in-channel queues, fired flags and cycles), no engine state — the
    caller serializes unit simulator state alongside. *)
type snapshot = {
  sn_parts : (Channel.token list array * bool array * int) array;
  sn_transfers : int;
}

val snapshot : t -> snapshot

(** Restores a snapshot into a network of the same shape (same plan). *)
val restore : t -> snapshot -> unit
