(* Execution-engine abstraction used by the LI-BDN network.

   A partition's target logic can be executed by different engines: a
   plain RTL simulation (the common case, via [of_sim]) or a FAME-5
   multi-threaded simulation sharing one combinational evaluator across
   several register-state banks (built in Goldengate.Fame5). *)

type t = {
  set_input : string -> int -> unit;
  get : string -> int;
  get_ports : string list -> int list;
      (** Batched read of several signals, in request order — one
          protocol round trip for remote engines (the per-channel token
          gather), a plain map for local ones. *)
  eval_comb : unit -> unit;
  step_seq : unit -> unit;
  make_cone_eval : string list -> unit -> unit;
      (** Compiled partial evaluation of the combinational cone feeding
          the given signals; see {!Rtlsim.Sim.make_cone_eval}. *)
  output_comb_deps : string -> string list;
      (** Input ports the named output port combinationally depends on. *)
  checkpoint : unit -> unit -> unit;
      (** Captures the engine's architectural state; the returned thunk
          restores it. *)
}

let of_sim sim =
  let analysis = sim.Rtlsim.Sim.analysis in
  {
    (* Broadcast stimulus: with N lanes the engine advances N identical
       copies in lockstep, so every lane sees every input.  (Reads come
       from lane 0; all lanes agree under broadcast driving.) *)
    set_input = Rtlsim.Sim.set_input_all sim;
    get = Rtlsim.Sim.get sim;
    get_ports = List.map (Rtlsim.Sim.get sim);
    eval_comb = (fun () -> Rtlsim.Sim.eval_comb sim);
    step_seq = (fun () -> Rtlsim.Sim.step_seq sim);
    make_cone_eval = Rtlsim.Sim.make_cone_eval sim;
    output_comb_deps = (fun port -> Firrtl.Analysis.comb_inputs analysis port);
    checkpoint = (fun () -> Rtlsim.Sim.checkpoint sim);
  }

let of_flat ?engine ?lanes flat = of_sim (Rtlsim.Sim.create ?engine ?lanes flat)
