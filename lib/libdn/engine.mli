(** Execution-engine abstraction used by the LI-BDN network: a
    partition's target logic may be a plain RTL simulation ({!of_sim})
    or a FAME-5 multithreaded simulation (see [Goldengate.Fame5]). *)

type t = {
  set_input : string -> int -> unit;
  get : string -> int;
  eval_comb : unit -> unit;
  step_seq : unit -> unit;
  make_cone_eval : string list -> unit -> unit;
      (** Compiled partial evaluation of the combinational cone feeding
          the given signals. *)
  output_comb_deps : string -> string list;
      (** Input ports the named output port combinationally depends on. *)
  checkpoint : unit -> unit -> unit;
      (** Captures the engine's architectural state; the returned thunk
          restores it. *)
}

val of_sim : Rtlsim.Sim.t -> t

(** Builds a fresh simulation of [flat] and wraps it; [engine] selects
    the evaluation engine ({!Rtlsim.Sim.default_engine} otherwise) and
    [lanes] its lane count (default 1).  With several lanes the wrapped
    engine broadcasts inputs to every lane, advancing N identical
    copies of the design in lockstep. *)
val of_flat : ?engine:Rtlsim.Sim.engine -> ?lanes:int -> Firrtl.Ast.module_def -> t
