(** Execution-engine abstraction used by the LI-BDN network: a
    partition's target logic may be a plain RTL simulation ({!of_sim})
    or a FAME-5 multithreaded simulation (see [Goldengate.Fame5]). *)

type t = {
  set_input : string -> int -> unit;
  get : string -> int;
  get_ports : string list -> int list;
      (** Batched read of several signals, in request order.  The
          network gathers each fired channel's token through this, so a
          remote engine pays one protocol round trip per CHANNEL (the
          worker's [sample] command) instead of one per port. *)
  eval_comb : unit -> unit;
  step_seq : unit -> unit;
  make_cone_eval : string list -> unit -> unit;
      (** Compiled partial evaluation of the combinational cone feeding
          the given signals. *)
  output_comb_deps : string -> string list;
      (** Input ports the named output port combinationally depends on. *)
  checkpoint : unit -> unit -> unit;
      (** Captures the engine's architectural state; the returned thunk
          restores it. *)
}

val of_sim : Rtlsim.Sim.t -> t

(** Builds a fresh simulation of [flat] and wraps it; [engine] selects
    the evaluation engine ({!Rtlsim.Sim.default_engine} otherwise) and
    [lanes] its lane count (default 1).  With several lanes the wrapped
    engine broadcasts inputs to every lane, advancing N identical
    copies of the design in lockstep. *)
val of_flat : ?engine:Rtlsim.Sim.engine -> ?lanes:int -> Firrtl.Ast.module_def -> t
