(** Schedulers: execution policies over a passive {!Network} topology.

    The LI-BDN firing rules make token streams deterministic regardless
    of attempt order, so both schedulers compute cycle-identical
    register state:

    - {!Sequential} — single-threaded round-robin sweep (the reference
      implementation; best for cycle-stepping drivers).
    - {!Parallel} — one OCaml 5 domain per partition, tokens through
      bounded thread-safe queues as the only synchronization (the
      software mirror of one-FPGA-per-partition; best for long
      free-running simulations of multi-partition designs).

    Deadlock (Fig. 2a) is detected in both by the same authoritative
    quiescence check ({!Network.quiescent}). *)

type t = Sequential | Parallel

val default : t
(** {!Sequential}. *)

val name : t -> string
(** ["seq"] / ["par"]. *)

val accepted_names : string list
(** The spellings {!of_string} accepts:
    ["seq"]/["sequential"]/["par"]/["parallel"]. *)

val of_string : string -> (t, string) result
(** Accepts {!accepted_names}; the error lists them. *)

val default_batch_cycles : int
(** [1]: per-cycle token exchange unless a cap is passed explicitly. *)

(** Runs every partition up to [cycles] target cycles; raises
    {!Network.Deadlock} if the network quiesces short of the target.

    [batch_cycles] caps cycle-batched token exchange
    ({!Network.sweep_batch}): partitions fire/advance up to that many
    consecutive target cycles per synchronization.  The parallel policy
    adapts the actual batch depth per partition within the cap —
    starting at 1, doubling while batches run their full budget,
    halving when a visit starves — so a cap that is too large for the
    topology's slack costs nothing.  Bit-exact vs [batch_cycles = 1] by
    LI-BDN determinism.

    [spin_budget] tunes the spin-then-park idle policy: the initial
    (and maximum) busy-poll budget before a worker parks; [0] disables
    spinning entirely. *)
val run :
  ?scheduler:t ->
  ?batch_cycles:int ->
  ?spin_budget:int ->
  Network.t ->
  cycles:int ->
  unit

(** Runs until [pred] holds or all partitions reach [max_cycles];
    returns partition 0's cycle.  Sequential checks [pred] after each
    sweep (note a [batch_cycles] cap > 1 coarsens that sampling to the
    batch boundary); Parallel checks at whole-cycle barriers (all
    partition domains joined, so [pred] never races with them). *)
val run_until :
  ?scheduler:t ->
  ?batch_cycles:int ->
  ?spin_budget:int ->
  Network.t ->
  max_cycles:int ->
  (Network.t -> bool) ->
  int

(** Overrides the host-domain count the parallel policy sizes itself to
    ([Domain.recommended_domain_count] by default; [0] restores it).
    Lets benches and tests exercise the real-domain path — and measure
    the profiler against a like-for-like baseline — on hosts whose
    hardware thread count would force the cooperative fallback. *)
val set_host_domains : int -> unit

(** The host-domain count the parallel policy currently sizes itself to
    (the override if set, else [Domain.recommended_domain_count]).
    Placement passes use this as the default bin count. *)
val effective_host_domains : unit -> int

(** Longest-processing-time greedy bin packing: assigns one weight per
    partition to at most [domains] bins (heaviest first into the
    least-loaded), returning the bin slot per partition with slots
    numbered contiguously from 0.  The kernel of load-balanced domain
    placement; deterministic. *)
val pack : weights:int array -> domains:int -> int array
