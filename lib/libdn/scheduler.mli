(** Schedulers: execution policies over a passive {!Network} topology.

    The LI-BDN firing rules make token streams deterministic regardless
    of attempt order, so both schedulers compute cycle-identical
    register state:

    - {!Sequential} — single-threaded round-robin sweep (the reference
      implementation; best for cycle-stepping drivers).
    - {!Parallel} — one OCaml 5 domain per partition, tokens through
      bounded thread-safe queues as the only synchronization (the
      software mirror of one-FPGA-per-partition; best for long
      free-running simulations of multi-partition designs).

    Deadlock (Fig. 2a) is detected in both by the same authoritative
    quiescence check ({!Network.quiescent}). *)

type t = Sequential | Parallel

val default : t
(** {!Sequential}. *)

val name : t -> string
(** ["seq"] / ["par"]. *)

val accepted_names : string list
(** The spellings {!of_string} accepts:
    ["seq"]/["sequential"]/["par"]/["parallel"]. *)

val of_string : string -> (t, string) result
(** Accepts {!accepted_names}; the error lists them. *)

(** Runs every partition up to [cycles] target cycles; raises
    {!Network.Deadlock} if the network quiesces short of the target. *)
val run : ?scheduler:t -> Network.t -> cycles:int -> unit

(** Runs until [pred] holds or all partitions reach [max_cycles];
    returns partition 0's cycle.  Sequential checks [pred] after each
    sweep; Parallel checks at whole-cycle barriers (all partition
    domains joined, so [pred] never races with them). *)
val run_until : ?scheduler:t -> Network.t -> max_cycles:int -> (Network.t -> bool) -> int

(** Overrides the host-domain count the parallel policy sizes itself to
    ([Domain.recommended_domain_count] by default; [0] restores it).
    Lets benches and tests exercise the real-domain path — and measure
    the profiler against a like-for-like baseline — on hosts whose
    hardware thread count would force the cooperative fallback. *)
val set_host_domains : int -> unit
