(** Latency-insensitive channel descriptions: a channel aggregates a set
    of same-direction boundary ports; one token carries one value per
    port for one target cycle. *)

type spec = {
  name : string;
  ports : (string * int) list;  (** (port name, width) pairs *)
}

(** Payload bits one token carries; determines (de)serialization cost in
    the platform performance model. *)
val width : spec -> int

type token = int array

(** Gathers a token from the channel's ports via [get]. *)
val token_of_ports : spec -> (string -> int) -> token

(** Gathers a token through one batched read of every port — one
    protocol round trip when the reader proxies a remote engine. *)
val token_of_ports_batch : spec -> (string list -> int list) -> token

(** Applies a token's values to the channel's ports via [set]. *)
val apply_token : spec -> (string -> int -> unit) -> token -> unit

val pp_spec : Format.formatter -> spec -> unit

(** Per-partition synchronization point: one mutex + condition variable
    shared by all of a partition's input queues, plus a version counter
    bumped on every mutation (the missed-wakeup guard for schedulers
    that block, and the lock-free progress signal spinning consumers
    poll). *)
module Notifier : sig
  type t = {
    n_mu : Mutex.t;
    n_cond : Condition.t;
    n_version : int Atomic.t;
    mutable n_waiters : int;  (** parked waiters; guarded by [n_mu] *)
  }

  val create : unit -> t
  val version : t -> int

  (** Bumps the version; broadcasts only when waiters are parked.  Call
      with [n_mu] held. *)
  val bump : t -> unit

  (** One condition wait, registered in [n_waiters] so {!bump}
      broadcasts.  Call with [n_mu] held; re-check the guarded condition
      on return. *)
  val wait : t -> unit

  (** Locks, bumps, broadcasts, unlocks — wakes any waiter from outside
      (abort paths). *)
  val poke : t -> unit
end

exception Aborted
(** Raised out of a blocking {!Bqueue.push} whose abort predicate
    tripped while waiting for space. *)

(** Bounded thread-safe token queue (SPSC): producer and consumer
    synchronize on the consumer partition's {!Notifier}.  The software
    analogue of the QSFP channel buffers — backpressure instead of
    unbounded growth when one partition runs ahead. *)
module Bqueue : sig
  type 'a t

  exception Full

  val create : capacity:int -> notif:Notifier.t -> 'a t
  val notifier : 'a t -> Notifier.t

  (** Re-points the queue at another notifier.  Domain placement fuses
      several partitions onto one synchronization point; only legal
      while no domain is blocked on the old notifier (i.e. before the
      run starts). *)
  val set_notifier : 'a t -> Notifier.t -> unit

  (** Enqueues.  With [block], waits for space (raising {!Aborted} if
      [abort ()] trips while waiting); without, raises {!Full} when at
      capacity. *)
  val push : 'a t -> 'a -> block:bool -> abort:(unit -> bool) -> unit

  (** Slab enqueue: the whole batch under one lock with one wakeup bump
      (one synchronization per K tokens).  With [block], a full queue
      publishes the prefix already enqueued and waits for space; without,
      raises {!Full} when the remainder does not fit (the prefix stays
      enqueued). *)
  val push_list : 'a t -> 'a list -> block:bool -> abort:(unit -> bool) -> unit

  val peek_opt : 'a t -> 'a option

  (** Head peek without locking: for batched sweeps that snapshot
      several sibling queues under one notifier lock the caller already
      holds. *)
  val peek_opt_unlocked : 'a t -> 'a option

  (** Up to [n] head tokens in queue order, without locking (same
      contract as {!peek_opt_unlocked}); O(min n length). *)
  val peek_upto_unlocked : 'a t -> int -> 'a array

  (** Drops the head token, waking producers blocked on a full queue. *)
  val drop : 'a t -> unit

  (** Pops the head without bumping the notifier: callers batch drops
      across sibling queues under one lock and bump once.  Call with the
      notifier mutex held and the queue non-empty. *)
  val drop_unlocked : 'a t -> unit

  (** Slab {!drop_unlocked}: pops [n] heads; the queue must hold at
      least [n] elements. *)
  val drop_n_unlocked : 'a t -> int -> unit

  (** Locked slab drop: [n] heads gone under one lock with one bump. *)
  val drop_n : 'a t -> int -> unit

  val is_empty : 'a t -> bool
  val length : 'a t -> int

  (** Lock-free emptiness probe; only sound when all domains touching
      the queue are quiescent (the deadlock check). *)
  val is_empty_unsynchronized : 'a t -> bool

  val to_list : 'a t -> 'a list

  (** Replaces the whole contents (checkpoint/snapshot restore). *)
  val set_contents : 'a t -> 'a list -> unit
end
