(* Schedulers: execution policies over a passive {!Network} topology.

   The LI-BDN firing rules make token streams deterministic regardless
   of attempt order, so any policy that keeps attempting {!Network.try_fire}
   and {!Network.try_advance} until every partition reaches the target
   cycle computes the same register state.  Two policies are provided:

   - {!Sequential}: the classic single-threaded round-robin sweep, the
     reference implementation (and the right choice for cycle-stepping
     drivers that interleave host work between cycles).

   - {!Parallel}: one OCaml 5 domain per partition, mirroring the
     paper's deployment where each FPGA simulates its partition
     concurrently and simulation tokens are the only synchronization.
     Tokens move through the bounded thread-safe queues of
     {!Channel.Bqueue}; an idle partition first spins on its notifier
     version for an adaptive budget, then parks until a token arrives.

   The parallel policy is host-adaptive: it sizes its execution to
   [Domain.recommended_domain_count].  On a host with a single hardware
   thread, domains cannot run concurrently — spawning them only adds
   context switches and futex traffic on top of the sequential sweep —
   so the policy multiplexes every partition cooperatively on the
   calling domain (same firing rules, same deadlock judgment, same
   telemetry schema).  With fewer hardware threads than partitions,
   domains are spawned but spinning is disabled: a spinner would burn a
   core its producer needs.

   Deadlock (the Fig. 2a merged-channel scenario) is detected in both
   policies by the same authoritative quiescence check
   ({!Network.quiescent}): the network is dead iff no unfinished
   partition's firing rules permit any transition.  In the parallel
   scheduler the check runs when the last unfinished domain parks; a
   false alarm is impossible because the check inspects actual token
   state, not just the parked-domain count. *)

type t = Sequential | Parallel

let default = Sequential
let name = function Sequential -> "seq" | Parallel -> "par"

let accepted_names = [ "seq"; "sequential"; "par"; "parallel" ]

let of_string = function
  | "seq" | "sequential" -> Ok Sequential
  | "par" | "parallel" -> Ok Parallel
  | s ->
    Error
      (Printf.sprintf "unknown scheduler %S (accepted: %s)" s
         (String.concat "|" accepted_names))

let never_abort () = false

(* One round-robin attempt over everything partition [p] can do — the
   batched {!Network.sweep}: one lock to snapshot all input heads, all
   locally-ready outputs fired per shared-queue touch, all heads
   consumed under one lock on advance. *)
let sweep net p ~block ~abort = Network.sweep net p ~block ~abort

(* ------------------------------------------------------------------ *)
(* Sequential                                                          *)
(* ------------------------------------------------------------------ *)

let run_seq net ~cycles =
  let parts = Network.partitions net in
  let sweeps = Telemetry.counter (Network.telemetry net) "sched.seq.sweeps" in
  let behind () = Array.exists (fun p -> p.Network.pt_cycle < cycles) parts in
  while behind () do
    Telemetry.incr sweeps;
    let progress = ref false in
    Array.iter
      (fun p ->
        if p.Network.pt_cycle < cycles then
          if sweep net p ~block:false ~abort:never_abort then progress := true)
      parts;
    if (not !progress) && behind () then begin
      (* A no-progress sweep implies quiescence; the check is the
         authoritative judgment shared with the parallel scheduler. *)
      assert (Network.quiescent net ~target:cycles);
      Network.raise_deadlock net
    end
  done

(* ------------------------------------------------------------------ *)
(* Parallel                                                            *)
(* ------------------------------------------------------------------ *)

(* Global coordination for one parallel run.  [m_blocked] counts domains
   parked on their notifier; [m_unfinished] counts partitions still
   short of the target.  Lock order: a partition's notifier mutex may be
   taken before [m_mu], never the other way around. *)
type monitor = {
  m_mu : Mutex.t;
  mutable m_blocked : int;
  mutable m_unfinished : int;
  mutable m_dead : bool;
  mutable m_error : exn option;
  m_abort : bool Atomic.t;
}

let wake_all net =
  Array.iter (fun p -> Channel.Notifier.poke p.Network.pt_notif) (Network.partitions net)

(* Declares deadlock/abort state under [m_mu]; wake separately. *)
let declare_dead mon =
  mon.m_dead <- true;
  Atomic.set mon.m_abort true

(* Parks partition [p]'s domain until its input state changes (version
   guard against missed wakeups).  The last unfinished domain to park
   runs the quiescence check: with every other mutator registered as
   parked (registration orders their writes before our read via
   [m_mu]), the unsynchronized reads inside {!Network.quiescent} are
   sound. *)
let par_block net mon p ~cycles ~seen =
  let n = p.Network.pt_notif in
  Mutex.lock n.Channel.Notifier.n_mu;
  if Channel.Notifier.version n <> seen || Atomic.get mon.m_abort then
    Mutex.unlock n.Channel.Notifier.n_mu
  else begin
    Mutex.lock mon.m_mu;
    mon.m_blocked <- mon.m_blocked + 1;
    let declare =
      mon.m_blocked = mon.m_unfinished && Network.quiescent net ~target:cycles
    in
    if declare then declare_dead mon;
    Mutex.unlock mon.m_mu;
    if declare then Mutex.unlock n.Channel.Notifier.n_mu
    else begin
      while Channel.Notifier.version n = seen && not (Atomic.get mon.m_abort) do
        Channel.Notifier.wait n
      done;
      Mutex.unlock n.Channel.Notifier.n_mu
    end;
    if declare then wake_all net;
    Mutex.lock mon.m_mu;
    mon.m_blocked <- mon.m_blocked - 1;
    Mutex.unlock mon.m_mu
  end

(* A domain that finishes (or aborts) must deregister from
   [m_unfinished] and, when it leaves only parked domains behind, judge
   deadlock on their behalf — otherwise the stragglers park forever with
   nobody left to notice. *)
let par_exit net mon ~cycles =
  Mutex.lock mon.m_mu;
  mon.m_unfinished <- mon.m_unfinished - 1;
  let declare =
    (not (Atomic.get mon.m_abort))
    && mon.m_unfinished > 0
    && mon.m_blocked = mon.m_unfinished
    && Network.quiescent net ~target:cycles
  in
  if declare then declare_dead mon;
  Mutex.unlock mon.m_mu;
  if declare then wake_all net

let par_fail net mon e =
  Mutex.lock mon.m_mu;
  (match e with
  | Channel.Aborted -> ()  (* secondary casualty of an abort, not a cause *)
  | e -> if mon.m_error = None then mon.m_error <- Some e);
  Atomic.set mon.m_abort true;
  Mutex.unlock mon.m_mu;
  wake_all net

(* Per-domain telemetry for one parallel worker.  Spans are recorded
   only at block/unblock boundaries ("run" from segment start to park,
   "stall" across each park, tagged with the blocking input channel), so
   event counts are bounded by the number of stalls, not cycles.  Each
   worker appends to its own per-partition track — registration is the
   only synchronized step; appends happen from the owning domain with no
   cross-domain coordination, and export only runs after the domains are
   joined. *)
type par_tel = {
  w_on : bool;  (** any timing instrumentation active *)
  w_clock : unit -> float;  (** µs on the trace collector's timeline *)
  w_track : Telemetry.Chrome_trace.track option;
  w_run_ns : Telemetry.counter;
  w_idle_ns : Telemetry.counter;
  w_barrier_ns : Telemetry.counter;
}

let par_tel net p =
  let tel = Network.telemetry net in
  let name = p.Network.pt_name in
  let metric kind = Printf.sprintf "sched.par.%s.%s" name kind in
  let w_track, w_clock =
    match Telemetry.trace tel with
    | Some tc ->
      ( Some
          (Telemetry.Chrome_trace.track tc ~pid:p.Network.pt_index ~tid:0
             ~pname:("partition " ^ name) ~name:"domain" ()),
        fun () -> Telemetry.Chrome_trace.now_us tc )
    | None ->
      ( None,
        (* The barrier attribution after the joins also needs finish
           stamps when only the profiler is live. *)
        if Telemetry.enabled tel || Network.profile_enabled net then
          fun () -> Telemetry.now_us tel
        else fun () -> 0. )
  in
  {
    w_on = Telemetry.enabled tel;
    w_clock;
    w_track;
    w_run_ns = Telemetry.counter tel (metric "run_ns");
    w_idle_ns = Telemetry.counter tel (metric "idle_ns");
    w_barrier_ns = Telemetry.counter tel (metric "barrier_ns");
  }

let ns_of_us us = int_of_float (us *. 1000.)

let par_span w ~name ~args ~ts ~dur =
  match w.w_track with
  | Some tr when dur > 0. -> Telemetry.Chrome_trace.span tr ~name ~args ~ts ~dur ()
  | _ -> ()

(* Adaptive spin-then-park idle policy.  Parking costs a futex round
   trip plus a broadcast on the producer side — orders of magnitude more
   than a typical inter-token gap once the evaluation engine is fast —
   so an idle worker first spins on the (lock-free) notifier version for
   a bounded budget, and only then takes the full park path.  The budget
   adapts: doubled when the spin caught a wakeup (tokens are arriving at
   spinnable rates), halved when it didn't (the partition is genuinely
   blocked, stop burning cycles). *)
let spin_min = 64

let spin_max = 32768
let spin_initial = 1024

(* Hardware parallelism actually available, read once.  Sizes the
   parallel policy: cooperative fallback at 1, spin-then-park only when
   every partition domain can hold a core. *)
let host_domains = lazy (Domain.recommended_domain_count ())

(* Test/bench override of the host-domain count (0 = auto).  Lets the
   real-domain path and its stall accounting be exercised — and its
   overhead measured against a like-for-like baseline — on hosts where
   [Domain.recommended_domain_count] would force the cooperative
   fallback. *)
let host_override = Atomic.make 0

let set_host_domains n = Atomic.set host_override (max 0 n)

let host_domains_now () =
  let o = Atomic.get host_override in
  if o > 0 then o else Lazy.force host_domains

(* Polls for a version change (or abort) for at most [budget] relax
   hints; true if one arrived. *)
let spin_for notif ~seen ~abort ~budget =
  let rec go k =
    if Channel.Notifier.version notif <> seen || abort () then true
    else if k >= budget then false
    else begin
      Domain.cpu_relax ();
      go (k + 1)
    end
  in
  go 0

let par_worker net mon p ~cycles ~started ~finished ~slot ~spin =
  let abort () = Atomic.get mon.m_abort in
  let w = par_tel net p in
  let tel = Network.telemetry net in
  let metric kind = Printf.sprintf "sched.par.%s.%s" p.Network.pt_name kind in
  let spins = Telemetry.counter tel (metric "spins") in
  let parks = Telemetry.counter tel (metric "parks") in
  let prof = Network.profile net in
  let pr = p.Network.pt_prof in
  let pon = Telemetry.Profile.part_enabled pr in
  let notif = p.Network.pt_notif in
  let spin_budget = ref spin_initial in
  let seg_start = ref (w.w_clock ()) in
  if w.w_on || pon then started.(slot) <- !seg_start;
  (* Closes the current "run" segment at [now] and charges it. *)
  let end_run now =
    Telemetry.add w.w_run_ns (ns_of_us (now -. !seg_start));
    par_span w ~name:"run" ~args:[] ~ts:!seg_start ~dur:(now -. !seg_start)
  in
  let park ~seen ~blocked_on =
    if not w.w_on then par_block net mon p ~cycles ~seen
    else begin
      let t_park = w.w_clock () in
      end_run t_park;
      par_block net mon p ~cycles ~seen;
      let t_wake = w.w_clock () in
      Telemetry.add w.w_idle_ns (ns_of_us (t_wake -. t_park));
      let args =
        match blocked_on with
        | None -> []
        | Some chan -> [ ("blocked_on", Telemetry.Json.String chan) ]
      in
      par_span w ~name:"stall" ~args ~ts:t_park ~dur:(t_wake -. t_park);
      seg_start := t_wake
    end
  in
  (* One idle episode after a failed sweep: the stall is attributed to
     the blocking channel up front (spin or park alike — the spin fast
     path used to skip attribution entirely), then the worker spins on
     the notifier version and finally parks. *)
  let idle ~seen =
    let blocked_on = if w.w_on then Network.record_stall p else None in
    if spin && spin_for notif ~seen ~abort ~budget:!spin_budget then begin
      Telemetry.incr spins;
      spin_budget := min spin_max (2 * !spin_budget)
    end
    else begin
      Telemetry.incr parks;
      spin_budget := max spin_min (!spin_budget / 2);
      park ~seen ~blocked_on
    end
  in
  (try
     if pon then
       (* Profiled loop: every iteration is classified — a productive
          sweep is "run" (token exchange carved out by the network), a
          failed sweep plus its busy-wait is "spin", and the off-CPU
          wait inside [par_block] is "park" — so the per-partition
          components sum to this domain's wall time. *)
       while p.Network.pt_cycle < cycles && not (abort ()) do
         let seen = Channel.Notifier.version notif in
         let t0 = Telemetry.Profile.now_ns prof in
         if sweep net p ~block:true ~abort then
           Telemetry.Profile.add_run pr (Telemetry.Profile.now_ns prof - t0)
         else begin
           let blocked_on = if w.w_on then Network.record_stall p else None in
           if spin && spin_for notif ~seen ~abort ~budget:!spin_budget then begin
             Telemetry.Profile.add_spin pr (Telemetry.Profile.now_ns prof - t0);
             Telemetry.incr spins;
             spin_budget := min spin_max (2 * !spin_budget)
           end
           else begin
             let tp = Telemetry.Profile.now_ns prof in
             Telemetry.Profile.add_spin pr (tp - t0);
             Telemetry.incr parks;
             spin_budget := max spin_min (!spin_budget / 2);
             park ~seen ~blocked_on;
             Telemetry.Profile.add_park pr (Telemetry.Profile.now_ns prof - tp)
           end
         end
       done
     else
       while p.Network.pt_cycle < cycles && not (abort ()) do
         let seen = Channel.Notifier.version notif in
         if not (sweep net p ~block:true ~abort) then idle ~seen
       done
   with e -> par_fail net mon e);
  if w.w_on || pon then begin
    let t_done = w.w_clock () in
    if w.w_on then end_run t_done;
    finished.(slot) <- t_done
  end;
  par_exit net mon ~cycles

(* Cooperative fallback for hosts without real parallelism.  With one
   hardware thread, one-domain-per-partition only layers context
   switches, futex round trips and cache churn on top of the sequential
   sweep (measured 2-5x slower); the parallel policy therefore
   multiplexes every partition on the calling domain, exactly like
   {!run_seq} — same firing rules, same no-progress => quiescent =>
   deadlock judgment — while still registering the per-partition
   [sched.par.*] counters so telemetry consumers see a stable schema.
   Parks stay zero — an off-CPU idle policy never arises — but each
   visit that finds a partition unable to progress counts as one spin:
   the cooperative analogue of a failed poll (they used to stay zero
   too, which is what left the bench stall breakdown all-zero whenever
   this fallback was active). *)
let run_par_cooperative net ~cycles =
  let parts = Network.partitions net in
  let tel = Network.telemetry net in
  let on = Telemetry.enabled tel in
  let spins =
    Array.map
      (fun p ->
        Telemetry.counter tel
          (Printf.sprintf "sched.par.%s.spins" p.Network.pt_name))
      parts
  in
  let ws =
    Array.map
      (fun p ->
        let metric kind =
          Printf.sprintf "sched.par.%s.%s" p.Network.pt_name kind
        in
        ignore (Telemetry.counter tel (metric "parks"));
        par_tel net p)
      parts
  in
  (* Per-partition run/stall segments, mirroring the per-domain spans of
     {!par_worker}: a partition is "running" between visits that make
     progress and "stalled" across consecutive visits that make none.
     Segments include time spent sweeping the other partitions — on one
     hardware thread wall time is shared, so per-partition attribution
     is inherently approximate. *)
  let seg_start = Array.map (fun w -> w.w_clock ()) ws in
  let stalled = Array.make (Array.length parts) false in
  let blocked = Array.make (Array.length parts) None in
  let close i ~now =
    let w = ws.(i) in
    let dur = now -. seg_start.(i) in
    if stalled.(i) then begin
      Telemetry.add w.w_idle_ns (ns_of_us dur);
      let args =
        match blocked.(i) with
        | None -> []
        | Some chan -> [ ("blocked_on", Telemetry.Json.String chan) ]
      in
      par_span w ~name:"stall" ~args ~ts:seg_start.(i) ~dur
    end
    else begin
      Telemetry.add w.w_run_ns (ns_of_us dur);
      par_span w ~name:"run" ~args:[] ~ts:seg_start.(i) ~dur
    end;
    seg_start.(i) <- now
  in
  let visit i p =
    let progressed = sweep net p ~block:false ~abort:never_abort in
    if on && not progressed then Telemetry.incr spins.(i);
    if on && progressed = stalled.(i) then begin
      (* Segment boundary: the partition switched between running and
         being unable to progress. *)
      close i ~now:(ws.(i).w_clock ());
      if not progressed then blocked.(i) <- Network.record_stall p;
      stalled.(i) <- not progressed
    end;
    progressed
  in
  let behind () = Array.exists (fun p -> p.Network.pt_cycle < cycles) parts in
  while behind () do
    let progress = ref false in
    Array.iteri
      (fun i p ->
        if p.Network.pt_cycle < cycles then
          if visit i p then progress := true)
      parts;
    if (not !progress) && behind () then begin
      assert (Network.quiescent net ~target:cycles);
      Network.raise_deadlock net
    end
  done;
  if on then Array.iteri (fun i w -> close i ~now:(w.w_clock ())) ws

(* Runs every unfinished partition on its own domain to [cycles] — or
   cooperatively on the calling domain when the host cannot actually run
   domains concurrently. *)
let run_par net ~cycles =
  (* A live profile forces the real-domain path: the cooperative
     multiplexer shares one thread's wall clock between partitions, so
     its per-partition timing is structurally unable to show where the
     parallel policy's time would go — which is the question a profiled
     run asks. *)
  let profiled = Network.profile_enabled net in
  if host_domains_now () <= 1 && not profiled then run_par_cooperative net ~cycles
  else
  let parts = Network.partitions net in
  let workers =
    Array.to_list parts |> List.filter (fun p -> p.Network.pt_cycle < cycles)
  in
  match workers with
  | [] -> ()
  | workers ->
    let mon =
      {
        m_mu = Mutex.create ();
        m_blocked = 0;
        m_unfinished = List.length workers;
        m_dead = false;
        m_error = None;
        m_abort = Atomic.make false;
      }
    in
    let started = Array.make (List.length workers) 0. in
    let finished = Array.make (List.length workers) 0. in
    (* Spinning is only profitable when every partition domain can hold
       a hardware thread; oversubscribed, a spinner burns the core its
       producer needs to make the token it is waiting for.  Profiled
       runs keep it on so the spin phase is observable (the bounded
       budget keeps the distortion small). *)
    let spin = profiled || host_domains_now () >= List.length workers in
    let domains =
      List.mapi
        (fun slot p ->
          Domain.spawn (fun () ->
              par_worker net mon p ~cycles ~started ~finished ~slot ~spin))
        workers
    in
    List.iter Domain.join domains;
    (* Barrier-wait attribution: time each domain idled between its own
       finish and the last domain's — computed here, after the joins, so
       no cross-domain synchronization is needed while running. *)
    let tel = Network.telemetry net in
    if (Telemetry.enabled tel || profiled) && mon.m_error = None && not mon.m_dead
    then begin
      let last = Array.fold_left max 0. finished in
      let first = Array.fold_left min infinity started in
      List.iteri
        (fun slot p ->
          let gap = ns_of_us (last -. finished.(slot)) in
          if Telemetry.enabled tel then begin
            let c =
              Telemetry.counter tel
                (Printf.sprintf "sched.par.%s.barrier_ns" p.Network.pt_name)
            in
            Telemetry.add c gap
          end;
          Telemetry.Profile.add_barrier p.Network.pt_prof gap;
          (* A late domain start is also synchronization overhead: the
             partition existed but had no CPU yet.  Charged as barrier,
             so every worker's phases tile [first, last] — the span
             accumulated as the export's wall-clock denominator. *)
          Telemetry.Profile.add_barrier p.Network.pt_prof
            (ns_of_us (started.(slot) -. first)))
        workers;
      if profiled then
        Telemetry.Profile.add_wall_ns (Network.profile net)
          (ns_of_us (last -. first))
    end;
    (match mon.m_error with
    | Some e -> raise e
    | None -> if mon.m_dead then Network.raise_deadlock net)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Runs every partition up to [cycles] target cycles under the chosen
    scheduler.  Raises {!Network.Deadlock} with a channel-state report
    if no forward progress is possible (Fig. 2a). *)
let run ?(scheduler = default) net ~cycles =
  Network.prime net;
  match scheduler with
  | Sequential -> run_seq net ~cycles
  | Parallel -> run_par net ~cycles

(** Runs until [pred] holds or all partitions reach [max_cycles];
    returns the reached cycle of partition 0.  The sequential scheduler
    checks [pred] after every whole-network sweep (partitions may sit at
    different cycles when it fires); the parallel scheduler checks at
    whole-cycle barriers, where every partition holds the same cycle —
    [pred] must not race with partition domains, so it only runs while
    they are joined. *)
let run_until ?(scheduler = default) net ~max_cycles pred =
  Network.prime net;
  match scheduler with
  | Sequential ->
    let parts = Network.partitions net in
    let stop = ref false in
    let deadline_reached () =
      Array.for_all (fun p -> p.Network.pt_cycle >= max_cycles) parts
    in
    while (not !stop) && not (deadline_reached ()) do
      let progress = ref false in
      Array.iter
        (fun p ->
          if p.Network.pt_cycle < max_cycles then
            if sweep net p ~block:false ~abort:never_abort then progress := true)
        parts;
      if pred net then stop := true
      else if not !progress then begin
        assert (Network.quiescent net ~target:max_cycles);
        Network.raise_deadlock net
      end
    done;
    parts.(0).Network.pt_cycle
  | Parallel ->
    let parts = Network.partitions net in
    let min_cycle () =
      Array.fold_left (fun acc p -> min acc p.Network.pt_cycle) max_int parts
    in
    let rec go () =
      let c = min_cycle () in
      if c >= max_cycles then parts.(0).Network.pt_cycle
      else begin
        run_par net ~cycles:(min max_cycles (c + 1));
        if pred net then parts.(0).Network.pt_cycle else go ()
      end
    in
    go ()
