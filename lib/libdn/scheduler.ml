(* Schedulers: execution policies over a passive {!Network} topology.

   The LI-BDN firing rules make token streams deterministic regardless
   of attempt order, so any policy that keeps attempting {!Network.try_fire}
   and {!Network.try_advance} until every partition reaches the target
   cycle computes the same register state.  Two policies are provided:

   - {!Sequential}: the classic single-threaded round-robin sweep, the
     reference implementation (and the right choice for cycle-stepping
     drivers that interleave host work between cycles).

   - {!Parallel}: one OCaml 5 domain per partition, mirroring the
     paper's deployment where each FPGA simulates its partition
     concurrently and simulation tokens are the only synchronization.
     Tokens move through the bounded thread-safe queues of
     {!Channel.Bqueue}; an idle partition first spins on its notifier
     version for an adaptive budget, then parks until a token arrives.

   The parallel policy is host-adaptive: it sizes its execution to
   [Domain.recommended_domain_count].  On a host with a single hardware
   thread, domains cannot run concurrently — spawning them only adds
   context switches and futex traffic on top of the sequential sweep —
   so the policy multiplexes every partition cooperatively on the
   calling domain (same firing rules, same deadlock judgment, same
   telemetry schema).  With fewer hardware threads than partitions,
   domains are spawned but spinning is disabled: a spinner would burn a
   core its producer needs.

   Deadlock (the Fig. 2a merged-channel scenario) is detected in both
   policies by the same authoritative quiescence check
   ({!Network.quiescent}): the network is dead iff no unfinished
   partition's firing rules permit any transition.  In the parallel
   scheduler the check runs when the last unfinished domain parks; a
   false alarm is impossible because the check inspects actual token
   state, not just the parked-domain count. *)

type t = Sequential | Parallel

let default = Sequential
let name = function Sequential -> "seq" | Parallel -> "par"

let accepted_names = [ "seq"; "sequential"; "par"; "parallel" ]

let of_string = function
  | "seq" | "sequential" -> Ok Sequential
  | "par" | "parallel" -> Ok Parallel
  | s ->
    Error
      (Printf.sprintf "unknown scheduler %S (accepted: %s)" s
         (String.concat "|" accepted_names))

let never_abort () = false

(* Default cap on cycle-batched exchange (the [--batch-cycles] knob).
   1 = per-cycle exchange, the historical behavior; schedulers receive
   the cap explicitly from the runtime/CLI. *)
let default_batch_cycles = 1

(* ------------------------------------------------------------------ *)
(* Static load-balanced placement (bin packing)                        *)
(* ------------------------------------------------------------------ *)

(* Longest-processing-time greedy bin packing: heaviest partition first
   into the least-loaded domain.  Classic 4/3-approximate makespan —
   good enough for a handful of partitions, and deterministic.  Returns
   the domain slot per partition, normalized so every slot in
   [0, slots) is used. *)
let pack ~weights ~domains =
  let n = Array.length weights in
  if n = 0 then [||]
  else begin
    let d = max 1 (min domains n) in
    let order = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        match compare weights.(b) weights.(a) with 0 -> compare a b | c -> c)
      order;
    let load = Array.make d 0 in
    let assign = Array.make n 0 in
    Array.iter
      (fun i ->
        let best = ref 0 in
        for b = 1 to d - 1 do
          if load.(b) < load.(!best) then best := b
        done;
        assign.(i) <- !best;
        load.(!best) <- load.(!best) + max 1 weights.(i))
      order;
    (* Normalize slot numbering to drop any unused bins (d > distinct
       assignments can happen when weights collapse). *)
    let remap = Array.make d (-1) in
    let next = ref 0 in
    Array.iter
      (fun i ->
        let g = assign.(i) in
        if remap.(g) < 0 then begin
          remap.(g) <- !next;
          incr next
        end)
      (Array.init n Fun.id);
    Array.map (fun g -> remap.(g)) assign
  end

(* ------------------------------------------------------------------ *)
(* Sequential                                                          *)
(* ------------------------------------------------------------------ *)

let run_seq ?(batch_cycles = default_batch_cycles) net ~cycles =
  let parts = Network.partitions net in
  let sweeps = Telemetry.counter (Network.telemetry net) "sched.seq.sweeps" in
  let behind () = Array.exists (fun p -> p.Network.pt_cycle < cycles) parts in
  while behind () do
    Telemetry.incr sweeps;
    let progress = ref false in
    Array.iter
      (fun p ->
        if p.Network.pt_cycle < cycles then begin
          let _, prog =
            Network.sweep_batch net p ~limit:cycles ~max_cycles:batch_cycles
              ~block:false ~abort:never_abort
          in
          if prog then progress := true
        end)
      parts;
    if (not !progress) && behind () then begin
      (* A no-progress sweep implies quiescence; the check is the
         authoritative judgment shared with the parallel scheduler. *)
      assert (Network.quiescent net ~target:cycles);
      Network.raise_deadlock net
    end
  done

(* ------------------------------------------------------------------ *)
(* Parallel                                                            *)
(* ------------------------------------------------------------------ *)

(* Global coordination for one parallel run.  [m_blocked] counts domains
   parked on their notifier; [m_unfinished] counts partitions still
   short of the target.  Lock order: a partition's notifier mutex may be
   taken before [m_mu], never the other way around. *)
type monitor = {
  m_mu : Mutex.t;
  mutable m_blocked : int;
  mutable m_unfinished : int;
  mutable m_dead : bool;
  mutable m_error : exn option;
  m_abort : bool Atomic.t;
}

let wake_all net =
  Array.iter (fun p -> Channel.Notifier.poke p.Network.pt_notif) (Network.partitions net)

(* Declares deadlock/abort state under [m_mu]; wake separately. *)
let declare_dead mon =
  mon.m_dead <- true;
  Atomic.set mon.m_abort true

(* Parks a domain on [notif] (its partition's notifier — or the shared
   group notifier under fused placement) until the input state changes
   (version guard against missed wakeups).  The last unfinished domain
   to park runs the quiescence check: with every other mutator
   registered as parked (registration orders their writes before our
   read via [m_mu]), the unsynchronized reads inside
   {!Network.quiescent} are sound. *)
let par_block net mon ~notif ~cycles ~seen =
  let n = notif in
  Mutex.lock n.Channel.Notifier.n_mu;
  if Channel.Notifier.version n <> seen || Atomic.get mon.m_abort then
    Mutex.unlock n.Channel.Notifier.n_mu
  else begin
    Mutex.lock mon.m_mu;
    mon.m_blocked <- mon.m_blocked + 1;
    let declare =
      mon.m_blocked = mon.m_unfinished && Network.quiescent net ~target:cycles
    in
    if declare then declare_dead mon;
    Mutex.unlock mon.m_mu;
    if declare then Mutex.unlock n.Channel.Notifier.n_mu
    else begin
      while Channel.Notifier.version n = seen && not (Atomic.get mon.m_abort) do
        Channel.Notifier.wait n
      done;
      Mutex.unlock n.Channel.Notifier.n_mu
    end;
    if declare then wake_all net;
    Mutex.lock mon.m_mu;
    mon.m_blocked <- mon.m_blocked - 1;
    Mutex.unlock mon.m_mu
  end

(* A domain that finishes (or aborts) must deregister from
   [m_unfinished] and, when it leaves only parked domains behind, judge
   deadlock on their behalf — otherwise the stragglers park forever with
   nobody left to notice. *)
let par_exit net mon ~cycles =
  Mutex.lock mon.m_mu;
  mon.m_unfinished <- mon.m_unfinished - 1;
  let declare =
    (not (Atomic.get mon.m_abort))
    && mon.m_unfinished > 0
    && mon.m_blocked = mon.m_unfinished
    && Network.quiescent net ~target:cycles
  in
  if declare then declare_dead mon;
  Mutex.unlock mon.m_mu;
  if declare then wake_all net

let par_fail net mon e =
  Mutex.lock mon.m_mu;
  (match e with
  | Channel.Aborted -> ()  (* secondary casualty of an abort, not a cause *)
  | e -> if mon.m_error = None then mon.m_error <- Some e);
  Atomic.set mon.m_abort true;
  Mutex.unlock mon.m_mu;
  wake_all net

(* Per-domain telemetry for one parallel worker.  Spans are recorded
   only at block/unblock boundaries ("run" from segment start to park,
   "stall" across each park, tagged with the blocking input channel), so
   event counts are bounded by the number of stalls, not cycles.  Each
   worker appends to its own per-partition track — registration is the
   only synchronized step; appends happen from the owning domain with no
   cross-domain coordination, and export only runs after the domains are
   joined. *)
type par_tel = {
  w_on : bool;  (** any timing instrumentation active *)
  w_clock : unit -> float;  (** µs on the trace collector's timeline *)
  w_track : Telemetry.Chrome_trace.track option;
  w_run_ns : Telemetry.counter;
  w_idle_ns : Telemetry.counter;
  w_barrier_ns : Telemetry.counter;
}

let par_tel net p =
  let tel = Network.telemetry net in
  let name = p.Network.pt_name in
  let metric kind = Printf.sprintf "sched.par.%s.%s" name kind in
  let w_track, w_clock =
    match Telemetry.trace tel with
    | Some tc ->
      ( Some
          (Telemetry.Chrome_trace.track tc ~pid:p.Network.pt_index ~tid:0
             ~pname:("partition " ^ name) ~name:"domain" ()),
        fun () -> Telemetry.Chrome_trace.now_us tc )
    | None ->
      ( None,
        (* The barrier attribution after the joins also needs finish
           stamps when only the profiler is live. *)
        if Telemetry.enabled tel || Network.profile_enabled net then
          fun () -> Telemetry.now_us tel
        else fun () -> 0. )
  in
  {
    w_on = Telemetry.enabled tel;
    w_clock;
    w_track;
    w_run_ns = Telemetry.counter tel (metric "run_ns");
    w_idle_ns = Telemetry.counter tel (metric "idle_ns");
    w_barrier_ns = Telemetry.counter tel (metric "barrier_ns");
  }

let ns_of_us us = int_of_float (us *. 1000.)

let par_span w ~name ~args ~ts ~dur =
  match w.w_track with
  | Some tr when dur > 0. -> Telemetry.Chrome_trace.span tr ~name ~args ~ts ~dur ()
  | _ -> ()

(* Adaptive spin-then-park idle policy.  Parking costs a futex round
   trip plus a broadcast on the producer side — orders of magnitude more
   than a typical inter-token gap once the evaluation engine is fast —
   so an idle worker first spins on the (lock-free) notifier version for
   a bounded budget, and only then takes the full park path.  The budget
   adapts: doubled when the spin caught a wakeup (tokens are arriving at
   spinnable rates), halved when it didn't (the partition is genuinely
   blocked, stop burning cycles). *)
let spin_min = 64

let spin_max = 32768
let spin_initial = 1024

(* Hardware parallelism actually available, read once.  Sizes the
   parallel policy: cooperative fallback at 1, spin-then-park only when
   every partition domain can hold a core. *)
let host_domains = lazy (Domain.recommended_domain_count ())

(* Test/bench override of the host-domain count (0 = auto).  Lets the
   real-domain path and its stall accounting be exercised — and its
   overhead measured against a like-for-like baseline — on hosts where
   [Domain.recommended_domain_count] would force the cooperative
   fallback. *)
let host_override = Atomic.make 0

let set_host_domains n = Atomic.set host_override (max 0 n)

let host_domains_now () =
  let o = Atomic.get host_override in
  if o > 0 then o else Lazy.force host_domains

let effective_host_domains = host_domains_now

(* Polls for a version change (or abort) for at most [budget] relax
   hints; true if one arrived. *)
let spin_for notif ~seen ~abort ~budget =
  let rec go k =
    if Channel.Notifier.version notif <> seen || abort () then true
    else if k >= budget then false
    else begin
      Domain.cpu_relax ();
      go (k + 1)
    end
  in
  go 0

(* Spin-policy knobs for one run: [sp_initial]/[sp_max] bound the
   adaptive budget; [sp_enabled] gates spinning entirely (the
   [--spin-budget 0] escape hatch, and the oversubscription guard). *)
type spin_cfg = { sp_enabled : bool; sp_initial : int; sp_max : int }

let spin_cfg ~spin ~spin_budget =
  match spin_budget with
  | Some 0 -> { sp_enabled = false; sp_initial = spin_min; sp_max = spin_min }
  | Some s when s > 0 ->
    { sp_enabled = spin; sp_initial = s; sp_max = max s spin_min }
  | _ -> { sp_enabled = spin; sp_initial = spin_initial; sp_max = spin_max }

(* Per-partition adaptive batch depth: starts at 1 and doubles while
   batches run their full budget (tokens are plentiful — no channel
   starved mid-batch), halves when a visit advanced nothing (the
   partition is starving; back off toward per-cycle exchange and its
   prompt wakeups).  Capped by [batch_cycles]. *)
let adapt_batch k ~cap ~advanced =
  if cap > 1 then begin
    if advanced >= !k then k := min cap (!k * 2)
    else if advanced = 0 then k := max 1 (!k / 2)
  end

let par_worker net mon p ~cycles ~started ~finished ~slot ~spin ~batch_cycles
    ~spin_budget =
  let abort () = Atomic.get mon.m_abort in
  let w = par_tel net p in
  let tel = Network.telemetry net in
  let metric kind = Printf.sprintf "sched.par.%s.%s" p.Network.pt_name kind in
  let spins = Telemetry.counter tel (metric "spins") in
  let parks = Telemetry.counter tel (metric "parks") in
  let prof = Network.profile net in
  let pr = p.Network.pt_prof in
  let pon = Telemetry.Profile.part_enabled pr in
  let notif = p.Network.pt_notif in
  let cfg = spin_cfg ~spin ~spin_budget in
  let spin = cfg.sp_enabled in
  let spin_budget = ref cfg.sp_initial in
  let batch = ref 1 in
  let sweep_p () =
    let advanced, prog =
      Network.sweep_batch net p ~limit:cycles ~max_cycles:!batch ~block:true
        ~abort
    in
    adapt_batch batch ~cap:batch_cycles ~advanced;
    prog
  in
  let seg_start = ref (w.w_clock ()) in
  if w.w_on || pon then started.(slot) <- !seg_start;
  (* Closes the current "run" segment at [now] and charges it. *)
  let end_run now =
    Telemetry.add w.w_run_ns (ns_of_us (now -. !seg_start));
    par_span w ~name:"run" ~args:[] ~ts:!seg_start ~dur:(now -. !seg_start)
  in
  let park ~seen ~blocked_on =
    if not w.w_on then par_block net mon ~notif ~cycles ~seen
    else begin
      let t_park = w.w_clock () in
      end_run t_park;
      par_block net mon ~notif ~cycles ~seen;
      let t_wake = w.w_clock () in
      Telemetry.add w.w_idle_ns (ns_of_us (t_wake -. t_park));
      let args =
        match blocked_on with
        | None -> []
        | Some chan -> [ ("blocked_on", Telemetry.Json.String chan) ]
      in
      par_span w ~name:"stall" ~args ~ts:t_park ~dur:(t_wake -. t_park);
      seg_start := t_wake
    end
  in
  (* One idle episode after a failed sweep: the stall is attributed to
     the blocking channel up front (spin or park alike — the spin fast
     path used to skip attribution entirely), then the worker spins on
     the notifier version and finally parks. *)
  let idle ~seen =
    let blocked_on = if w.w_on then Network.record_stall p else None in
    if spin && spin_for notif ~seen ~abort ~budget:!spin_budget then begin
      Telemetry.incr spins;
      spin_budget := min cfg.sp_max (2 * !spin_budget)
    end
    else begin
      Telemetry.incr parks;
      spin_budget := max spin_min (!spin_budget / 2);
      park ~seen ~blocked_on
    end
  in
  (try
     if pon then
       (* Profiled loop: every iteration is classified — a productive
          sweep is "run" (token exchange carved out by the network), a
          failed sweep plus its busy-wait is "spin", and the off-CPU
          wait inside [par_block] is "park" — so the per-partition
          components sum to this domain's wall time. *)
       while p.Network.pt_cycle < cycles && not (abort ()) do
         let seen = Channel.Notifier.version notif in
         let t0 = Telemetry.Profile.now_ns prof in
         if sweep_p () then
           Telemetry.Profile.add_run pr (Telemetry.Profile.now_ns prof - t0)
         else begin
           let blocked_on = if w.w_on then Network.record_stall p else None in
           if spin && spin_for notif ~seen ~abort ~budget:!spin_budget then begin
             Telemetry.Profile.add_spin pr (Telemetry.Profile.now_ns prof - t0);
             Telemetry.incr spins;
             spin_budget := min cfg.sp_max (2 * !spin_budget)
           end
           else begin
             let tp = Telemetry.Profile.now_ns prof in
             Telemetry.Profile.add_spin pr (tp - t0);
             Telemetry.incr parks;
             spin_budget := max spin_min (!spin_budget / 2);
             park ~seen ~blocked_on;
             Telemetry.Profile.add_park pr (Telemetry.Profile.now_ns prof - tp)
           end
         end
       done
     else
       while p.Network.pt_cycle < cycles && not (abort ()) do
         let seen = Channel.Notifier.version notif in
         if not (sweep_p ()) then idle ~seen
       done
   with e -> par_fail net mon e);
  if w.w_on || pon then begin
    let t_done = w.w_clock () in
    if w.w_on then end_run t_done;
    finished.(slot) <- t_done
  end;
  par_exit net mon ~cycles

(* One domain multiplexing a fused GROUP of partitions (load-balanced
   placement): round-robin over the members, idling on their SHARED
   notifier only when no member could progress in a full round.
   Telemetry is coarser than the one-domain-per-partition path —
   spins/parks are charged to every member that failed to progress in
   the idle round, and no per-partition Chrome spans are recorded (use
   spread placement for those).  Profiled runs never take this path:
   the profiler's phase accounting wants one domain per partition. *)
let par_worker_group net mon ps ~cycles ~started ~finished ~slot ~spin
    ~batch_cycles ~spin_budget =
  let abort () = Atomic.get mon.m_abort in
  let tel = Network.telemetry net in
  let on = Telemetry.enabled tel in
  let metric p kind = Printf.sprintf "sched.par.%s.%s" p.Network.pt_name kind in
  let spins = Array.map (fun p -> Telemetry.counter tel (metric p "spins")) ps in
  let parks = Array.map (fun p -> Telemetry.counter tel (metric p "parks")) ps in
  let notif = ps.(0).Network.pt_notif in
  let cfg = spin_cfg ~spin ~spin_budget in
  let spin = cfg.sp_enabled in
  let spin_budget = ref cfg.sp_initial in
  let batch = Array.map (fun _ -> ref 1) ps in
  let stalled = Array.make (Array.length ps) false in
  let unfinished () = Array.exists (fun p -> p.Network.pt_cycle < cycles) ps in
  if on then started.(slot) <- Telemetry.now_us tel;
  (try
     while unfinished () && not (abort ()) do
       let seen = Channel.Notifier.version notif in
       let progress = ref false in
       Array.iteri
         (fun i p ->
           if p.Network.pt_cycle < cycles then begin
             let advanced, prog =
               Network.sweep_batch net p ~limit:cycles ~max_cycles:!(batch.(i))
                 ~block:true ~abort
             in
             adapt_batch batch.(i) ~cap:batch_cycles ~advanced;
             if prog then progress := true;
             stalled.(i) <- not prog
           end
           else stalled.(i) <- false)
         ps;
       if (not !progress) && unfinished () && not (abort ()) then begin
         let charge cs =
           if on then
             Array.iteri
               (fun i p ->
                 if stalled.(i) && p.Network.pt_cycle < cycles then begin
                   ignore (Network.record_stall p);
                   Telemetry.incr cs.(i)
                 end)
               ps
         in
         if spin && spin_for notif ~seen ~abort ~budget:!spin_budget then begin
           charge spins;
           spin_budget := min cfg.sp_max (2 * !spin_budget)
         end
         else begin
           charge parks;
           spin_budget := max spin_min (!spin_budget / 2);
           par_block net mon ~notif ~cycles ~seen
         end
       end
     done
   with e -> par_fail net mon e);
  if on then finished.(slot) <- Telemetry.now_us tel;
  par_exit net mon ~cycles

(* Cooperative fallback for hosts without real parallelism.  With one
   hardware thread, one-domain-per-partition only layers context
   switches, futex round trips and cache churn on top of the sequential
   sweep (measured 2-5x slower); the parallel policy therefore
   multiplexes every partition on the calling domain, exactly like
   {!run_seq} — same firing rules, same no-progress => quiescent =>
   deadlock judgment — while still registering the per-partition
   [sched.par.*] counters so telemetry consumers see a stable schema.
   Parks stay zero — an off-CPU idle policy never arises — but each
   visit that finds a partition unable to progress counts as one spin:
   the cooperative analogue of a failed poll (they used to stay zero
   too, which is what left the bench stall breakdown all-zero whenever
   this fallback was active). *)
let run_par_cooperative ?(batch_cycles = default_batch_cycles) net ~cycles =
  let parts = Network.partitions net in
  let batch = Array.map (fun _ -> ref 1) parts in
  let tel = Network.telemetry net in
  let on = Telemetry.enabled tel in
  let spins =
    Array.map
      (fun p ->
        Telemetry.counter tel
          (Printf.sprintf "sched.par.%s.spins" p.Network.pt_name))
      parts
  in
  let ws =
    Array.map
      (fun p ->
        let metric kind =
          Printf.sprintf "sched.par.%s.%s" p.Network.pt_name kind
        in
        ignore (Telemetry.counter tel (metric "parks"));
        par_tel net p)
      parts
  in
  (* Per-partition run/stall segments, mirroring the per-domain spans of
     {!par_worker}: a partition is "running" between visits that make
     progress and "stalled" across consecutive visits that make none.
     Segments include time spent sweeping the other partitions — on one
     hardware thread wall time is shared, so per-partition attribution
     is inherently approximate. *)
  let seg_start = Array.map (fun w -> w.w_clock ()) ws in
  let stalled = Array.make (Array.length parts) false in
  let blocked = Array.make (Array.length parts) None in
  let close i ~now =
    let w = ws.(i) in
    let dur = now -. seg_start.(i) in
    if stalled.(i) then begin
      Telemetry.add w.w_idle_ns (ns_of_us dur);
      let args =
        match blocked.(i) with
        | None -> []
        | Some chan -> [ ("blocked_on", Telemetry.Json.String chan) ]
      in
      par_span w ~name:"stall" ~args ~ts:seg_start.(i) ~dur
    end
    else begin
      Telemetry.add w.w_run_ns (ns_of_us dur);
      par_span w ~name:"run" ~args:[] ~ts:seg_start.(i) ~dur
    end;
    seg_start.(i) <- now
  in
  let visit i p =
    let advanced, progressed =
      Network.sweep_batch net p ~limit:cycles ~max_cycles:!(batch.(i))
        ~block:false ~abort:never_abort
    in
    adapt_batch batch.(i) ~cap:batch_cycles ~advanced;
    if on && not progressed then Telemetry.incr spins.(i);
    if on && progressed = stalled.(i) then begin
      (* Segment boundary: the partition switched between running and
         being unable to progress. *)
      close i ~now:(ws.(i).w_clock ());
      if not progressed then blocked.(i) <- Network.record_stall p;
      stalled.(i) <- not progressed
    end;
    progressed
  in
  let behind () = Array.exists (fun p -> p.Network.pt_cycle < cycles) parts in
  while behind () do
    let progress = ref false in
    Array.iteri
      (fun i p ->
        if p.Network.pt_cycle < cycles then
          if visit i p then progress := true)
      parts;
    if (not !progress) && behind () then begin
      assert (Network.quiescent net ~target:cycles);
      Network.raise_deadlock net
    end
  done;
  if on then Array.iteri (fun i w -> close i ~now:(w.w_clock ())) ws

(* Runs every unfinished partition to [cycles] on its own domain — or
   one domain per placement GROUP when {!Network.set_groups} fused
   partitions together, or cooperatively on the calling domain when the
   host cannot actually run domains concurrently. *)
let run_par ?(batch_cycles = default_batch_cycles) ?spin_budget net ~cycles =
  (* A live profile forces the real-domain path: the cooperative
     multiplexer shares one thread's wall clock between partitions, so
     its per-partition timing is structurally unable to show where the
     parallel policy's time would go — which is the question a profiled
     run asks. *)
  let profiled = Network.profile_enabled net in
  if host_domains_now () <= 1 && not profiled then
    run_par_cooperative net ~cycles ~batch_cycles
  else
  let parts = Network.partitions net in
  let unfinished =
    Array.to_list parts |> List.filter (fun p -> p.Network.pt_cycle < cycles)
  in
  (* One worker per placement group (identity — one per partition — when
     no placement was applied, and always under a live profile: the
     profiler's per-partition phase accounting assumes a dedicated
     domain). *)
  let assign = Network.groups net in
  let groups =
    if profiled || Array.length assign = 0 then
      List.map (fun p -> [| p |]) unfinished
    else begin
      let slots = 1 + Array.fold_left max 0 assign in
      let buckets = Array.make slots [] in
      List.iter
        (fun p ->
          let g = assign.(p.Network.pt_index) in
          buckets.(g) <- p :: buckets.(g))
        unfinished;
      Array.to_list buckets
      |> List.filter_map (function
           | [] -> None
           | ps -> Some (Array.of_list (List.rev ps)))
    end
  in
  match groups with
  | [] -> ()
  | groups ->
    let nw = List.length groups in
    let mon =
      {
        m_mu = Mutex.create ();
        m_blocked = 0;
        m_unfinished = nw;
        m_dead = false;
        m_error = None;
        m_abort = Atomic.make false;
      }
    in
    let started = Array.make nw 0. in
    let finished = Array.make nw 0. in
    (* Spinning is only profitable when every worker domain can hold a
       hardware thread; oversubscribed, a spinner burns the core its
       producer needs to make the token it is waiting for.  Fused
       placement shrinks the worker count, which is exactly what
       re-enables spinning on small hosts.  Profiled runs keep it on so
       the spin phase is observable (the bounded budget keeps the
       distortion small). *)
    let spin = profiled || host_domains_now () >= nw in
    let domains =
      List.mapi
        (fun slot ps ->
          Domain.spawn (fun () ->
              if Array.length ps = 1 then
                par_worker net mon ps.(0) ~cycles ~started ~finished ~slot ~spin
                  ~batch_cycles ~spin_budget
              else
                par_worker_group net mon ps ~cycles ~started ~finished ~slot
                  ~spin ~batch_cycles ~spin_budget))
        groups
    in
    List.iter Domain.join domains;
    (* Barrier-wait attribution: time each domain idled between its own
       finish and the last domain's — computed here, after the joins, so
       no cross-domain synchronization is needed while running. *)
    let tel = Network.telemetry net in
    if (Telemetry.enabled tel || profiled) && mon.m_error = None && not mon.m_dead
    then begin
      let last = Array.fold_left max 0. finished in
      let first = Array.fold_left min infinity started in
      List.iteri
        (fun slot ps ->
          Array.iter
            (fun p ->
              let gap = ns_of_us (last -. finished.(slot)) in
              if Telemetry.enabled tel then begin
                let c =
                  Telemetry.counter tel
                    (Printf.sprintf "sched.par.%s.barrier_ns" p.Network.pt_name)
                in
                Telemetry.add c gap
              end;
              Telemetry.Profile.add_barrier p.Network.pt_prof gap;
              (* A late domain start is also synchronization overhead:
                 the partition existed but had no CPU yet.  Charged as
                 barrier, so every worker's phases tile [first, last] —
                 the span accumulated as the export's wall-clock
                 denominator. *)
              Telemetry.Profile.add_barrier p.Network.pt_prof
                (ns_of_us (started.(slot) -. first)))
            ps)
        groups;
      if profiled then
        Telemetry.Profile.add_wall_ns (Network.profile net)
          (ns_of_us (last -. first))
    end;
    (match mon.m_error with
    | Some e -> raise e
    | None -> if mon.m_dead then Network.raise_deadlock net)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Runs every partition up to [cycles] target cycles under the chosen
    scheduler.  [batch_cycles] caps cycle-batched token exchange (1 =
    per-cycle, the default; the parallel policy adapts the actual batch
    depth per partition within the cap); [spin_budget] tunes the
    spin-then-park idle policy (0 disables spinning).  Raises
    {!Network.Deadlock} with a channel-state report if no forward
    progress is possible (Fig. 2a). *)
let run ?(scheduler = default) ?(batch_cycles = default_batch_cycles)
    ?spin_budget net ~cycles =
  Network.prime net;
  match scheduler with
  | Sequential -> run_seq net ~cycles ~batch_cycles
  | Parallel -> run_par net ~cycles ~batch_cycles ?spin_budget

(** Runs until [pred] holds or all partitions reach [max_cycles];
    returns the reached cycle of partition 0.  The sequential scheduler
    checks [pred] after every whole-network sweep (partitions may sit at
    different cycles when it fires); the parallel scheduler checks at
    whole-cycle barriers, where every partition holds the same cycle —
    [pred] must not race with partition domains, so it only runs while
    they are joined. *)
let run_until ?(scheduler = default) ?(batch_cycles = default_batch_cycles)
    ?spin_budget net ~max_cycles pred =
  Network.prime net;
  match scheduler with
  | Sequential ->
    let parts = Network.partitions net in
    let stop = ref false in
    let deadline_reached () =
      Array.for_all (fun p -> p.Network.pt_cycle >= max_cycles) parts
    in
    while (not !stop) && not (deadline_reached ()) do
      let progress = ref false in
      Array.iter
        (fun p ->
          if p.Network.pt_cycle < max_cycles then begin
            let _, prog =
              Network.sweep_batch net p ~limit:max_cycles
                ~max_cycles:batch_cycles ~block:false ~abort:never_abort
            in
            if prog then progress := true
          end)
        parts;
      if pred net then stop := true
      else if not !progress then begin
        assert (Network.quiescent net ~target:max_cycles);
        Network.raise_deadlock net
      end
    done;
    parts.(0).Network.pt_cycle
  | Parallel ->
    let parts = Network.partitions net in
    let min_cycle () =
      Array.fold_left (fun acc p -> min acc p.Network.pt_cycle) max_int parts
    in
    let rec go () =
      let c = min_cycle () in
      if c >= max_cycles then parts.(0).Network.pt_cycle
      else begin
        run_par net ~cycles:(min max_cycles (c + 1)) ~batch_cycles ?spin_budget;
        if pred net then parts.(0).Network.pt_cycle else go ()
      end
    in
    go ()
