(* Latency-insensitive channel descriptions.  A channel aggregates a set
   of same-direction boundary ports; one token carries one value per
   port for one target cycle. *)

type spec = {
  name : string;
  ports : (string * int) list;  (** (port name, width) pairs *)
}

(** Number of payload bits one token of this channel carries; determines
    (de)serialization cost in the platform performance model. *)
let width spec = List.fold_left (fun acc (_, w) -> acc + w) 0 spec.ports

type token = int array

let token_of_ports spec get : token =
  Array.of_list (List.map (fun (p, _) -> get p) spec.ports)

(* Batched gather: all the channel's ports in one engine call — one
   protocol round trip when the engine is remote. *)
let token_of_ports_batch spec get_ports : token =
  Array.of_list (get_ports (List.map fst spec.ports))

let apply_token spec set (tok : token) =
  List.iteri (fun i (p, _) -> set p tok.(i)) spec.ports

let pp_spec ppf spec =
  Fmt.pf ppf "%s(%db:%a)" spec.name (width spec)
    Fmt.(list ~sep:comma string)
    (List.map fst spec.ports)

(* ------------------------------------------------------------------ *)
(* Cross-domain token transport                                        *)
(* ------------------------------------------------------------------ *)

(* A notifier is the per-partition synchronization point: one mutex and
   condition variable shared by all of a partition's input queues, plus
   a version counter bumped on every queue mutation.  A consumer that
   found no runnable work records the version it observed, and only
   blocks if the version is still unchanged under the lock — the classic
   missed-wakeup guard.  Producers pushing to any of the partition's
   queues bump the version and broadcast. *)
module Notifier = struct
  type t = {
    n_mu : Mutex.t;
    n_cond : Condition.t;
    n_version : int Atomic.t;
    mutable n_waiters : int;  (** parked waiters; guarded by [n_mu] *)
  }

  let create () =
    {
      n_mu = Mutex.create ();
      n_cond = Condition.create ();
      n_version = Atomic.make 0;
      n_waiters = 0;
    }

  let version t = Atomic.get t.n_version

  (* Must be called with [n_mu] held.  The version always advances — it
     is the lock-free progress guard that spinning consumers poll — but
     the broadcast (a syscall when contended) is skipped unless someone
     is actually parked, which under the spin-then-park idle policy is
     the uncommon case. *)
  let bump t =
    Atomic.incr t.n_version;
    if t.n_waiters > 0 then Condition.broadcast t.n_cond

  (* One condition wait, registered so {!bump} knows a broadcast is
     needed.  Must be called with [n_mu] held; re-check the guarded
     condition on return as usual. *)
  let wait t =
    t.n_waiters <- t.n_waiters + 1;
    Condition.wait t.n_cond t.n_mu;
    t.n_waiters <- t.n_waiters - 1

  (* Wakes any waiter (used to abort a parallel run from outside). *)
  let poke t =
    Mutex.lock t.n_mu;
    bump t;
    Mutex.unlock t.n_mu
end

exception Aborted
(** Raised out of a blocking {!Bqueue.push} when the abort predicate
    trips while waiting for space (another domain failed or declared
    deadlock). *)

(* A bounded token queue, the software analogue of the paper's QSFP
   channel buffers.  Single producer (the source partition's domain),
   single consumer (the destination partition's domain); both ends
   synchronize on the destination partition's notifier.  The sequential
   scheduler uses the same queues — uncontended mutexes cost little and
   keep one code path. *)
module Bqueue = struct
  type 'a t = {
    bq_q : 'a Queue.t;
    bq_capacity : int;
    mutable bq_notif : Notifier.t;
        (** the owning (consumer) partition's notifier *)
  }

  exception Full

  let create ~capacity ~notif =
    if capacity < 1 then invalid_arg "Bqueue.create: capacity must be positive";
    { bq_q = Queue.create (); bq_capacity = capacity; bq_notif = notif }

  let notifier t = t.bq_notif

  (* Re-points the queue at another synchronization point.  Used by
     domain placement to fuse several partitions onto one notifier; only
     legal while no domain is blocked on the old one (i.e. before a run
     starts). *)
  let set_notifier t n = t.bq_notif <- n

  (* With [block], waits for space (checking [abort] across wakeups and
     raising {!Aborted} if it trips); without, raises {!Full} — the
     sequential scheduler never legitimately fills a queue, so hitting
     capacity there is a hard error rather than a reason to block a
     single-threaded loop forever. *)
  let push t x ~block ~abort =
    let n = t.bq_notif in
    Mutex.lock n.Notifier.n_mu;
    if block then begin
      while Queue.length t.bq_q >= t.bq_capacity && not (abort ()) do
        Notifier.wait n
      done;
      if abort () then begin
        Mutex.unlock n.Notifier.n_mu;
        raise Aborted
      end
    end
    else if Queue.length t.bq_q >= t.bq_capacity then begin
      Mutex.unlock n.Notifier.n_mu;
      raise Full
    end;
    Queue.push x t.bq_q;
    Notifier.bump n;
    Mutex.unlock n.Notifier.n_mu

  (* Slab enqueue: the whole batch goes in under ONE lock with ONE
     wakeup bump — the amortization that makes K-cycle batched exchange
     cheaper than K single pushes.  With [block], a full queue publishes
     the prefix already enqueued (so the consumer can drain it) and
     waits for space; without, {!Full} is raised when the remainder does
     not fit — the prefix stays enqueued, which is fine because the
     sequential scheduler treats Full as a hard error anyway. *)
  let push_list t xs ~block ~abort =
    match xs with
    | [] -> ()
    | xs ->
      let n = t.bq_notif in
      Mutex.lock n.Notifier.n_mu;
      (try
         List.iter
           (fun x ->
             if Queue.length t.bq_q >= t.bq_capacity then begin
               if not block then raise Full;
               Notifier.bump n;
               while Queue.length t.bq_q >= t.bq_capacity && not (abort ()) do
                 Notifier.wait n
               done;
               if abort () then raise Aborted
             end;
             Queue.push x t.bq_q)
           xs
       with e ->
         Notifier.bump n;
         Mutex.unlock n.Notifier.n_mu;
         raise e);
      Notifier.bump n;
      Mutex.unlock n.Notifier.n_mu

  let peek_opt t =
    Mutex.lock t.bq_notif.Notifier.n_mu;
    let v = Queue.peek_opt t.bq_q in
    Mutex.unlock t.bq_notif.Notifier.n_mu;
    v

  (* Head peek without taking the notifier mutex: for batched sweeps
     that snapshot several sibling queues under one lock the caller
     already holds. *)
  let peek_opt_unlocked t = Queue.peek_opt t.bq_q

  (* Slab peek: up to [n] head tokens in queue order, without touching
     the lock — the multi-cycle sweep snapshots every sibling queue's
     batch under the single notifier lock the caller already holds.
     Lazy [Seq] traversal, so cost is O(min n length) not O(length). *)
  let peek_upto_unlocked t n =
    if n <= 0 then [||] else Queue.to_seq t.bq_q |> Seq.take n |> Array.of_seq

  (* Pops the head without bumping the notifier: the caller batches
     drops across sibling queues under one lock and bumps once.  Must be
     called with the notifier mutex held and the queue non-empty. *)
  let drop_unlocked t = ignore (Queue.pop t.bq_q)

  (* Slab drop, same contract as {!drop_unlocked}: the queue must hold
     at least [n] elements. *)
  let drop_n_unlocked t n =
    for _ = 1 to n do
      ignore (Queue.pop t.bq_q)
    done

  (* Locked slab drop: [n] heads gone under one lock with one bump. *)
  let drop_n t n =
    if n > 0 then begin
      Mutex.lock t.bq_notif.Notifier.n_mu;
      drop_n_unlocked t n;
      Notifier.bump t.bq_notif;
      Mutex.unlock t.bq_notif.Notifier.n_mu
    end

  (* Drops the head token (consumer side), freeing space and waking any
     producer blocked on a full queue. *)
  let drop t =
    Mutex.lock t.bq_notif.Notifier.n_mu;
    ignore (Queue.pop t.bq_q);
    Notifier.bump t.bq_notif;
    Mutex.unlock t.bq_notif.Notifier.n_mu

  let is_empty t =
    Mutex.lock t.bq_notif.Notifier.n_mu;
    let v = Queue.is_empty t.bq_q in
    Mutex.unlock t.bq_notif.Notifier.n_mu;
    v

  let length t =
    Mutex.lock t.bq_notif.Notifier.n_mu;
    let v = Queue.length t.bq_q in
    Mutex.unlock t.bq_notif.Notifier.n_mu;
    v

  (* Lock-free emptiness probe for the quiescence check: only sound once
     every producer and the consumer are blocked (their last mutations
     were published by the monitor lock they took to register). *)
  let is_empty_unsynchronized t = Queue.is_empty t.bq_q

  let to_list t =
    Mutex.lock t.bq_notif.Notifier.n_mu;
    let v = Queue.fold (fun acc x -> x :: acc) [] t.bq_q |> List.rev in
    Mutex.unlock t.bq_notif.Notifier.n_mu;
    v

  (* Replaces the whole contents (checkpoint/snapshot restore). *)
  let set_contents t xs =
    Mutex.lock t.bq_notif.Notifier.n_mu;
    Queue.clear t.bq_q;
    List.iter (fun x -> Queue.push x t.bq_q) xs;
    Notifier.bump t.bq_notif;
    Mutex.unlock t.bq_notif.Notifier.n_mu
end
