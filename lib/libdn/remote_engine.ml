(* A partition engine living in another PROCESS — the software analogue
   of a partition living on another FPGA.  The parent ships the unit's
   flattened circuit to a worker process (see [bin/fireaxe_worker]) and
   proxies the {!Engine.t} operations over a line-based pipe protocol,
   so the LI-BDN network schedules local and remote partitions exactly
   alike: tokens are the only thing that crosses the process boundary,
   just as they are the only thing that crosses the QSFP cable.

   Protocol (one request per line; commands with no reply pipeline
   freely because the pipe preserves order):

     set <name> <int>          -> (no reply)
     eval | step | runcone <id> | restore <id>   -> (no reply)
     get <name>                -> <int>
     sample <name...>          -> space-joined ints, one per name
     width <name>              -> <int> (-1: not a signal there)
     deps <port>               -> space-joined names (possibly empty)
     cone <root...>            -> <id>
     checkpoint                -> <id>
     poke <mem> <addr> <int>   -> (no reply)
     peek <mem> <addr>         -> <int>
     savestate                 -> "state <n>" then n lines of state text
     loadstate <n> (+ n lines) -> "ok" | "error: <msg>"
     profile                   -> one-line JSON (fireaxe-profile-1 slice)
     quit                      -> (worker exits)

   Reads go through a select(2)-guarded line reader, so a worker that
   wedges without exiting (stuck in a loop, SIGSTOPped, or emitting a
   truncated reply) surfaces as {!Worker_died} after [read_timeout]
   instead of hanging the whole simulation.  [reconnect] respawns a
   dead worker and replays its cone registrations, which is what lets a
   supervisor resurrect a partition in place (the network keeps its
   engine closures; only the process behind the pipe changes). *)

type conn = {
  mutable c_rd : Wire.reader;  (** buffered line reader over the worker's stdout *)
  mutable c_out : out_channel;
  mutable c_pid : int;
  c_label : string;  (** partition/unit name, for diagnostics *)
  mutable c_last : string;  (** last command written to the worker *)
  mutable c_alive : bool;
  mutable c_closed : bool;  (** [close] already ran (idempotence) *)
  c_timeout : float option;  (** max seconds to wait for a reply byte *)
  c_engine : string option;
      (** evaluation-engine name passed on the worker's command line;
          replayed verbatim by {!reconnect} *)
  c_lanes : int option;
      (** engine lane count passed on the worker's command line;
          replayed verbatim by {!reconnect} *)
  mutable c_cones : (string * int) list;
      (** cone registrations (command line, id), newest first — replayed
          verbatim by {!reconnect} so baked-in cone ids stay valid *)
  c_tel_on : bool;  (** gates the clock reads around round trips *)
  c_bytes_out : Telemetry.counter;  (** protocol bytes written (incl. newline) *)
  c_bytes_in : Telemetry.counter;  (** reply bytes read (incl. newline) *)
  c_rtt : Telemetry.hist;  (** request/reply round-trip latency, µs *)
  c_profile : bool;
      (** worker spawned with profiling on (5th argv slot; replayed by
          {!reconnect}) *)
  c_prof_on : bool;  (** gates the wire-cost clock reads *)
  c_wire : Telemetry.Profile.wire;  (** round trips, bytes, wire ns *)
}

exception Worker_died of { label : string; last_command : string; status : string }

let () =
  Printexc.register_printer (function
    | Worker_died { label; last_command; status } ->
      Some
        (Printf.sprintf
           "remote engine: worker for partition %S died (%s) while handling %S" label
           status last_command)
    | _ -> None)

let pid conn = conn.c_pid
let label conn = conn.c_label

(* Reaps and renders the worker's exit status.  A pipe EOF can precede
   the worker becoming reapable by a moment, so poll briefly rather
   than block (the pipes could also break with the worker still up). *)
let exit_status conn =
  let rec poll tries =
    match Unix.waitpid [ Unix.WNOHANG ] conn.c_pid with
    | 0, _ ->
      if tries = 0 then "no exit status yet"
      else begin
        Unix.sleepf 0.002;
        poll (tries - 1)
      end
    | _, Unix.WEXITED n -> Printf.sprintf "exited with code %d" n
    | _, Unix.WSIGNALED n -> Printf.sprintf "killed by signal %d" n
    | _, Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n
    | exception Unix.Unix_error _ -> "already reaped"
  in
  poll 50

(* The worker vanished under us: mark the connection dead and raise a
   diagnosis naming the partition and the command in flight (a bare
   [End_of_file] from the pipe told the caller nothing). *)
let died conn =
  conn.c_alive <- false;
  raise (Worker_died { label = conn.c_label; last_command = conn.c_last; status = exit_status conn })

(* The worker is (probably) still up but stopped answering: same
   diagnosis channel, different status.  The connection is unusable
   either way — [close] will SIGKILL the wedged process. *)
let timed_out conn t =
  conn.c_alive <- false;
  raise
    (Worker_died
       {
         label = conn.c_label;
         last_command = conn.c_last;
         status = Printf.sprintf "read timeout after %gs (worker wedged)" t;
       })

(* Reads one protocol line (without the newline) through the shared
   {!Wire} reader.  Raises {!Worker_died} on EOF, pipe errors, or a
   [timeout] expiry. *)
let read_line ?timeout conn =
  let timeout = match timeout with Some _ as t -> t | None -> conn.c_timeout in
  try Wire.read_line ?timeout conn.c_rd with
  | Wire.Closed _ -> died conn
  | Wire.Timeout t -> timed_out conn t

let write_line conn line =
  conn.c_last <- line;
  Telemetry.add conn.c_bytes_out (String.length line + 1);
  try
    output_string conn.c_out line;
    output_char conn.c_out '\n'
  with Sys_error _ -> died conn

let send conn fmt = Printf.ksprintf (write_line conn) fmt

let ask conn fmt =
  Printf.ksprintf
    (fun line ->
      let timed = conn.c_tel_on || conn.c_prof_on in
      let t0 = if timed then Unix.gettimeofday () else 0. in
      write_line conn line;
      (try flush conn.c_out with Sys_error _ -> died conn);
      let reply = read_line conn in
      if timed then begin
        let dt = Unix.gettimeofday () -. t0 in
        if conn.c_tel_on then begin
          Telemetry.observe conn.c_rtt (int_of_float (dt *. 1e6));
          Telemetry.add conn.c_bytes_in (String.length reply + 1)
        end;
        Telemetry.Profile.add_wire conn.c_wire
          ~bytes_out:(String.length line + 1)
          ~bytes_in:(String.length reply + 1)
          (int_of_float (dt *. 1e9))
      end;
      reply)
    fmt

let ask_int conn fmt =
  Printf.ksprintf
    (fun line ->
      let reply = ask conn "%s" line in
      match int_of_string_opt (String.trim reply) with
      | Some v -> v
      | None -> failwith (Printf.sprintf "remote engine: bad reply %S to %S" reply line))
    fmt

(* Launches the worker process and returns the parent-side plumbing.
   cloexec: the worker must NOT inherit the parent-side pipe ends (or
   the write end of its own stdin pipe would keep EOF from ever
   arriving after the parent exits); [create_process] dup2s the
   child-side ends onto fds 0/1, which survive the exec. *)
let launch ~worker ~fir_path ~engine ~lanes ~profile =
  let parent_read, child_write = Unix.pipe ~cloexec:true () in
  let child_read, parent_write = Unix.pipe ~cloexec:true () in
  let argv =
    (* Positional argv slots: lanes ride third, so requesting them
       forces the engine name into the second; the "profile" token
       rides fourth and forces both (defaults spelled out when the
       caller left them unspecified). *)
    let engine_name () =
      match engine with
      | Some e -> e
      | None -> Rtlsim.Sim.engine_name Rtlsim.Sim.default_engine
    in
    match engine, lanes, profile with
    | None, None, false -> [| worker; fir_path |]
    | Some e, None, false -> [| worker; fir_path; e |]
    | _, Some n, false -> [| worker; fir_path; engine_name (); string_of_int n |]
    | _, n, true ->
      [|
        worker; fir_path; engine_name ();
        string_of_int (Option.value n ~default:1); "profile";
      |]
  in
  let pid = Unix.create_process worker argv child_read child_write Unix.stderr in
  Unix.close child_read;
  Unix.close child_write;
  (parent_read, Unix.out_channel_of_descr parent_write, pid)

(* Startup can legitimately take longer than a steady-state reply (the
   worker parses and compiles the whole unit circuit before "ready"),
   so the handshake gets a floor on the configured timeout. *)
let ready_timeout conn =
  match conn.c_timeout with None -> None | Some t -> Some (Float.max t 10.)

let await_ready conn =
  match read_line ?timeout:(ready_timeout conn) conn with
  | "ready" -> ()
  | other -> failwith (Printf.sprintf "remote engine: expected ready, got %S" other)

(** Spawns a worker process serving the circuit in [fir_path].  [label]
    names the partition in diagnostics when the worker dies.
    [read_timeout] bounds every reply wait (default: wait forever). *)
let spawn ?(label = "unnamed") ?read_timeout ?(telemetry = Telemetry.null)
    ?(profile = Telemetry.Profile.null) ?engine ?lanes ~worker ~fir_path () =
  (* A dead worker must surface as a {!Worker_died} diagnosis, not a
     fatal SIGPIPE when the parent next writes to the closed pipe. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let engine = Option.map Rtlsim.Sim.engine_name engine in
  let profiled = Telemetry.Profile.enabled profile in
  let parent_read, out, pid =
    launch ~worker ~fir_path ~engine ~lanes ~profile:profiled
  in
  let metric kind = Printf.sprintf "remote.%s.%s" label kind in
  let conn =
    {
      c_rd = Wire.reader ~label parent_read;
      c_out = out;
      c_pid = pid;
      c_label = label;
      c_last = "(startup)";
      c_alive = true;
      c_closed = false;
      c_timeout = read_timeout;
      c_engine = engine;
      c_lanes = lanes;
      c_cones = [];
      c_tel_on = Telemetry.enabled telemetry;
      c_bytes_out = Telemetry.counter telemetry (metric "bytes_out");
      c_bytes_in = Telemetry.counter telemetry (metric "bytes_in");
      c_rtt = Telemetry.hist telemetry (metric "rtt_us");
      c_profile = profiled;
      c_prof_on = profiled;
      c_wire = Telemetry.Profile.wire profile ~label;
    }
  in
  (* The worker announces itself once the circuit is loaded, so the
     caller may delete the .fir file as soon as spawn returns. *)
  await_ready conn;
  conn

(** Whether the worker process is still running.  Reaps it (and marks
    the connection dead) when it is not. *)
let is_alive conn =
  conn.c_alive
  &&
  match Unix.waitpid [ Unix.WNOHANG ] conn.c_pid with
  | 0, _ -> true
  | _ ->
    conn.c_alive <- false;
    false
  | exception Unix.Unix_error _ ->
    conn.c_alive <- false;
    false

(** Sends quit, waits up to [grace] seconds for the worker to exit, then
    SIGKILLs and reaps it.  Never raises and never blocks unboundedly;
    a second call is a no-op. *)
let close ?(grace = 1.0) conn =
  if not conn.c_closed then begin
    conn.c_closed <- true;
    if conn.c_alive then begin
      conn.c_alive <- false;
      try
        output_string conn.c_out "quit\n";
        flush conn.c_out
      with Sys_error _ -> ()
    end;
    (* Bounded reap: poll for [grace], then SIGKILL — a wedged worker
       (stuck loop, SIGSTOP) would otherwise block us forever.  After
       the kill, one more bounded poll; SIGKILL cannot be ignored, so
       failing to reap within it means the process is already gone or
       someone else reaped it. *)
    let rec reap deadline ~killed =
      match Unix.waitpid [ Unix.WNOHANG ] conn.c_pid with
      | 0, _ ->
        if Unix.gettimeofday () < deadline then begin
          Unix.sleepf 0.002;
          reap deadline ~killed
        end
        else if not killed then begin
          (try Unix.kill conn.c_pid Sys.sigkill with Unix.Unix_error _ -> ());
          reap (Unix.gettimeofday () +. 1.0) ~killed:true
        end
      | _ -> ()
      | exception Unix.Unix_error _ -> ()
    in
    reap (Unix.gettimeofday () +. grace) ~killed:false;
    (try Unix.close (Wire.fd conn.c_rd) with Unix.Unix_error _ -> ());
    try close_out_noerr conn.c_out with Sys_error _ -> ()
  end

(** Respawns a dead worker behind the SAME connection: launches a fresh
    process from [fir_path], swaps the plumbing in place, and replays
    the recorded cone registrations so every closure already holding
    this conn (the network's engine and cone evaluators) keeps working.
    In-memory checkpoint ids do NOT survive — they lived in the dead
    process; durable restoration is the caller's job (load_state). *)
let reconnect conn ~worker ~fir_path =
  if conn.c_closed then invalid_arg "Remote_engine.reconnect: connection closed";
  (* Release the dead process's plumbing; it may already be reaped. *)
  (try Unix.close (Wire.fd conn.c_rd) with Unix.Unix_error _ -> ());
  (try close_out_noerr conn.c_out with Sys_error _ -> ());
  (try ignore (Unix.waitpid [ Unix.WNOHANG ] conn.c_pid) with Unix.Unix_error _ -> ());
  let parent_read, out, pid =
    launch ~worker ~fir_path ~engine:conn.c_engine ~lanes:conn.c_lanes
      ~profile:conn.c_profile
  in
  conn.c_rd <- Wire.reader ~label:conn.c_label parent_read;
  conn.c_out <- out;
  conn.c_pid <- pid;
  conn.c_last <- "(reconnect)";
  conn.c_alive <- true;
  await_ready conn;
  (* Replay cone registrations oldest-first; the worker's cone counter
     is deterministic, so each must come back under its original id. *)
  List.iter
    (fun (line, id) ->
      let got = ask conn "%s" line in
      if int_of_string_opt (String.trim got) <> Some id then
        failwith
          (Printf.sprintf
             "remote engine: cone replay for %S returned id %s, expected %d (worker \
              protocol drift?)"
             line got id))
    (List.rev conn.c_cones)

(** Direct memory access on the remote unit (program loading, state
    inspection). *)
let poke_mem conn mem addr v = send conn "poke %s %d %d" mem addr v

let peek_mem conn mem addr = ask_int conn "peek %s %d" mem addr

(** Reads any remote signal (forces a flush of pipelined commands). *)
let get conn name = ask_int conn "get %s" name

(** Reads a remote signal on one specific engine lane. *)
let get_lane conn name ~lane = ask_int conn "get %s %d" name lane

(** The remote engine's lane count. *)
let lanes conn = ask_int conn "lanes"

(** Whether the remote unit holds a signal or memory of that name. *)
let has conn name = ask_int conn "has %s" name <> 0

(** Reads many remote signals in ONE round trip (the waveform-capture
    hot path: per-cycle sampling pays one RTT per worker, not one per
    signal).  Values come back in request order. *)
let sample conn names =
  match names with
  | [] -> []
  | _ ->
    let line = "sample " ^ String.concat " " names in
    let reply = ask conn "%s" line in
    let values =
      Wire.words reply
      |> List.map (fun s ->
             match int_of_string_opt s with
             | Some v -> v
             | None ->
               failwith
                 (Printf.sprintf "remote engine: bad sample reply %S to %S" reply line))
    in
    if List.length values <> List.length names then
      failwith
        (Printf.sprintf "remote engine: sample reply has %d values for %d names"
           (List.length values) (List.length names));
    values

(** The width in bits of a remote SIGNAL; [None] when the worker holds
    no signal of that name (memories included — they cannot be
    waveform-sampled). *)
let signal_width conn name =
  match ask_int conn "width %s" name with -1 -> None | w -> Some w

(* ------------------------------------------------------------------ *)
(* Durable state transfer                                              *)
(* ------------------------------------------------------------------ *)

(** The remote unit's full architectural state as the standard
    {!Rtlsim.Sim.state_to_string} text — the piece that lets a durable
    whole-simulation checkpoint cover remote partitions. *)
let save_state conn =
  let header = ask conn "savestate" in
  match Wire.words header with
  | [ "state"; n ] ->
    let n =
      match int_of_string_opt n with
      | Some n when n >= 0 -> n
      | _ -> failwith (Printf.sprintf "remote engine: bad savestate header %S" header)
    in
    let buf = Buffer.create 4096 in
    for _ = 1 to n do
      let line = read_line conn in
      Telemetry.add conn.c_bytes_in (String.length line + 1);
      Buffer.add_string buf line;
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf
  | _ -> failwith (Printf.sprintf "remote engine: bad savestate header %S" header)

(** Restores a {!save_state} text into the remote unit.  Raises
    [Failure] with the worker's diagnostic if the state does not fit
    the circuit. *)
let load_state conn text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  write_line conn (Printf.sprintf "loadstate %d" (List.length lines));
  List.iter (write_line conn) lines;
  conn.c_last <- "loadstate";
  (try flush conn.c_out with Sys_error _ -> died conn);
  match read_line conn with
  | "ok" -> ()
  | other ->
    failwith
      (Printf.sprintf "remote engine: loadstate for partition %S failed: %s"
         conn.c_label other)

(** The worker's own profile document — the one-line JSON slice the
    [profile] worker command ships back; [None] when the worker was not
    spawned with profiling enabled. *)
let fetch_profile conn =
  if not conn.c_profile then None
  else
    let reply = ask conn "profile" in
    match Telemetry.Json.parse reply with
    | Ok j -> Some j
    | Error m ->
      failwith
        (Printf.sprintf "remote engine: bad profile reply from %S: %s" conn.c_label
           m)

(** The remote unit as an ordinary LI-BDN engine. *)
let engine conn =
  {
    Engine.set_input = (fun name v -> send conn "set %s %d" name v);
    get = (fun name -> ask_int conn "get %s" name);
    (* Per-channel token gather in ONE round trip (the worker's batched
       [sample] command) — the protocol-level half of crossing
       amortization: the no-reply set/eval/step stream pipelines freely
       between gathers, so a K-cycle batch pays K round trips per
       output channel, not K x ports. *)
    get_ports = (fun names -> sample conn names);
    eval_comb = (fun () -> send conn "eval");
    step_seq = (fun () -> send conn "step");
    make_cone_eval =
      (fun roots ->
        let line = "cone " ^ String.concat " " roots in
        let id = ask_int conn "%s" line in
        conn.c_cones <- (line, id) :: conn.c_cones;
        fun () -> send conn "runcone %d" id);
    output_comb_deps =
      (fun port ->
        let reply = ask conn "deps %s" port in
        Wire.words reply);
    checkpoint =
      (fun () ->
        let id = ask_int conn "checkpoint" in
        fun () -> send conn "restore %d" id);
  }
