(* A partition engine living in another PROCESS — the software analogue
   of a partition living on another FPGA.  The parent ships the unit's
   flattened circuit to a worker process (see [bin/fireaxe_worker]) and
   proxies the {!Engine.t} operations over a line-based pipe protocol,
   so the LI-BDN network schedules local and remote partitions exactly
   alike: tokens are the only thing that crosses the process boundary,
   just as they are the only thing that crosses the QSFP cable.

   Protocol (one request per line; commands with no reply pipeline
   freely because the pipe preserves order):

     set <name> <int>          -> (no reply)
     eval | step | runcone <id> | restore <id>   -> (no reply)
     get <name>                -> <int>
     deps <port>               -> space-joined names (possibly empty)
     cone <root...>            -> <id>
     checkpoint                -> <id>
     poke <mem> <addr> <int>   -> (no reply)
     peek <mem> <addr>         -> <int>
     quit                      -> (worker exits)                      *)

type conn = {
  c_in : in_channel;
  c_out : out_channel;
  c_pid : int;
  c_label : string;  (** partition/unit name, for diagnostics *)
  mutable c_last : string;  (** last command written to the worker *)
  mutable c_alive : bool;
  c_tel_on : bool;  (** gates the clock reads around round trips *)
  c_bytes_out : Telemetry.counter;  (** protocol bytes written (incl. newline) *)
  c_bytes_in : Telemetry.counter;  (** reply bytes read (incl. newline) *)
  c_rtt : Telemetry.hist;  (** request/reply round-trip latency, µs *)
}

exception Worker_died of { label : string; last_command : string; status : string }

let () =
  Printexc.register_printer (function
    | Worker_died { label; last_command; status } ->
      Some
        (Printf.sprintf
           "remote engine: worker for partition %S died (%s) while handling %S" label
           status last_command)
    | _ -> None)

let pid conn = conn.c_pid
let label conn = conn.c_label

(* Reaps and renders the worker's exit status.  A pipe EOF can precede
   the worker becoming reapable by a moment, so poll briefly rather
   than block (the pipes could also break with the worker still up). *)
let exit_status conn =
  let rec poll tries =
    match Unix.waitpid [ Unix.WNOHANG ] conn.c_pid with
    | 0, _ ->
      if tries = 0 then "no exit status yet"
      else begin
        Unix.sleepf 0.002;
        poll (tries - 1)
      end
    | _, Unix.WEXITED n -> Printf.sprintf "exited with code %d" n
    | _, Unix.WSIGNALED n -> Printf.sprintf "killed by signal %d" n
    | _, Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n
    | exception Unix.Unix_error _ -> "already reaped"
  in
  poll 50

(* The worker vanished under us: mark the connection dead and raise a
   diagnosis naming the partition and the command in flight (a bare
   [End_of_file] from the pipe told the caller nothing). *)
let died conn =
  conn.c_alive <- false;
  raise (Worker_died { label = conn.c_label; last_command = conn.c_last; status = exit_status conn })

let send conn fmt =
  Printf.ksprintf
    (fun line ->
      conn.c_last <- line;
      Telemetry.add conn.c_bytes_out (String.length line + 1);
      try
        output_string conn.c_out line;
        output_char conn.c_out '\n'
      with Sys_error _ -> died conn)
    fmt

let ask conn fmt =
  Printf.ksprintf
    (fun line ->
      conn.c_last <- line;
      Telemetry.add conn.c_bytes_out (String.length line + 1);
      let t0 = if conn.c_tel_on then Unix.gettimeofday () else 0. in
      let reply =
        try
          output_string conn.c_out line;
          output_char conn.c_out '\n';
          flush conn.c_out;
          input_line conn.c_in
        with Sys_error _ | End_of_file -> died conn
      in
      if conn.c_tel_on then begin
        Telemetry.observe conn.c_rtt
          (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
        Telemetry.add conn.c_bytes_in (String.length reply + 1)
      end;
      reply)
    fmt

let ask_int conn fmt =
  Printf.ksprintf
    (fun line ->
      let reply = ask conn "%s" line in
      match int_of_string_opt (String.trim reply) with
      | Some v -> v
      | None -> failwith (Printf.sprintf "remote engine: bad reply %S to %S" reply line))
    fmt

(** Spawns a worker process serving the circuit in [fir_path].  [label]
    names the partition in diagnostics when the worker dies. *)
let spawn ?(label = "unnamed") ?(telemetry = Telemetry.null) ~worker ~fir_path () =
  (* A dead worker must surface as a {!Worker_died} diagnosis, not a
     fatal SIGPIPE when the parent next writes to the closed pipe. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* cloexec: the worker must NOT inherit the parent-side pipe ends (or
     the write end of its own stdin pipe would keep EOF from ever
     arriving after the parent exits); [create_process] dup2s the
     child-side ends onto fds 0/1, which survive the exec. *)
  let parent_read, child_write = Unix.pipe ~cloexec:true () in
  let child_read, parent_write = Unix.pipe ~cloexec:true () in
  let pid =
    Unix.create_process worker [| worker; fir_path |] child_read child_write Unix.stderr
  in
  Unix.close child_read;
  Unix.close child_write;
  let metric kind = Printf.sprintf "remote.%s.%s" label kind in
  let conn =
    {
      c_in = Unix.in_channel_of_descr parent_read;
      c_out = Unix.out_channel_of_descr parent_write;
      c_pid = pid;
      c_label = label;
      c_last = "(startup)";
      c_alive = true;
      c_tel_on = Telemetry.enabled telemetry;
      c_bytes_out = Telemetry.counter telemetry (metric "bytes_out");
      c_bytes_in = Telemetry.counter telemetry (metric "bytes_in");
      c_rtt = Telemetry.hist telemetry (metric "rtt_us");
    }
  in
  (* The worker announces itself once the circuit is loaded, so the
     caller may delete the .fir file as soon as spawn returns. *)
  (match input_line conn.c_in with
  | "ready" -> ()
  | other -> failwith (Printf.sprintf "remote engine: expected ready, got %S" other)
  | exception End_of_file -> died conn);
  conn

let close conn =
  if conn.c_alive then begin
    conn.c_alive <- false;
    (try
       output_string conn.c_out "quit\n";
       flush conn.c_out
     with Sys_error _ -> ());
    (try ignore (Unix.waitpid [] conn.c_pid) with Unix.Unix_error _ -> ());
    (try close_in conn.c_in with Sys_error _ -> ());
    try close_out conn.c_out with Sys_error _ -> ()
  end

(** Direct memory access on the remote unit (program loading, state
    inspection). *)
let poke_mem conn mem addr v = send conn "poke %s %d %d" mem addr v

let peek_mem conn mem addr = ask_int conn "peek %s %d" mem addr

(** Reads any remote signal (forces a flush of pipelined commands). *)
let get conn name = ask_int conn "get %s" name

(** Whether the remote unit holds a signal or memory of that name. *)
let has conn name = ask_int conn "has %s" name <> 0

(** The remote unit as an ordinary LI-BDN engine. *)
let engine conn =
  {
    Engine.set_input = (fun name v -> send conn "set %s %d" name v);
    get = (fun name -> ask_int conn "get %s" name);
    eval_comb = (fun () -> send conn "eval");
    step_seq = (fun () -> send conn "step");
    make_cone_eval =
      (fun roots ->
        let id = ask_int conn "cone %s" (String.concat " " roots) in
        fun () -> send conn "runcone %d" id);
    output_comb_deps =
      (fun port ->
        let reply = ask conn "deps %s" port in
        String.split_on_char ' ' reply |> List.filter (fun s -> s <> ""));
    checkpoint =
      (fun () ->
        let id = ask_int conn "checkpoint" in
        fun () -> send conn "restore %d" id);
  }
