(* Shared framing for the worker pipe (line frames) and the simulation
   service socket (length-prefixed frames): one buffered reader with
   select(2)-guarded refills, plus the word-level command codec.  See
   wire.mli for the contract. *)

exception Closed of string
exception Timeout of float

let () =
  Printexc.register_printer (function
    | Closed who -> Some (Printf.sprintf "wire: peer %s closed the connection" who)
    | Timeout t -> Some (Printf.sprintf "wire: no reply within %gs" t)
    | _ -> None)

type reader = {
  r_fd : Unix.file_descr;
  r_label : string;
  r_scratch : Bytes.t;
  mutable r_pending : string;  (** bytes read but not yet consumed *)
}

let reader ?(label = "peer") ?(scratch = 65536) fd =
  { r_fd = fd; r_label = label; r_scratch = Bytes.create scratch; r_pending = "" }

let fd r = r.r_fd
let label r = r.r_label
let reset r = r.r_pending <- ""

(* One read(2) into the pending buffer.  [timeout] bounds the wait for
   the first byte; EOF and unreadable descriptors raise [Closed]. *)
let refill r ~timeout =
  (match timeout with
  | None -> ()
  | Some t ->
    let deadline = Unix.gettimeofday () +. t in
    let rec wait () =
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0. then raise (Timeout t)
      else begin
        match Unix.select [ r.r_fd ] [] [] left with
        | [], _, _ -> raise (Timeout t)
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      end
    in
    wait ());
  let n =
    let rec read () =
      try Unix.read r.r_fd r.r_scratch 0 (Bytes.length r.r_scratch) with
      | Unix.Unix_error (Unix.EINTR, _, _) -> read ()
      | Unix.Unix_error _ -> 0
    in
    read ()
  in
  if n = 0 then raise (Closed r.r_label)
  else r.r_pending <- r.r_pending ^ Bytes.sub_string r.r_scratch 0 n

(* A refill only when the kernel already has bytes for us: the event
   loop's per-readable-descriptor pump must never block. *)
let refill_nonblocking r =
  match Unix.select [ r.r_fd ] [] [] 0. with
  | [], _, _ -> false
  | _ ->
    refill r ~timeout:None;
    true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let read_line ?timeout r =
  let rec go () =
    match String.index_opt r.r_pending '\n' with
    | Some i ->
      let line = String.sub r.r_pending 0 i in
      r.r_pending <- String.sub r.r_pending (i + 1) (String.length r.r_pending - i - 1);
      line
    | None ->
      refill r ~timeout;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Length-prefixed frames                                              *)
(* ------------------------------------------------------------------ *)

let max_frame = 64 * 1024 * 1024

let frame_len r =
  let b i = Char.code r.r_pending.[i] in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  if n < 0 || n > max_frame then
    raise (Closed (Printf.sprintf "%s (insane frame length %d)" r.r_label n));
  n

(* Extracts a complete frame from the pending buffer, if present. *)
let take_frame r =
  if String.length r.r_pending < 4 then None
  else begin
    let n = frame_len r in
    if String.length r.r_pending < 4 + n then None
    else begin
      let payload = String.sub r.r_pending 4 n in
      r.r_pending <-
        String.sub r.r_pending (4 + n) (String.length r.r_pending - 4 - n);
      Some payload
    end
  end

let read_frame ?timeout r =
  let rec go () =
    match take_frame r with
    | Some payload -> payload
    | None ->
      refill r ~timeout;
      go ()
  in
  go ()

let try_read_frame r =
  match take_frame r with
  | Some _ as got -> got
  | None -> if refill_nonblocking r then take_frame r else None

let frame payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg (Printf.sprintf "Wire.frame: %d-byte payload" n);
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let write_frame ?(label = "peer") fd payload =
  let data = frame payload in
  let len = String.length data in
  let rec push off =
    if off < len then begin
      let n =
        try Unix.write_substring fd data off (len - off) with
        | Unix.Unix_error (Unix.EINTR, _, _) -> 0
        | Unix.Unix_error _ -> raise (Closed label)
      in
      push (off + n)
    end
  in
  push 0

(* ------------------------------------------------------------------ *)
(* Tagged frames                                                       *)
(* ------------------------------------------------------------------ *)

let tag_reply = 'R'
let tag_push = 'P'

let tag_frame tag payload = String.make 1 tag ^ payload

let untag_frame payload =
  if payload = "" then invalid_arg "Wire.untag_frame: empty frame";
  (payload.[0], String.sub payload 1 (String.length payload - 1))

let write_tagged ?label fd ~tag payload =
  write_frame ?label fd (tag_frame tag payload)

(* ------------------------------------------------------------------ *)
(* Command codec                                                       *)
(* ------------------------------------------------------------------ *)

let words line = String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

let int_word ~context w =
  match int_of_string_opt w with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: expected an integer, got %S" context w)

let split_payload payload =
  match String.index_opt payload '\n' with
  | None -> (payload, "")
  | Some i ->
    ( String.sub payload 0 i,
      String.sub payload (i + 1) (String.length payload - i - 1) )

let join_payload line blob =
  if String.contains line '\n' then invalid_arg "Wire.join_payload: newline in line";
  if blob = "" then line else line ^ "\n" ^ blob
