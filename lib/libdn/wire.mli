(** Shared framing and command codec for FireAxe's inter-process
    protocols — the plumbing that was duplicated between the
    {!Remote_engine} worker pipe and the simulation-service socket.

    Two framings over one buffered, select(2)-guarded reader:

    - {e line} frames (the worker protocol): one request or reply per
      newline-terminated line;
    - {e length-prefixed} frames (the service protocol,
      [fireaxe-service-1]): a 4-byte big-endian payload length followed
      by the payload bytes, so replies may carry arbitrary text —
      circuit sources, state blobs, report tables — without escaping.

    Every read honors an optional timeout, surfacing a wedged peer as
    {!Timeout} instead of hanging the caller; a vanished peer (EOF or a
    broken pipe) is {!Closed}.  Callers translate those into their own
    diagnoses ([Remote_engine] raises [Worker_died]; the service drops
    the connection). *)

(** The peer is gone: EOF on the descriptor or a write into a broken
    pipe.  The payload names the endpoint when the caller set one. *)
exception Closed of string

(** No reply byte arrived within the allotted seconds. *)
exception Timeout of float

(** A buffered reader over one file descriptor.  Reads pull whatever
    the kernel has into an internal buffer; frame extraction consumes
    from it, so pipelined frames cost no extra syscalls. *)
type reader

(** [reader fd] wraps [fd].  [label] names the peer in {!Closed}
    diagnostics; [scratch] sizes the read(2) staging buffer. *)
val reader : ?label:string -> ?scratch:int -> Unix.file_descr -> reader

val fd : reader -> Unix.file_descr
val label : reader -> string

(** Discards any buffered bytes (used when the peer behind the
    descriptor is replaced, e.g. a worker respawn). *)
val reset : reader -> unit

(** Reads one newline-terminated line (without the newline).  Blocks up
    to [timeout] seconds (forever when omitted). *)
val read_line : ?timeout:float -> reader -> string

(** Reads one length-prefixed frame's payload.  Blocks up to [timeout]
    seconds for EACH refill (forever when omitted). *)
val read_frame : ?timeout:float -> reader -> string

(** Non-blocking frame extraction for event loops: consumes a complete
    frame from the buffer if one is present, otherwise attempts ONE
    non-blocking refill and tries again.  [None] means no complete
    frame yet; {!Closed} means the peer is gone.  Call in a loop after
    select(2) reports the descriptor readable — several frames may
    arrive in one read. *)
val try_read_frame : reader -> string option

(** Encodes [payload] as one length-prefixed frame. *)
val frame : string -> string

(** Writes one length-prefixed frame; raises {!Closed} on a broken
    descriptor.  Writes the whole frame before returning. *)
val write_frame : ?label:string -> Unix.file_descr -> string -> unit

(** Frames larger than this (64 MiB) are rejected on both sides — a
    corrupt length prefix must not look like an instruction to allocate
    gigabytes. *)
val max_frame : int

(** {1 Tagged frames}

    [fireaxe-service-2] multiplexes server-initiated pushes with the
    one-outstanding-request reply discipline by prefixing every frame
    payload with a one-byte tag: {!tag_reply} for the reply the client
    is waiting on, {!tag_push} for an unsolicited [watch]/[event]
    frame.  Untagged framing (the worker pipes, [fireaxe-service-1]
    peers) is untouched — a tag is just the payload's first byte. *)

val tag_reply : char
val tag_push : char

(** [tag_frame tag payload] prefixes the tag byte. *)
val tag_frame : char -> string -> string

(** Splits a tagged payload into (tag, rest); [Invalid_argument] on an
    empty frame. *)
val untag_frame : string -> char * string

(** {!write_frame} of [tag_frame tag payload]. *)
val write_tagged : ?label:string -> Unix.file_descr -> tag:char -> string -> unit

(** {1 Command codec}

    Requests and replies are lines of space-separated words; bulk data
    rides behind the first newline of a frame payload. *)

(** Splits on single spaces, dropping empty words. *)
val words : string -> string list

(** [int_word ~context w] parses [w] as an integer; [Failure] naming
    [context] otherwise. *)
val int_word : context:string -> string -> int

(** Splits a frame payload into its command line and the (possibly
    empty) blob behind the first newline. *)
val split_payload : string -> string * string

(** [join_payload line blob]: the inverse of {!split_payload} ([line]
    must be newline-free). *)
val join_payload : string -> string -> string
