(** A partition engine living in another process — the software
    analogue of a partition on another FPGA.  A worker process serves
    the unit's circuit; {!engine} proxies the {!Engine.t} operations
    over pipes so the LI-BDN network schedules local and remote
    partitions alike (tokens are all that crosses the boundary). *)

type conn

exception Worker_died of { label : string; last_command : string; status : string }
(** The worker process exited unexpectedly.  [label] names the
    partition, [last_command] is the protocol line in flight, [status]
    renders the exit/signal status when already observable. *)

(** Spawns a worker process (the [fireaxe-worker] binary) serving the
    circuit stored at [fir_path].  [label] names the partition in
    {!Worker_died} diagnostics.  [telemetry] (default {!Telemetry.null})
    records [remote.<label>.bytes_out]/[.bytes_in] counters and a
    [remote.<label>.rtt_us] round-trip latency histogram. *)
val spawn :
  ?label:string ->
  ?telemetry:Telemetry.t ->
  worker:string ->
  fir_path:string ->
  unit ->
  conn

(** The worker's process id (tests use it to simulate crashes). *)
val pid : conn -> int

(** The partition label given at {!spawn}. *)
val label : conn -> string

(** Sends quit and reaps the worker. *)
val close : conn -> unit

(** Direct memory access on the remote unit (program loading, state
    inspection). *)
val poke_mem : conn -> string -> int -> int -> unit

val peek_mem : conn -> string -> int -> int

(** Reads any remote signal (forces a flush of pipelined commands). *)
val get : conn -> string -> int

(** Whether the remote unit holds a signal or memory of that name. *)
val has : conn -> string -> bool

(** The remote unit as an ordinary LI-BDN engine. *)
val engine : conn -> Engine.t
