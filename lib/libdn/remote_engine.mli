(** A partition engine living in another process — the software
    analogue of a partition on another FPGA.  A worker process serves
    the unit's circuit; {!engine} proxies the {!Engine.t} operations
    over pipes so the LI-BDN network schedules local and remote
    partitions alike (tokens are all that crosses the boundary). *)

type conn

exception Worker_died of { label : string; last_command : string; status : string }
(** The worker process exited unexpectedly — or, with a [read_timeout]
    configured, stopped answering.  [label] names the partition,
    [last_command] is the protocol line in flight, [status] renders the
    exit/signal status when already observable (or the timeout). *)

(** Spawns a worker process (the [fireaxe-worker] binary) serving the
    circuit stored at [fir_path].  [label] names the partition in
    {!Worker_died} diagnostics.  [read_timeout] bounds every reply wait
    in seconds (default: wait forever); a wedged worker then surfaces
    as {!Worker_died} with the command in flight instead of hanging the
    simulation.  [telemetry] (default {!Telemetry.null}) records
    [remote.<label>.bytes_out]/[.bytes_in] counters and a
    [remote.<label>.rtt_us] round-trip latency histogram.  [engine]
    selects the worker's evaluation engine (passed on its command line
    and replayed by {!reconnect}; the worker's own default otherwise).
    [lanes] sets the worker engine's lane count — N identical copies of
    the unit advanced in lockstep by vectorized evaluation (bytecode
    engine only); also passed on the command line and replayed by
    {!reconnect}. *)
val spawn :
  ?label:string ->
  ?read_timeout:float ->
  ?telemetry:Telemetry.t ->
  ?profile:Telemetry.Profile.t ->
  ?engine:Rtlsim.Sim.engine ->
  ?lanes:int ->
  worker:string ->
  fir_path:string ->
  unit ->
  conn

(** The worker's process id (tests use it to simulate crashes). *)
val pid : conn -> int

(** The partition label given at {!spawn}. *)
val label : conn -> string

(** Whether the worker process is still running; reaps it (and marks
    the connection dead) when it is not. *)
val is_alive : conn -> bool

(** Sends quit, waits up to [grace] seconds (default 1.0) for the
    worker to exit, then SIGKILLs and reaps it.  Idempotent: a second
    call is a no-op.  Never raises and never blocks unboundedly, even
    on a wedged worker. *)
val close : ?grace:float -> conn -> unit

(** Respawns a dead worker behind the same connection: fresh process
    from [fir_path], plumbing swapped in place, recorded cone
    registrations replayed — every closure already holding this conn
    keeps working.  The new process starts from reset state; restore it
    with {!load_state} (in-memory checkpoint ids do not survive). *)
val reconnect : conn -> worker:string -> fir_path:string -> unit

(** Direct memory access on the remote unit (program loading, state
    inspection). *)
val poke_mem : conn -> string -> int -> int -> unit

val peek_mem : conn -> string -> int -> int

(** Reads any remote signal (forces a flush of pipelined commands). *)
val get : conn -> string -> int

(** Reads a remote signal on one specific engine lane. *)
val get_lane : conn -> string -> lane:int -> int

(** The remote engine's lane count. *)
val lanes : conn -> int

(** Whether the remote unit holds a signal or memory of that name. *)
val has : conn -> string -> bool

(** Reads many remote signals in one round trip (the waveform-capture
    hot path); values in request order. *)
val sample : conn -> string list -> int list

(** The width in bits of a remote signal; [None] when the worker holds
    no signal of that name. *)
val signal_width : conn -> string -> int option

(** The remote unit's full architectural state as the standard
    {!Rtlsim.Sim.state_to_string} text — what lets durable
    whole-simulation checkpoints cover remote partitions. *)
val save_state : conn -> string

(** Restores a {!save_state} text into the remote unit.  Raises
    [Failure] with the worker's diagnostic if the state does not fit. *)
val load_state : conn -> string -> unit

(** The worker's own profile document (the one-line JSON slice shipped
    back by the [profile] worker command); [None] when the worker was
    not spawned with profiling enabled.  An enabled [?profile] at
    {!spawn} also records wire cost per round trip (round-trip count,
    request/reply bytes, wire ns) into the given sink. *)
val fetch_profile : conn -> Telemetry.Json.t option

(** The remote unit as an ordinary LI-BDN engine. *)
val engine : conn -> Engine.t
