(* Optimization passes over FLAT modules, feeding the bytecode
   evaluation engine (Rtlsim.Bytecode).

   Every pass is semantics-preserving at the granularity the simulator
   observes: the value stored in each named slot after a combinational
   evaluation is bit-identical to the unoptimized module's — including
   the exact masking behavior of the closure engine (widths drive where
   values wrap, so every rewrite is guarded on [Ast.width_of] equality
   between the original expression and its replacement).

   - {!fold_module}: bottom-up constant folding plus width-safe
     algebraic identities (x+0, x*1, x&0, mux on a literal...).
   - {!share_wires}: wire-level common-subexpression elimination — a
     wire whose (folded) driver is structurally identical to an earlier
     same-width wire's becomes a [Ref] to it.
   - {!share_exprs}: global subexpression sharing — a subexpression
     occurring in two or more distinct connect sources is hoisted into
     a fresh wire, evaluated once per cycle instead of once per use.
   - {!dead_assigns}: removes combinational assignments (and their
     wires) that no live root can observe.  NOT value-preserving for
     the removed wires, so it is opt-in (the default simulator pipeline
     keeps every named slot observable). *)

exception Opt_error of string

let opt_error fmt = Format.kasprintf (fun s -> raise (Opt_error s)) fmt

(** Width environment of a flat module (no instances). *)
let flat_env (m : Ast.module_def) =
  let circuit = { Ast.cname = m.Ast.name; main = m.Ast.name; modules = [ m ] } in
  Ast.module_env circuit m

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

(* Exact replicas of the closure-engine operator semantics
   (lib/rtlsim/sim.ml): folding computes precisely the value the
   interpreter would have, including wrap-around masking and the
   division-by-zero and oversized-shift conventions. *)
let eval_binop op a b ~m =
  match op with
  | Ast.Add -> (a + b) land m
  | Ast.Sub -> (a - b) land m
  | Ast.Mul -> a * b land m
  | Ast.Div -> if b = 0 then 0 else a / b
  | Ast.Rem -> if b = 0 then 0 else a mod b
  | Ast.And -> a land b
  | Ast.Or -> a lor b
  | Ast.Xor -> a lxor b
  | Ast.Shl -> if b > Ast.max_width then 0 else (a lsl b) land m
  | Ast.Shr -> if b > Ast.max_width then 0 else a lsr b
  | Ast.Eq -> if a = b then 1 else 0
  | Ast.Neq -> if a <> b then 1 else 0
  | Ast.Lt -> if a < b then 1 else 0
  | Ast.Le -> if a <= b then 1 else 0
  | Ast.Gt -> if a > b then 1 else 0
  | Ast.Ge -> if a >= b then 1 else 0

let eval_unop op a ~m =
  match op with
  | Ast.Not -> lnot a land m
  | Ast.Neg -> -a land m
  | Ast.Andr -> if a = m then 1 else 0
  | Ast.Orr -> if a <> 0 then 1 else 0
  | Ast.Xorr ->
    let rec parity acc v = if v = 0 then acc else parity (acc lxor (v land 1)) (v lsr 1) in
    parity 0 a

let is_lit v = function Ast.Lit { value; _ } -> value = v | _ -> false

(** Folds [e] bottom-up.  Identity rewrites only apply when the
    replacement has the same [Ast.width_of] as the original — masking
    in enclosing operators depends on operand widths, so a
    width-changing rewrite would change values even when the replaced
    subexpression's value is identical. *)
let rec const_fold env e =
  let width_eq a b = Ast.width_of env a = Ast.width_of env b in
  match e with
  | Ast.Lit _ | Ast.Ref _ -> e
  | Ast.Mux (c, a, b) -> begin
    let c = const_fold env c
    and a = const_fold env a
    and b = const_fold env b in
    let e' = Ast.Mux (c, a, b) in
    match c with
    | Ast.Lit { value; _ } ->
      let pick = if value <> 0 then a else b in
      if width_eq pick e' then pick else e'
    | _ -> if a = b && width_eq a e' then a else e'
  end
  | Ast.Binop (op, a, b) -> begin
    let a = const_fold env a and b = const_fold env b in
    let e' = Ast.Binop (op, a, b) in
    let w = Ast.width_of env e' in
    match (a, b) with
    | Ast.Lit { value = va; _ }, Ast.Lit { value = vb; _ } ->
      Ast.Lit { value = eval_binop op va vb ~m:(Ast.mask w); width = w }
    | _ -> begin
      (* Width-guarded algebraic identities. *)
      let keep_l = width_eq a e' and keep_r = width_eq b e' in
      match op with
      | Ast.Add | Ast.Or | Ast.Xor ->
        if is_lit 0 b && keep_l then a else if is_lit 0 a && keep_r then b else e'
      | Ast.Sub | Ast.Shl | Ast.Shr -> if is_lit 0 b && keep_l then a else e'
      | Ast.Mul ->
        if is_lit 0 a || is_lit 0 b then Ast.Lit { value = 0; width = w }
        else if is_lit 1 b && keep_l then a
        else if is_lit 1 a && keep_r then b
        else e'
      | Ast.And ->
        if is_lit 0 a || is_lit 0 b then Ast.Lit { value = 0; width = w }
        else begin
          (* x & ones: the literal covers every bit x can carry. *)
          let covers x = function
            | Ast.Lit { value; _ } ->
              let mx = Ast.mask (Ast.width_of env x) in
              value land mx = mx
            | _ -> false
          in
          if covers a b && keep_l then a
          else if covers b a && keep_r then b
          else e'
        end
      | _ -> e'
    end
  end
  | Ast.Unop (op, a) -> begin
    let a = const_fold env a in
    let e' = Ast.Unop (op, a) in
    match a with
    | Ast.Lit { value; _ } ->
      let w = Ast.width_of env e' in
      let m = Ast.mask (Ast.width_of env a) in
      Ast.Lit { value = eval_unop op value ~m; width = w }
    | _ -> e'
  end
  | Ast.Bits { e = a; hi; lo } -> begin
    let a = const_fold env a in
    match a with
    | Ast.Lit { value; _ } ->
      Ast.Lit { value = (value lsr lo) land Ast.mask (hi - lo + 1); width = hi - lo + 1 }
    | _ -> Ast.Bits { e = a; hi; lo }
  end
  | Ast.Cat (a, b) -> begin
    let a = const_fold env a and b = const_fold env b in
    let wa = Ast.width_of env a and wb = Ast.width_of env b in
    match (a, b) with
    (* Folding an oversized cat would hide the compile-time error the
       simulator raises for it; leave those alone. *)
    | Ast.Lit { value = va; _ }, Ast.Lit { value = vb; _ }
      when wa + wb <= Ast.max_width ->
      Ast.Lit { value = (va lsl wb) lor vb; width = wa + wb }
    | _ -> Ast.Cat (a, b)
  end
  | Ast.Read { mem; addr } -> Ast.Read { mem; addr = const_fold env addr }

let fold_stmt env s =
  match s with
  | Ast.Connect { dst; src } -> Ast.Connect { dst; src = const_fold env src }
  | Ast.Reg_update { reg; next; enable } ->
    Ast.Reg_update
      { reg; next = const_fold env next; enable = Option.map (const_fold env) enable }
  | Ast.Mem_write { mem; addr; data; enable } ->
    Ast.Mem_write
      {
        mem;
        addr = const_fold env addr;
        data = const_fold env data;
        enable = const_fold env enable;
      }

(** Constant-folds every statement of a flat module. *)
let fold_module (m : Ast.module_def) =
  let env = flat_env m in
  { m with Ast.stmts = List.map (fold_stmt env) m.Ast.stmts }

(* ------------------------------------------------------------------ *)
(* Wire-level common-subexpression elimination                         *)
(* ------------------------------------------------------------------ *)

(** Rewrites the driver of any connect whose source expression is
    structurally identical to an earlier same-width connect's into a
    [Ref] to that first destination.  The rewritten wire then costs one
    copy instead of a whole re-evaluation, and downstream passes (the
    bytecode compiler's per-assignment CSE) see smaller cones.  Trivial
    sources ([Ref]/[Lit]) are left alone — sharing those saves
    nothing.  Sound because connect destinations always hold their
    source masked to the destination width, so equal widths + equal
    sources means equal stored values; and no cycle can appear: the
    representative's own driver is untouched, so the rewritten wire's
    dependency chain strictly shortens. *)
let share_wires (m : Ast.module_def) =
  let env = flat_env m in
  let seen = Hashtbl.create 64 in
  let stmts =
    List.map
      (fun s ->
        match s with
        | Ast.Connect { dst; src } -> begin
          match src with
          | Ast.Ref _ | Ast.Lit _ -> s
          | _ -> begin
            let key = (src, env.Ast.width_of_name dst) in
            match Hashtbl.find_opt seen key with
            | Some rep -> Ast.Connect { dst; src = Ast.Ref rep }
            | None ->
              Hashtbl.add seen key dst;
              s
          end
        end
        | Ast.Reg_update _ | Ast.Mem_write _ -> s)
      m.Ast.stmts
  in
  { m with Ast.stmts }

(* ------------------------------------------------------------------ *)
(* Global subexpression sharing                                        *)
(* ------------------------------------------------------------------ *)

(** Hoists any non-trivial subexpression occurring in two or more
    DISTINCT connect sources into a fresh wire ([cse$N]) driven by
    that subexpression, and rewrites every occurrence (in connect
    sources and sequential operands alike) into a [Ref] to it: the
    shared logic then evaluates once per cycle instead of once per
    use.  Repeats within one source are not counted — the bytecode
    compiler's per-assignment hash-consing already shares those.

    Sound because the hoisted wire's width is exactly the
    subexpression's [Ast.width_of], so every enclosing operator sees an
    operand of unchanged width, and simulator values always fit their
    expression's width (operators that can overflow mask by their own
    width).  Subexpressions containing memory reads are left alone:
    [poke_mem] can plant values wider than the memory, and a hoisted
    (width-masked) wire would launder them where the inline expression
    would not.  No combinational cycle can appear — a hoisted wire
    depends only on names its users already depended on. *)
let share_exprs (m : Ast.module_def) =
  let env = flat_env m in
  let rec has_read = function
    | Ast.Read _ -> true
    | Ast.Lit _ | Ast.Ref _ -> false
    | Ast.Mux (c, a, b) -> has_read c || has_read a || has_read b
    | Ast.Binop (_, a, b) | Ast.Cat (a, b) -> has_read a || has_read b
    | Ast.Unop (_, a) -> has_read a
    | Ast.Bits { e; _ } -> has_read e
  in
  (* Occurrences per subexpression, counted once per connect source. *)
  let counts = Hashtbl.create 256 in
  let count_source src =
    let seen = Hashtbl.create 32 in
    let rec go e =
      match e with
      | Ast.Lit _ | Ast.Ref _ -> ()
      | _ ->
        if not (Hashtbl.mem seen e) then begin
          Hashtbl.replace seen e ();
          if not (has_read e) then
            Hashtbl.replace counts e
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts e));
          match e with
          | Ast.Lit _ | Ast.Ref _ -> ()
          | Ast.Mux (c, a, b) ->
            go c;
            go a;
            go b
          | Ast.Binop (_, a, b) | Ast.Cat (a, b) ->
            go a;
            go b
          | Ast.Unop (_, a) -> go a
          | Ast.Bits { e; _ } -> go e
          | Ast.Read { addr; _ } -> go addr
        end
    in
    go src
  in
  List.iter
    (function Ast.Connect { src; _ } -> count_source src | _ -> ())
    m.Ast.stmts;
  let shared e =
    match Hashtbl.find_opt counts e with Some c -> c >= 2 | None -> false
  in
  let used = Hashtbl.create 64 in
  List.iter (fun (p : Ast.port) -> Hashtbl.replace used p.Ast.pname ()) m.Ast.ports;
  List.iter
    (fun c ->
      match c with
      | Ast.Wire { name; _ }
      | Ast.Reg { name; _ }
      | Ast.Mem { name; _ }
      | Ast.Inst { name; _ } -> Hashtbl.replace used name ())
    m.Ast.comps;
  let counter = ref 0 in
  let rec fresh_name () =
    let n = Printf.sprintf "cse$%d" !counter in
    incr counter;
    if Hashtbl.mem used n then fresh_name ()
    else begin
      Hashtbl.replace used n ();
      n
    end
  in
  let by_expr = Hashtbl.create 64 in
  let new_wires = ref [] in
  (* [rewrite] folds shared subexpressions into wire refs; [descend]
     rewrites only the children (used for a hoisted wire's own driver,
     which must keep its top operator). *)
  let rec rewrite e =
    match e with
    | Ast.Lit _ | Ast.Ref _ -> e
    | _ -> if shared e then Ast.Ref (wire_for e) else descend e
  and descend e =
    match e with
    | Ast.Lit _ | Ast.Ref _ -> e
    | Ast.Mux (c, a, b) -> Ast.Mux (rewrite c, rewrite a, rewrite b)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, rewrite a, rewrite b)
    | Ast.Unop (op, a) -> Ast.Unop (op, rewrite a)
    | Ast.Bits { e = x; hi; lo } -> Ast.Bits { e = rewrite x; hi; lo }
    | Ast.Cat (a, b) -> Ast.Cat (rewrite a, rewrite b)
    | Ast.Read { mem; addr } -> Ast.Read { mem; addr = rewrite addr }
  and wire_for e =
    match Hashtbl.find_opt by_expr e with
    | Some n -> n
    | None ->
      let n = fresh_name () in
      Hashtbl.replace by_expr e n;
      (* [descend] may itself hoist nested wires, so it must run before
         [new_wires] is read — inlining it into the [::] would let the
         unspecified evaluation order drop those nested entries. *)
      let driver = descend e in
      new_wires := (n, Ast.width_of env e, driver) :: !new_wires;
      n
  in
  let stmts =
    List.map
      (fun s ->
        match s with
        | Ast.Connect { dst; src } -> Ast.Connect { dst; src = rewrite src }
        | Ast.Reg_update { reg; next; enable } ->
          Ast.Reg_update
            { reg; next = rewrite next; enable = Option.map rewrite enable }
        | Ast.Mem_write { mem; addr; data; enable } ->
          Ast.Mem_write
            { mem; addr = rewrite addr; data = rewrite data; enable = rewrite enable })
      m.Ast.stmts
  in
  let wires = List.rev !new_wires in
  {
    m with
    Ast.comps =
      m.Ast.comps
      @ List.map (fun (name, width, _) -> Ast.Wire { name; width }) wires;
    stmts =
      stmts
      @ List.map (fun (name, _, driver) -> Ast.Connect { dst = name; src = driver }) wires;
  }

(* ------------------------------------------------------------------ *)
(* Dead-assignment elimination                                         *)
(* ------------------------------------------------------------------ *)

(** The set of names whose combinational values any live root can
    observe: [roots] (e.g. probes, LI-BDN boundary cones), every output
    port, and everything sequential state transitions read (register
    next/enable expressions, memory write operands) — closed
    transitively over connect drivers. *)
let live_names ~roots (m : Ast.module_def) =
  let driver = Hashtbl.create 64 in
  List.iter
    (fun s ->
      match s with
      | Ast.Connect { dst; src } -> Hashtbl.replace driver dst src
      | Ast.Reg_update _ | Ast.Mem_write _ -> ())
    m.Ast.stmts;
  let forced =
    List.concat
      [
        roots;
        List.filter_map
          (fun (p : Ast.port) -> if p.Ast.pdir = Ast.Output then Some p.Ast.pname else None)
          m.Ast.ports;
        List.concat_map
          (fun s ->
            match s with
            | Ast.Connect _ -> []
            | Ast.Reg_update { next; enable; _ } ->
              Ast.expr_refs next
              @ (match enable with Some e -> Ast.expr_refs e | None -> [])
            | Ast.Mem_write { addr; data; enable; _ } ->
              Ast.expr_refs addr @ Ast.expr_refs data @ Ast.expr_refs enable)
          m.Ast.stmts;
      ]
  in
  let live = Hashtbl.create 128 in
  let rec mark n =
    if not (Hashtbl.mem live n) then begin
      Hashtbl.replace live n ();
      match Hashtbl.find_opt driver n with
      | Some e -> List.iter mark (Ast.expr_refs e)
      | None -> ()
    end
  in
  List.iter mark forced;
  live

(** Removes combinational assignments to wires outside
    {!live_names}, together with the wire declarations themselves.
    [roots] names what must stay observable beyond the always-live set
    (outputs, sequential inputs).  Raises {!Opt_error} if a root does
    not exist in the module. *)
let dead_assigns ~roots (m : Ast.module_def) =
  let env = flat_env m in
  List.iter
    (fun r ->
      try ignore (env.Ast.width_of_name r)
      with Ast.Ir_error _ -> opt_error "dead_assigns: unknown root %s" r)
    roots;
  let live = live_names ~roots m in
  let keep n = Hashtbl.mem live n in
  let stmts =
    List.filter
      (fun s ->
        match s with
        | Ast.Connect { dst; _ } -> keep dst
        | Ast.Reg_update _ | Ast.Mem_write _ -> true)
      m.Ast.stmts
  in
  let comps =
    List.filter
      (fun c -> match c with Ast.Wire { name; _ } -> keep name | _ -> true)
      m.Ast.comps
  in
  { m with Ast.stmts; comps }

(* ------------------------------------------------------------------ *)
(* The default pipeline                                                *)
(* ------------------------------------------------------------------ *)

(** The value-preserving pipeline the bytecode engine applies by
    default: fold constants, share duplicate wire drivers, then hoist
    globally shared subexpressions.  Every named slot's evaluated value
    is unchanged (the hoisted [cse$N] wires are additions).  Pass
    [roots] to also run {!dead_assigns} against them (opt-in: dead
    slots then go stale). *)
let optimize ?roots (m : Ast.module_def) =
  let m = share_exprs (share_wires (fold_module m)) in
  match roots with None -> m | Some roots -> dead_assigns ~roots m
