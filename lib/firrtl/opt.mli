(** Optimization passes over flat modules, feeding the bytecode
    evaluation engine ([Rtlsim.Bytecode]).

    {!fold_module} and {!share_wires} are value-preserving for every
    named slot: the value observable after a combinational evaluation is
    bit-identical to the unoptimized module's, including the closure
    engine's exact masking behavior (every algebraic rewrite is guarded
    on [Ast.width_of] equality, since enclosing operators mask by
    operand width).  {!dead_assigns} is opt-in: removed wires stop being
    evaluated at all. *)

exception Opt_error of string

(** Width environment of a flat (instance-free) module. *)
val flat_env : Ast.module_def -> Ast.env

(** Exact replicas of the simulator's operator semantics (wrap-around
    masking, division-by-zero yields 0, oversized shifts yield 0) —
    exposed so engines can share one definition of ground truth. *)
val eval_binop : Ast.binop -> int -> int -> m:int -> int

val eval_unop : Ast.unop -> int -> m:int -> int

(** Bottom-up constant folding plus width-safe algebraic identities
    (x+0, x*1, x&0, mux on a literal condition, equal mux arms). *)
val const_fold : Ast.env -> Ast.expr -> Ast.expr

(** {!const_fold} applied to every statement of a flat module. *)
val fold_module : Ast.module_def -> Ast.module_def

(** Wire-level CSE: a connect whose source is structurally identical to
    an earlier same-width connect's becomes a [Ref] to that first
    destination.  Trivial ([Ref]/[Lit]) sources are left alone. *)
val share_wires : Ast.module_def -> Ast.module_def

(** Global subexpression sharing: any subexpression occurring in two or
    more distinct connect sources is hoisted into a fresh [cse$N] wire
    and every occurrence becomes a [Ref] to it — shared logic then
    evaluates once per cycle.  Subexpressions containing memory reads
    are left alone.  Purely additive: no existing name changes value. *)
val share_exprs : Ast.module_def -> Ast.module_def

(** Names observable from [roots] ∪ output ports ∪ sequential-update
    operands, closed transitively over connect drivers. *)
val live_names : roots:string list -> Ast.module_def -> (string, unit) Hashtbl.t

(** Drops combinational assignments (and wire declarations) outside
    {!live_names}.  Raises {!Opt_error} on an unknown root. *)
val dead_assigns : roots:string list -> Ast.module_def -> Ast.module_def

(** [fold_module], [share_wires], then [share_exprs]; with [roots],
    also {!dead_assigns} against them. *)
val optimize : ?roots:string list -> Ast.module_def -> Ast.module_def
