(** Value Change Dump writer: records selected signals of a simulation
    in standard VCD format (GTKWave-compatible).  Only changes are
    emitted; call {!sample} once per target cycle after evaluation. *)

type t

(** [create sim ~signals] watches the named (flattened) signals. *)
val create : Sim.t -> signals:string list -> t

(** Records the current values; emits only signals that changed since
    the previous sample. *)
val sample : t -> unit

(** The VCD document so far. *)
val contents : t -> string

(** Writes the VCD document to [path]. *)
val save : t -> path:string -> unit

(** Maps characters VCD tools choke on ([$], [.], [#]) to [_]. *)
val sanitize : string -> string

(** A general VCD document builder decoupled from any one simulation:
    declare an arbitrary scope tree of variables, then feed timestamped
    value changes from wherever the values live (a local simulator, a
    worker pipe, an LI-BDN channel queue).  Change dedup is per
    variable, and a timestamp is only emitted once a change at that time
    survives dedup — two writers fed identical values produce identical
    bytes. *)
module Writer : sig
  type t

  (** One declared variable; holds the change-dedup state. *)
  type var

  val create : ?version:string -> unit -> t

  (** Opens a [$scope module name $end] (name sanitized).  Only valid
      before the first {!time}/{!change}. *)
  val scope : t -> string -> unit

  val upscope : t -> unit

  (** Declares a wire in the current scope (name sanitized); ids are
      assigned in declaration order. *)
  val var : t -> name:string -> width:int -> var

  (** Sets the timestamp for subsequent changes; must be monotone.  The
      [#n] line is emitted lazily, with the first surviving change. *)
  val time : t -> int -> unit

  (** Records a value; emitted only when different from the variable's
      previous value (a variable's first recorded value always is). *)
  val change : t -> var -> int -> unit

  val contents : t -> string
  val save : t -> path:string -> unit
end
