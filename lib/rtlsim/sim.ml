(* Cycle-accurate RTL simulator over flat [Firrtl] modules.

   Two interchangeable evaluation engines implement the one
   {!Engine.S} signature and share this front-end (slot assignment,
   levelization, two-phase cycle structure, snapshots):

   - [Bytecode] (the default): the levelized combinational assignments,
     register updates and memory writes are lowered — after constant
     folding and wire-level CSE ([Firrtl.Opt]) — into flat int-array
     instruction streams executed by a tight dispatch loop
     ([Bytecode]).  No closures, no allocation per cycle.  Supports N
     execution lanes advanced in lockstep from one compiled program.
   - [Closure]: each expression compiles to a tree of [unit -> int]
     closures, one indirect call per node per cycle.  Slower and
     single-lane, but the evaluation of any subexpression maps 1:1
     onto the IR, which keeps it useful as the reference semantics and
     for debugging the compiler itself.

   Lanes.  [create ~lanes:n] makes one simulator advance [n]
   independent copies of the design in lockstep: one compiled program,
   per-lane value arrays and memory images.  Lane 0 is the scalar lane
   (all unlabeled accessors read and write it); [?lane] arguments on
   the accessors select another lane's view.  [eval_comb], [step_seq]
   and [step] always advance EVERY lane.

   Both engines apply register and memory updates with two-phase
   commit, so evaluation order never affects results.  This is the
   substrate that plays the role of both the FPGA execution of the
   target design and the commercial software RTL simulator baseline in
   the paper. *)

open Firrtl

exception Sim_error of string

let sim_error fmt = Format.kasprintf (fun s -> raise (Sim_error s)) fmt

type engine =
  | Closure
  | Bytecode

let default_engine = Bytecode

let engine_name = function
  | Closure -> "closure"
  | Bytecode -> "bytecode"

let engine_of_string = function
  | "closure" -> Ok Closure
  | "bytecode" -> Ok Bytecode
  | s -> Error (Printf.sprintf "unknown engine %S (expected closure or bytecode)" s)

type t = {
  flat : Ast.module_def;  (** the module as given (pre-optimization) *)
  analysis : Analysis.t;  (** of the module the engine actually evaluates *)
  engine : engine;
  slots : (string, int) Hashtbl.t;
  widths : int array;
  values : int array;
      (** lane 0's value array: named slots first (indexed by [slots]);
          the bytecode engine's literal pool and expression
          temporaries, if any, live above them *)
  mutable lane_values : int array array;
      (** per lane; index 0 aliases [values]; grown by {!attach_lane} *)
  mems : (string, int array) Hashtbl.t;  (** lane 0's memory images *)
  mutable lane_mems : (string, int array) Hashtbl.t array;
      (** per lane; index 0 aliases [mems] *)
  reg_inits : (int * int) array;
      (** every register's (value slot, init value) — what
          {!attach_lane} and {!reset_lane} stamp into a power-on lane *)
  exec : Engine.packed;
  bc : Bytecode.t option;
      (** the compiled program when [engine = Bytecode] (stats, lane
          plumbing, introspection) *)
  reg_slots : int array;  (** per [Reg_update] (stmt order): its value slot *)
  wrapped : Telemetry.counter;  (** out-of-range memory write addresses *)
  profile : Telemetry.Profile.t;
  plabel : string;  (** the unit name profile recorders are filed under *)
  eprof : Telemetry.Profile.engine;
  mutable cycle : int;
}

let engine_of t = t.engine

let lanes t = Array.length t.lane_values

let check_lane t lane =
  if lane < 0 || lane >= lanes t then
    sim_error "lane %d out of range (%d lanes)" lane (lanes t)

let slot t name =
  match Hashtbl.find_opt t.slots name with
  | Some i -> i
  | None -> sim_error "no such signal: %s" name

let create ?(engine = default_engine) ?(telemetry = Telemetry.null)
    ?(profile = Telemetry.Profile.null) ?label ?dce_roots ?(lanes = 1) flat =
  if lanes < 1 then sim_error "create: need at least one lane, got %d" lanes;
  let plabel = match label with Some l -> l | None -> flat.Ast.name in
  (* Build the analysis of the module as given first: comb-cycle and
     missing-driver diagnostics must not depend on the engine (or on
     what the optimizer would have deleted). *)
  let base_analysis = Analysis.build flat in
  let slots = Hashtbl.create 256 in
  let widths_l = ref [] in
  let n_slots = ref 0 in
  let add name width =
    Hashtbl.replace slots name !n_slots;
    incr n_slots;
    widths_l := width :: !widths_l
  in
  List.iter (fun (p : Ast.port) -> add p.pname p.pwidth) flat.ports;
  let mems = Hashtbl.create 8 in
  List.iter
    (fun c ->
      match c with
      | Ast.Wire { name; width } | Ast.Reg { name; width; _ } -> add name width
      | Ast.Mem { name; depth; _ } -> Hashtbl.replace mems name (Array.make depth 0)
      | Ast.Inst { name; _ } -> sim_error "module %s is not flat (instance %s)" flat.name name)
    flat.comps;
  let mem_widths = Hashtbl.create 8 in
  List.iter
    (fun c ->
      match c with
      | Ast.Mem { name; width; _ } -> Hashtbl.replace mem_widths name width
      | Ast.Wire _ | Ast.Reg _ | Ast.Inst _ -> ())
    flat.comps;
  let widths = Array.of_list (List.rev !widths_l) in
  (* Registers get their init values. *)
  let init_regs values =
    List.iter
      (fun c ->
        match c with
        | Ast.Reg { name; width; init } ->
          values.(Hashtbl.find slots name) <- Ast.truncate width init
        | Ast.Wire _ | Ast.Mem _ | Ast.Inst _ -> ())
      flat.comps
  in
  let reg_slots =
    List.filter_map
      (fun s ->
        match s with
        | Ast.Reg_update { reg; _ } -> Some (Hashtbl.find slots reg)
        | Ast.Connect _ | Ast.Mem_write _ -> None)
      flat.stmts
    |> Array.of_list
  in
  let reg_inits =
    List.filter_map
      (fun c ->
        match c with
        | Ast.Reg { name; width; init } ->
          Some (Hashtbl.find slots name, Ast.truncate width init)
        | Ast.Wire _ | Ast.Mem _ | Ast.Inst _ -> None)
      flat.comps
    |> Array.of_list
  in
  let wrapped = Telemetry.counter telemetry "rtlsim.mem.addr_wrapped" in
  match engine with
  | Bytecode ->
    let opt_flat =
      try Opt.optimize ?roots:dce_roots flat
      with Opt.Opt_error msg -> sim_error "%s" msg
    in
    (* The optimizer may introduce fresh wires (global subexpression
       sharing); slot them above every original name so original
       indices — and everything keyed on them — are untouched. *)
    let widths =
      let extra =
        List.filter_map
          (fun c ->
            match c with
            | Ast.Wire { name; width } when not (Hashtbl.mem slots name) ->
              Some (name, width)
            | Ast.Wire _ | Ast.Reg _ | Ast.Mem _ | Ast.Inst _ -> None)
          opt_flat.Ast.comps
      in
      if extra = [] then widths
      else begin
        let base = Array.length widths in
        let ext = Array.make (base + List.length extra) 0 in
        Array.blit widths 0 ext 0 base;
        List.iteri
          (fun i (name, w) ->
            Hashtbl.replace slots name (base + i);
            ext.(base + i) <- w)
          extra;
        ext
      end
    in
    let analysis = Analysis.build opt_flat in
    let bc =
      try Bytecode.compile ~flat:opt_flat ~analysis ~slots ~widths ~mems ~mem_widths ~wrapped ()
      with Bytecode.Error msg -> sim_error "%s" msg
    in
    let lane_slots = (Bytecode.stats bc).Bytecode.slots in
    let values = Array.make lane_slots 0 in
    init_regs values;
    Bytecode.bind bc values;
    Bytecode.set_lanes bc lanes;
    let lane_values =
      Array.init lanes (fun k ->
          if k = 0 then values
          else begin
            let v = Array.make lane_slots 0 in
            init_regs v;
            Bytecode.bind_lane bc k v;
            v
          end)
    in
    let lane_mems =
      Array.init lanes (fun k ->
          if k = 0 then mems
          else begin
            let h = Hashtbl.create (Hashtbl.length mems) in
            Hashtbl.iter
              (fun name _ -> Hashtbl.replace h name (Bytecode.lane_mem bc ~lane:k name))
              mems;
            h
          end)
    in
    {
      flat;
      analysis;
      engine;
      slots;
      widths;
      values;
      lane_values;
      mems;
      lane_mems;
      exec = Engine.Packed ((module Bytecode : Engine.S with type t = Bytecode.t), bc);
      bc = Some bc;
      reg_slots;
      reg_inits;
      wrapped;
      profile;
      plabel;
      eprof =
        Telemetry.Profile.engine profile ~label:plabel ~kind:Bytecode.name ~lanes
          ~comb_hist:(Bytecode.comb_class_hist bc)
          ~seq_hist:(Bytecode.seq_class_hist bc);
      cycle = 0;
    }
  | Closure ->
    if lanes > 1 then
      sim_error "engine closure is single-lane; lanes=%d requires the bytecode engine"
        lanes;
    let analysis = base_analysis in
    let values = Array.make (Array.length widths) 0 in
    init_regs values;
    let cl =
      try Closure.compile ~flat ~analysis ~slots ~widths ~mems ~mem_widths ~values ~wrapped ()
      with Closure.Error msg -> sim_error "%s" msg
    in
    {
      flat;
      analysis;
      engine;
      slots;
      widths;
      values;
      lane_values = [| values |];
      mems;
      lane_mems = [| mems |];
      exec = Engine.Packed ((module Closure : Engine.S with type t = Closure.t), cl);
      bc = None;
      reg_slots;
      reg_inits;
      wrapped;
      profile;
      plabel;
      eprof =
        Telemetry.Profile.engine profile ~label:plabel ~kind:Closure.name ~lanes
          ~comb_hist:(Closure.comb_class_hist cl)
          ~seq_hist:(Closure.seq_class_hist cl);
      cycle = 0;
    }

let of_circuit ?engine ?telemetry ?profile ?label ?dce_roots ?lanes circuit =
  create ?engine ?telemetry ?profile ?label ?dce_roots ?lanes (Flatten.flatten circuit)

let cycle t = t.cycle

(* The profile sink this simulator records into ([Profile.null] if none
   was given) and the label its recorders are filed under. *)
let profile t = t.profile
let profile_label t = t.plabel

(* Program facts of the compiled bytecode program, when that engine is
   underneath (compiler introspection; [None] for the closure engine). *)
let bytecode_stats t = Option.map Bytecode.stats t.bc
let bytecode_program_hash t = Option.map Bytecode.program_hash t.bc

let lane_vals t lane =
  check_lane t lane;
  t.lane_values.(lane)

let set_input ?(lane = 0) t name v =
  let i = slot t name in
  (lane_vals t lane).(i) <- v land Ast.mask t.widths.(i)

(** Drives [name] to [v] on EVERY lane — broadcast stimulus, the common
    case when N lanes simulate N identical copies. *)
let set_input_all t name v =
  let i = slot t name in
  let v = v land Ast.mask t.widths.(i) in
  Array.iter (fun vals -> vals.(i) <- v) t.lane_values

let get ?(lane = 0) t name = (lane_vals t lane).(slot t name)

(** Full combinational evaluation pass over every lane (call after
    setting inputs).  With profiling enabled the pass is counted and
    timed; disabled, the cost is one predicted branch. *)
let eval_comb t =
  if Telemetry.Profile.engine_enabled t.eprof then begin
    let t0 = Telemetry.Profile.now_ns t.profile in
    Engine.eval_comb_all t.exec;
    Telemetry.Profile.add_comb t.eprof (Telemetry.Profile.now_ns t.profile - t0)
  end
  else Engine.eval_comb_all t.exec

(** Naive fixpoint evaluation: repeatedly sweeps the combinational
    assignments in (deliberately unhelpful) reverse declaration order
    until no value changes.  Produces the same values as {!eval_comb} —
    levelization is purely a performance optimization, and the
    [ablation_levelize] bench measures how much it buys. *)
let eval_comb_fixpoint t =
  let bound = Engine.fixpoint_bound t.exec in
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed do
    incr sweeps;
    if !sweeps > bound then sim_error "fixpoint did not converge";
    changed := Engine.fixpoint_sweep t.exec
  done

(** Sequential update of every lane: assumes [eval_comb] ran with all
    inputs set.  Two-phase: ALL register next-values and memory-write
    operands are computed from pre-update state before any commit —
    otherwise a later write's enable/data would observe an earlier
    write of the same cycle (registers banked into memories by the
    FAME-5 hardware transform make that race universal). *)
let step_seq t =
  if Telemetry.Profile.engine_enabled t.eprof then begin
    let t0 = Telemetry.Profile.now_ns t.profile in
    Engine.stage_and_commit_all t.exec;
    Telemetry.Profile.add_seq t.eprof (Telemetry.Profile.now_ns t.profile - t0)
  end
  else Engine.stage_and_commit_all t.exec;
  t.cycle <- t.cycle + 1

(** Simulates one full target cycle (all lanes). *)
let step t =
  eval_comb t;
  step_seq t

(** Pre-compiled evaluation of just the combinational cone feeding
    [roots] over [lane]'s state; valid whenever the inputs in that cone
    are set, even if other inputs are stale.  Used by LI-BDN
    output-channel firing. *)
let make_cone_eval ?(lane = 0) t roots =
  check_lane t lane;
  let order = Analysis.cone t.analysis roots in
  let eval = Engine.make_cone t.exec ~lane order in
  (* The timing wrapper only exists when this profile is live: the
     disabled path hands back the engine's raw closure untouched. *)
  if not (Telemetry.Profile.enabled t.profile) then eval
  else begin
    let instrs, hist = Engine.cone_profile t.exec order in
    let cn =
      Telemetry.Profile.cone t.profile ~label:t.plabel
        ~name:(String.concat "," roots) ~instrs ~hist
    in
    fun () ->
      let t0 = Telemetry.Profile.now_ns t.profile in
      eval ();
      Telemetry.Profile.add_cone_eval cn (Telemetry.Profile.now_ns t.profile - t0)
  end

(* ------------------------------------------------------------------ *)
(* Memory access (program loading, result inspection)                  *)
(* ------------------------------------------------------------------ *)

let mem_array ?(lane = 0) t name =
  check_lane t lane;
  match Hashtbl.find_opt t.lane_mems.(lane) name with
  | Some a -> a
  | None -> sim_error "no such memory: %s" name

let poke_mem ?lane t name addr v = (mem_array ?lane t name).(addr) <- v
let peek_mem ?lane t name addr = (mem_array ?lane t name).(addr)

let load_mem ?lane t name values = List.iteri (fun i v -> poke_mem ?lane t name i v) values

(* ------------------------------------------------------------------ *)
(* State snapshots (FAME-5 threading, checkpointing)                   *)
(* ------------------------------------------------------------------ *)

type state = {
  s_regs : int array;  (** indexed like [t.reg_slots] (stmt order) *)
  s_mems : (string * int array) list;
  s_cycle : int;
}

let save_state ?(lane = 0) t =
  let vals = lane_vals t lane in
  {
    s_regs = Array.map (fun s -> vals.(s)) t.reg_slots;
    s_mems = Hashtbl.fold (fun n a acc -> (n, Array.copy a) :: acc) t.lane_mems.(lane) [];
    s_cycle = t.cycle;
  }

let restore_state ?(lane = 0) t st =
  let vals = lane_vals t lane in
  if Array.length st.s_regs <> Array.length t.reg_slots then
    sim_error "restore_state: %d registers in snapshot, %d in circuit"
      (Array.length st.s_regs) (Array.length t.reg_slots);
  Array.iteri (fun i s -> vals.(s) <- st.s_regs.(i)) t.reg_slots;
  List.iter
    (fun (n, a) ->
      let dst = mem_array ~lane t n in
      if Array.length a <> Array.length dst then
        sim_error "restore_state: memory %s has depth %d in snapshot, %d in circuit" n
          (Array.length a) (Array.length dst);
      Array.blit a 0 dst 0 (Array.length a))
    st.s_mems;
  t.cycle <- st.s_cycle

(** Captures every lane's architectural state; the returned thunk rolls
    all lanes (and the cycle counter) back. *)
let checkpoint t =
  let states = Array.init (lanes t) (fun k -> save_state ~lane:k t) in
  fun () -> Array.iteri (fun k st -> restore_state ~lane:k t st) states

(* ------------------------------------------------------------------ *)
(* Lane attach / detach (multi-tenant packing)                         *)
(* ------------------------------------------------------------------ *)

(** Grows the simulator by one fresh lane at power-on state (registers
    at their init values, memories zeroed) and returns its index.  The
    compiled program is shared — the new lane rides the same dispatch
    loop from the next [eval_comb]/[step] on.  The cycle counter is
    global across lanes, so attaching mid-flight leaves the new lane's
    notion of time to the caller (the simulation service only packs
    lanes into engines that have not stepped yet).  Bytecode engine
    only: the closure engine is single-lane. *)
let attach_lane t =
  match t.bc with
  | None ->
    sim_error "attach_lane: engine %s is single-lane (bytecode required)"
      (Engine.name t.exec)
  | Some bc ->
    let k = lanes t in
    Bytecode.set_lanes bc (k + 1);
    let v = Array.make (Bytecode.stats bc).Bytecode.slots 0 in
    Array.iter (fun (s, init) -> v.(s) <- init) t.reg_inits;
    Bytecode.bind_lane bc k v;
    t.lane_values <- Array.append t.lane_values [| v |];
    let h = Hashtbl.create (max 8 (Hashtbl.length t.mems)) in
    Hashtbl.iter
      (fun name _ -> Hashtbl.replace h name (Bytecode.lane_mem bc ~lane:k name))
      t.mems;
    t.lane_mems <- Array.append t.lane_mems [| h |];
    k

(** Returns [lane] to power-on state (registers re-initialized, every
    other value and memory word zeroed) so a detached tenant's lane can
    be handed to a new one.  The global cycle counter is untouched —
    callers reuse lanes only in engines still at the reset lane's
    cycle. *)
let reset_lane t ~lane =
  check_lane t lane;
  let v = lane_vals t lane in
  Array.fill v 0 (Array.length v) 0;
  Array.iter (fun (s, init) -> v.(s) <- init) t.reg_inits;
  (* Re-binding rewrites the literal pool the fill just cleared. *)
  (match t.bc with Some bc -> Bytecode.bind_lane bc lane v | None -> ());
  Hashtbl.iter (fun _ a -> Array.fill a 0 (Array.length a) 0) t.lane_mems.(lane)

(* Text serialization of a {!state} for on-disk snapshots: one [cycle]
   line, one [regs] line, then one [mem] line per memory, all values as
   decimal integers. *)
let state_to_string st =
  let buf = Buffer.create 4096 in
  let ints a =
    Array.iter
      (fun v ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int v))
      a
  in
  Buffer.add_string buf (Printf.sprintf "cycle %d\n" st.s_cycle);
  Buffer.add_string buf (Printf.sprintf "regs %d" (Array.length st.s_regs));
  ints st.s_regs;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "mems %d\n" (List.length st.s_mems));
  List.iter
    (fun (n, a) ->
      Buffer.add_string buf (Printf.sprintf "mem %s %d" n (Array.length a));
      ints a;
      Buffer.add_char buf '\n')
    st.s_mems;
  Buffer.contents buf

let snapshot_words line = String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

let snapshot_int tok =
  match int_of_string_opt tok with
  | Some v -> v
  | None -> sim_error "snapshot: expected an integer, got %S" tok

let state_of_string text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | cycle_l :: regs_l :: mems_l :: mem_lines -> begin
    let s_cycle =
      match snapshot_words cycle_l with
      | [ "cycle"; n ] -> snapshot_int n
      | _ -> sim_error "snapshot: bad cycle line %S" cycle_l
    in
    let s_regs =
      match snapshot_words regs_l with
      | "regs" :: count :: values ->
        let values = Array.of_list (List.map snapshot_int values) in
        if Array.length values <> snapshot_int count then
          sim_error "snapshot: regs line declares %s values, has %d" count
            (Array.length values);
        values
      | _ -> sim_error "snapshot: bad regs line %S" regs_l
    in
    let n_mems =
      match snapshot_words mems_l with
      | [ "mems"; m ] -> snapshot_int m
      | _ -> sim_error "snapshot: bad mems line %S" mems_l
    in
    if List.length mem_lines <> n_mems then
      sim_error "snapshot: mems declares %d memories, found %d" n_mems
        (List.length mem_lines);
    let s_mems =
      List.map
        (fun l ->
          match snapshot_words l with
          | "mem" :: name :: len :: values ->
            let values = Array.of_list (List.map snapshot_int values) in
            if Array.length values <> snapshot_int len then
              sim_error "snapshot: memory %s declares %s values, has %d" name len
                (Array.length values);
            (name, values)
          | _ -> sim_error "snapshot: bad mem line %S" l)
        mem_lines
    in
    { s_regs; s_mems; s_cycle }
  end
  | _ -> sim_error "snapshot: truncated state text"

(* ------------------------------------------------------------------ *)
(* Convenience driving                                                 *)
(* ------------------------------------------------------------------ *)

(** Steps until [pred] holds after combinational evaluation; returns the
    cycle count at that point.  Raises if [max_cycles] is exceeded. *)
let run_until t ?(max_cycles = 10_000_000) pred =
  let rec go () =
    eval_comb t;
    if pred t then t.cycle
    else if t.cycle >= max_cycles then
      sim_error "run_until: exceeded %d cycles in %s" max_cycles t.flat.name
    else begin
      step_seq t;
      go ()
    end
  in
  go ()

let snapshot t =
  Hashtbl.fold (fun name i acc -> (name, t.values.(i)) :: acc) t.slots []
  |> List.sort compare
