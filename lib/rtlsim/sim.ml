(* Cycle-accurate RTL simulator over flat [Firrtl] modules.

   Two interchangeable evaluation engines share one front-end (slot
   assignment, levelization, two-phase sequential commit):

   - [Bytecode] (the default): the levelized combinational assignments,
     register updates and memory writes are lowered — after constant
     folding and wire-level CSE ([Firrtl.Opt]) — into flat int-array
     instruction streams executed by a tight dispatch loop
     ([Bytecode]).  No closures, no allocation per cycle.
   - [Closure]: each expression compiles to a tree of [unit -> int]
     closures, one indirect call per node per cycle.  Slower, but the
     evaluation of any subexpression maps 1:1 onto the IR, which keeps
     it useful as the reference semantics and for debugging the
     compiler itself.

   Both engines apply register and memory updates with two-phase
   commit, so evaluation order never affects results.  This is the
   substrate that plays the role of both the FPGA execution of the
   target design and the commercial software RTL simulator baseline in
   the paper. *)

open Firrtl

exception Sim_error of string

let sim_error fmt = Format.kasprintf (fun s -> raise (Sim_error s)) fmt

type engine =
  | Closure
  | Bytecode

let default_engine = Bytecode

let engine_name = function
  | Closure -> "closure"
  | Bytecode -> "bytecode"

let engine_of_string = function
  | "closure" -> Ok Closure
  | "bytecode" -> Ok Bytecode
  | s -> Error (Printf.sprintf "unknown engine %S (expected closure or bytecode)" s)

type instr = {
  i_slot : int;
  i_width : int;
  i_eval : unit -> int;
}

type reg_update = {
  r_slot : int;
  r_width : int;
  r_next : unit -> int;
  r_enable : (unit -> int) option;
}

type mem_write = {
  w_mem : int array;
  w_depth : int;
  w_addr : unit -> int;
  w_data : unit -> int;
  w_width : int;
  w_enable : unit -> int;
  (* Staging slots so all writes commit from pre-update state. *)
  mutable w_fire : bool;
  mutable w_idx : int;
  mutable w_val : int;
}

type exec =
  | Ex_closure of {
      comb : instr array;
      by_name : (string, instr) Hashtbl.t;  (** comb instr per driven name *)
      regs : reg_update array;
      reg_staging : int array;
      writes : mem_write array;
    }
  | Ex_bytecode of Bytecode.t

type t = {
  flat : Ast.module_def;  (** the module as given (pre-optimization) *)
  analysis : Analysis.t;  (** of the module the engine actually evaluates *)
  engine : engine;
  slots : (string, int) Hashtbl.t;
  widths : int array;
  values : int array;
      (** named slots first (indexed by [slots]); the bytecode engine's
          expression temporaries, if any, live above them *)
  mems : (string, int array) Hashtbl.t;
  exec : exec;
  reg_slots : int array;  (** per [Reg_update] (stmt order): its value slot *)
  wrapped : Telemetry.counter;  (** out-of-range memory write addresses *)
  mutable cycle : int;
}

let engine_of t = t.engine

let slot t name =
  match Hashtbl.find_opt t.slots name with
  | Some i -> i
  | None -> sim_error "no such signal: %s" name

(* Compiles an expression to a closure over the value array. *)
let rec compile slots values mems env e =
  let compile = compile slots values mems env in
  match e with
  | Ast.Lit { value; _ } -> fun () -> value
  | Ast.Ref name ->
    let i =
      match Hashtbl.find_opt slots name with
      | Some i -> i
      | None -> sim_error "no such signal: %s" name
    in
    fun () -> values.(i)
  | Ast.Mux (c, a, b) ->
    let fc = compile c and fa = compile a and fb = compile b in
    fun () -> if fc () <> 0 then fa () else fb ()
  | Ast.Binop (op, a, b) ->
    let fa = compile a and fb = compile b in
    let m = Ast.mask (Ast.width_of env e) in
    (match op with
    | Add -> fun () -> (fa () + fb ()) land m
    | Sub -> fun () -> (fa () - fb ()) land m
    | Mul -> fun () -> fa () * fb () land m
    | Div ->
      fun () ->
        let d = fb () in
        if d = 0 then 0 else fa () / d
    | Rem ->
      fun () ->
        let d = fb () in
        if d = 0 then 0 else fa () mod d
    | And -> fun () -> fa () land fb ()
    | Or -> fun () -> fa () lor fb ()
    | Xor -> fun () -> fa () lxor fb ()
    | Shl ->
      fun () ->
        let s = fb () in
        if s > Ast.max_width then 0 else (fa () lsl s) land m
    | Shr ->
      fun () ->
        let s = fb () in
        if s > Ast.max_width then 0 else fa () lsr s
    | Eq -> fun () -> if fa () = fb () then 1 else 0
    | Neq -> fun () -> if fa () <> fb () then 1 else 0
    | Lt -> fun () -> if fa () < fb () then 1 else 0
    | Le -> fun () -> if fa () <= fb () then 1 else 0
    | Gt -> fun () -> if fa () > fb () then 1 else 0
    | Ge -> fun () -> if fa () >= fb () then 1 else 0)
  | Ast.Unop (op, a) ->
    let fa = compile a in
    let wa = Ast.width_of env a in
    let m = Ast.mask wa in
    (match op with
    | Not -> fun () -> lnot (fa ()) land m
    | Neg -> fun () -> -fa () land m
    | Andr -> fun () -> if fa () = m then 1 else 0
    | Orr -> fun () -> if fa () <> 0 then 1 else 0
    | Xorr ->
      fun () ->
        let rec parity acc v = if v = 0 then acc else parity (acc lxor (v land 1)) (v lsr 1) in
        parity 0 (fa ()))
  | Ast.Bits { e = a; hi; lo } ->
    let fa = compile a in
    let m = Ast.mask (hi - lo + 1) in
    fun () -> (fa () lsr lo) land m
  | Ast.Cat (a, b) ->
    let fa = compile a and fb = compile b in
    let wb = Ast.width_of env b in
    if Ast.width_of env a + wb > Ast.max_width then
      sim_error "cat result exceeds %d bits" Ast.max_width;
    fun () -> (fa () lsl wb) lor fb ()
  | Ast.Read { mem; addr } ->
    let arr =
      match Hashtbl.find_opt mems mem with
      | Some a -> a
      | None -> sim_error "no such memory: %s" mem
    in
    let depth = Array.length arr in
    let fa = compile addr in
    fun () -> arr.(fa () mod depth)

let create ?(engine = default_engine) ?(telemetry = Telemetry.null) ?dce_roots flat =
  (* Build the analysis of the module as given first: comb-cycle and
     missing-driver diagnostics must not depend on the engine (or on
     what the optimizer would have deleted). *)
  let base_analysis = Analysis.build flat in
  let slots = Hashtbl.create 256 in
  let widths_l = ref [] in
  let n_slots = ref 0 in
  let add name width =
    Hashtbl.replace slots name !n_slots;
    incr n_slots;
    widths_l := width :: !widths_l
  in
  List.iter (fun (p : Ast.port) -> add p.pname p.pwidth) flat.ports;
  let mems = Hashtbl.create 8 in
  List.iter
    (fun c ->
      match c with
      | Ast.Wire { name; width } | Ast.Reg { name; width; _ } -> add name width
      | Ast.Mem { name; depth; _ } -> Hashtbl.replace mems name (Array.make depth 0)
      | Ast.Inst { name; _ } -> sim_error "module %s is not flat (instance %s)" flat.name name)
    flat.comps;
  let mem_widths = Hashtbl.create 8 in
  List.iter
    (fun c ->
      match c with
      | Ast.Mem { name; width; _ } -> Hashtbl.replace mem_widths name width
      | Ast.Wire _ | Ast.Reg _ | Ast.Inst _ -> ())
    flat.comps;
  let widths = Array.of_list (List.rev !widths_l) in
  (* Registers get their init values. *)
  let init_regs values =
    List.iter
      (fun c ->
        match c with
        | Ast.Reg { name; width; init } ->
          values.(Hashtbl.find slots name) <- Ast.truncate width init
        | Ast.Wire _ | Ast.Mem _ | Ast.Inst _ -> ())
      flat.comps
  in
  let reg_slots =
    List.filter_map
      (fun s ->
        match s with
        | Ast.Reg_update { reg; _ } -> Some (Hashtbl.find slots reg)
        | Ast.Connect _ | Ast.Mem_write _ -> None)
      flat.stmts
    |> Array.of_list
  in
  let wrapped = Telemetry.counter telemetry "rtlsim.mem.addr_wrapped" in
  match engine with
  | Bytecode ->
    let opt_flat =
      try Opt.optimize ?roots:dce_roots flat
      with Opt.Opt_error msg -> sim_error "%s" msg
    in
    (* The optimizer may introduce fresh wires (global subexpression
       sharing); slot them above every original name so original
       indices — and everything keyed on them — are untouched. *)
    let widths =
      let extra =
        List.filter_map
          (fun c ->
            match c with
            | Ast.Wire { name; width } when not (Hashtbl.mem slots name) ->
              Some (name, width)
            | Ast.Wire _ | Ast.Reg _ | Ast.Mem _ | Ast.Inst _ -> None)
          opt_flat.Ast.comps
      in
      if extra = [] then widths
      else begin
        let base = Array.length widths in
        let ext = Array.make (base + List.length extra) 0 in
        Array.blit widths 0 ext 0 base;
        List.iteri
          (fun i (name, w) ->
            Hashtbl.replace slots name (base + i);
            ext.(base + i) <- w)
          extra;
        ext
      end
    in
    let analysis = Analysis.build opt_flat in
    let bc =
      try Bytecode.compile ~flat:opt_flat ~analysis ~slots ~widths ~mems ~mem_widths ~wrapped ()
      with Bytecode.Error msg -> sim_error "%s" msg
    in
    let values = Array.make (Bytecode.n_slots bc) 0 in
    init_regs values;
    Bytecode.bind bc values;
    {
      flat;
      analysis;
      engine;
      slots;
      widths;
      values;
      mems;
      exec = Ex_bytecode bc;
      reg_slots;
      wrapped;
      cycle = 0;
    }
  | Closure ->
    let analysis = base_analysis in
    let values = Array.make (Array.length widths) 0 in
    init_regs values;
    let env =
      {
        Ast.width_of_name =
          (fun n ->
            match Hashtbl.find_opt slots n with
            | Some i -> widths.(i)
            | None -> sim_error "unknown name %s" n);
        Ast.width_of_mem =
          (fun n ->
            match Hashtbl.find_opt mem_widths n with
            | Some w -> w
            | None -> sim_error "unknown memory %s" n);
      }
    in
    let compile = compile slots values mems env in
    (* Combinational instructions in levelized order. *)
    let by_name = Hashtbl.create 256 in
    let comb =
      List.map
        (fun name ->
          let i_slot = Hashtbl.find slots name in
          let src =
            match Analysis.driver_of analysis name with
            | Some e -> e
            | None -> sim_error "%s has no driver" name
          in
          let i_width = widths.(i_slot) in
          let f = compile src in
          let m = Ast.mask i_width in
          let instr = { i_slot; i_width; i_eval = (fun () -> f () land m) } in
          Hashtbl.replace by_name name instr;
          instr)
        analysis.Analysis.order
      |> Array.of_list
    in
    let regs =
      List.filter_map
        (fun s ->
          match s with
          | Ast.Reg_update { reg; next; enable } ->
            let r_slot = Hashtbl.find slots reg in
            let r_width = widths.(r_slot) in
            let f = compile next in
            let m = Ast.mask r_width in
            Some
              {
                r_slot;
                r_width;
                r_next = (fun () -> f () land m);
                r_enable = Option.map compile enable;
              }
          | Ast.Connect _ | Ast.Mem_write _ -> None)
        flat.stmts
      |> Array.of_list
    in
    let writes =
      List.filter_map
        (fun s ->
          match s with
          | Ast.Mem_write { mem; addr; data; enable } ->
            let arr = Hashtbl.find mems mem in
            let w = Hashtbl.find mem_widths mem in
            Some
              {
                w_mem = arr;
                w_depth = Array.length arr;
                w_addr = compile addr;
                w_data = compile data;
                w_width = w;
                w_enable = compile enable;
                w_fire = false;
                w_idx = 0;
                w_val = 0;
              }
          | Ast.Connect _ | Ast.Reg_update _ -> None)
        flat.stmts
      |> Array.of_list
    in
    {
      flat;
      analysis;
      engine;
      slots;
      widths;
      values;
      mems;
      exec =
        Ex_closure { comb; by_name; regs; reg_staging = Array.make (Array.length regs) 0; writes };
      reg_slots;
      wrapped;
      cycle = 0;
    }

let of_circuit ?engine ?telemetry ?dce_roots circuit =
  create ?engine ?telemetry ?dce_roots (Flatten.flatten circuit)

let cycle t = t.cycle

let set_input t name v =
  let i = slot t name in
  t.values.(i) <- v land Ast.mask t.widths.(i)

let get t name = t.values.(slot t name)

(** Full combinational evaluation pass (call after setting inputs). *)
let eval_comb t =
  match t.exec with
  | Ex_bytecode bc -> Bytecode.eval_comb bc
  | Ex_closure { comb; _ } ->
    for i = 0 to Array.length comb - 1 do
      let ins = Array.unsafe_get comb i in
      t.values.(ins.i_slot) <- ins.i_eval ()
    done

(** Naive fixpoint evaluation: repeatedly sweeps the combinational
    assignments in (deliberately unhelpful) reverse declaration order
    until no value changes.  Produces the same values as {!eval_comb} —
    levelization is purely a performance optimization, and the
    [ablation_levelize] bench measures how much it buys. *)
let eval_comb_fixpoint t =
  match t.exec with
  | Ex_bytecode bc ->
    let changed = ref true in
    let sweeps = ref 0 in
    while !changed do
      incr sweeps;
      if !sweeps > Bytecode.n_segments bc + 2 then sim_error "fixpoint did not converge";
      changed := Bytecode.fixpoint_sweep bc
    done
  | Ex_closure { comb; _ } ->
    let changed = ref true in
    let sweeps = ref 0 in
    while !changed do
      changed := false;
      incr sweeps;
      if !sweeps > Array.length comb + 2 then sim_error "fixpoint did not converge";
      for i = Array.length comb - 1 downto 0 do
        let ins = Array.unsafe_get comb i in
        let v = ins.i_eval () in
        if t.values.(ins.i_slot) <> v then begin
          t.values.(ins.i_slot) <- v;
          changed := true
        end
      done
    done

(** Sequential update: assumes [eval_comb] ran with all inputs set.
    Two-phase: ALL register next-values and memory-write operands are
    computed from pre-update state before any commit — otherwise a
    later write's enable/data would observe an earlier write of the
    same cycle (registers banked into memories by the FAME-5 hardware
    transform make that race universal). *)
let step_seq t =
  (match t.exec with
  | Ex_bytecode bc -> Bytecode.stage_and_commit_seq bc
  | Ex_closure { regs; reg_staging; writes; _ } ->
    for i = 0 to Array.length regs - 1 do
      let r = Array.unsafe_get regs i in
      let keep =
        match r.r_enable with
        | None -> false
        | Some en -> en () = 0
      in
      reg_staging.(i) <- (if keep then t.values.(r.r_slot) else r.r_next ())
    done;
    Array.iter
      (fun w ->
        w.w_fire <- w.w_enable () <> 0;
        if w.w_fire then begin
          let a = w.w_addr () in
          if a >= w.w_depth then Telemetry.incr t.wrapped;
          w.w_idx <- a mod w.w_depth;
          w.w_val <- w.w_data () land Ast.mask w.w_width
        end)
      writes;
    Array.iter (fun w -> if w.w_fire then w.w_mem.(w.w_idx) <- w.w_val) writes;
    for i = 0 to Array.length regs - 1 do
      t.values.(regs.(i).r_slot) <- reg_staging.(i)
    done);
  t.cycle <- t.cycle + 1

(** Simulates one full target cycle. *)
let step t =
  eval_comb t;
  step_seq t

(** Pre-compiled evaluation of just the combinational cone feeding
    [roots]; valid whenever the inputs in that cone are set, even if
    other inputs are stale.  Used by LI-BDN output-channel firing. *)
let make_cone_eval t roots =
  let order = Analysis.cone t.analysis roots in
  match t.exec with
  | Ex_bytecode bc -> Bytecode.make_cone bc order
  | Ex_closure { by_name; _ } ->
    let instrs =
      List.filter_map (fun name -> Hashtbl.find_opt by_name name) order |> Array.of_list
    in
    fun () ->
      for i = 0 to Array.length instrs - 1 do
        let ins = Array.unsafe_get instrs i in
        t.values.(ins.i_slot) <- ins.i_eval ()
      done

(* ------------------------------------------------------------------ *)
(* Memory access (program loading, result inspection)                  *)
(* ------------------------------------------------------------------ *)

let mem_array t name =
  match Hashtbl.find_opt t.mems name with
  | Some a -> a
  | None -> sim_error "no such memory: %s" name

let poke_mem t name addr v = (mem_array t name).(addr) <- v
let peek_mem t name addr = (mem_array t name).(addr)

let load_mem t name values = List.iteri (fun i v -> poke_mem t name i v) values

(* ------------------------------------------------------------------ *)
(* State snapshots (FAME-5 threading, checkpointing)                   *)
(* ------------------------------------------------------------------ *)

type state = {
  s_regs : int array;  (** indexed like [t.reg_slots] (stmt order) *)
  s_mems : (string * int array) list;
  s_cycle : int;
}

let save_state t =
  {
    s_regs = Array.map (fun s -> t.values.(s)) t.reg_slots;
    s_mems = Hashtbl.fold (fun n a acc -> (n, Array.copy a) :: acc) t.mems [];
    s_cycle = t.cycle;
  }

let restore_state t st =
  if Array.length st.s_regs <> Array.length t.reg_slots then
    sim_error "restore_state: %d registers in snapshot, %d in circuit"
      (Array.length st.s_regs) (Array.length t.reg_slots);
  Array.iteri (fun i s -> t.values.(s) <- st.s_regs.(i)) t.reg_slots;
  List.iter
    (fun (n, a) ->
      let dst = mem_array t n in
      if Array.length a <> Array.length dst then
        sim_error "restore_state: memory %s has depth %d in snapshot, %d in circuit" n
          (Array.length a) (Array.length dst);
      Array.blit a 0 dst 0 (Array.length a))
    st.s_mems;
  t.cycle <- st.s_cycle

(* Text serialization of a {!state} for on-disk snapshots: one [cycle]
   line, one [regs] line, then one [mem] line per memory, all values as
   decimal integers. *)
let state_to_string st =
  let buf = Buffer.create 4096 in
  let ints a =
    Array.iter
      (fun v ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int v))
      a
  in
  Buffer.add_string buf (Printf.sprintf "cycle %d\n" st.s_cycle);
  Buffer.add_string buf (Printf.sprintf "regs %d" (Array.length st.s_regs));
  ints st.s_regs;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "mems %d\n" (List.length st.s_mems));
  List.iter
    (fun (n, a) ->
      Buffer.add_string buf (Printf.sprintf "mem %s %d" n (Array.length a));
      ints a;
      Buffer.add_char buf '\n')
    st.s_mems;
  Buffer.contents buf

let snapshot_words line = String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

let snapshot_int tok =
  match int_of_string_opt tok with
  | Some v -> v
  | None -> sim_error "snapshot: expected an integer, got %S" tok

let state_of_string text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | cycle_l :: regs_l :: mems_l :: mem_lines -> begin
    let s_cycle =
      match snapshot_words cycle_l with
      | [ "cycle"; n ] -> snapshot_int n
      | _ -> sim_error "snapshot: bad cycle line %S" cycle_l
    in
    let s_regs =
      match snapshot_words regs_l with
      | "regs" :: count :: values ->
        let values = Array.of_list (List.map snapshot_int values) in
        if Array.length values <> snapshot_int count then
          sim_error "snapshot: regs line declares %s values, has %d" count
            (Array.length values);
        values
      | _ -> sim_error "snapshot: bad regs line %S" regs_l
    in
    let n_mems =
      match snapshot_words mems_l with
      | [ "mems"; m ] -> snapshot_int m
      | _ -> sim_error "snapshot: bad mems line %S" mems_l
    in
    if List.length mem_lines <> n_mems then
      sim_error "snapshot: mems declares %d memories, found %d" n_mems
        (List.length mem_lines);
    let s_mems =
      List.map
        (fun l ->
          match snapshot_words l with
          | "mem" :: name :: len :: values ->
            let values = Array.of_list (List.map snapshot_int values) in
            if Array.length values <> snapshot_int len then
              sim_error "snapshot: memory %s declares %s values, has %d" name len
                (Array.length values);
            (name, values)
          | _ -> sim_error "snapshot: bad mem line %S" l)
        mem_lines
    in
    { s_regs; s_mems; s_cycle }
  end
  | _ -> sim_error "snapshot: truncated state text"

(* ------------------------------------------------------------------ *)
(* Convenience driving                                                 *)
(* ------------------------------------------------------------------ *)

(** Steps until [pred] holds after combinational evaluation; returns the
    cycle count at that point.  Raises if [max_cycles] is exceeded. *)
let run_until t ?(max_cycles = 10_000_000) pred =
  let rec go () =
    eval_comb t;
    if pred t then t.cycle
    else if t.cycle >= max_cycles then
      sim_error "run_until: exceeded %d cycles in %s" max_cycles t.flat.name
    else begin
      step_seq t;
      go ()
    end
  in
  go ()

let snapshot t =
  Hashtbl.fold (fun name i acc -> (name, t.values.(i)) :: acc) t.slots []
  |> List.sort compare
