(* Closure evaluation engine: each expression compiles to a tree of
   [unit -> int] closures, one indirect call per node per cycle.
   Slower than the compiled bytecode, but the evaluation of any
   subexpression maps 1:1 onto the IR, which keeps it useful as the
   reference semantics and for debugging the bytecode compiler itself.
   Single-lane by construction — lane parallelism lives in [Bytecode];
   this engine's job is to be the simplest possible oracle. *)

open Firrtl

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type instr = {
  i_slot : int;
  i_eval : unit -> int;
}

type reg_update = {
  r_slot : int;
  r_next : unit -> int;
  r_enable : (unit -> int) option;
}

type mem_write = {
  w_mem : int array;
  w_depth : int;
  w_addr : unit -> int;
  w_data : unit -> int;
  w_width : int;
  w_enable : unit -> int;
  (* Staging slots so all writes commit from pre-update state. *)
  mutable w_fire : bool;
  mutable w_idx : int;
  mutable w_val : int;
}

type t = {
  cl_comb : instr array;
  cl_by_name : (string, instr) Hashtbl.t;  (** comb instr per driven name *)
  cl_regs : reg_update array;
  cl_staging : int array;
  cl_writes : mem_write array;
  cl_vals : int array;
  cl_wrapped : Telemetry.counter;
}

(* Compiles an expression to a closure over the value array. *)
let rec compile_expr slots values mems env e =
  let compile = compile_expr slots values mems env in
  match e with
  | Ast.Lit { value; _ } -> fun () -> value
  | Ast.Ref name ->
    let i =
      match Hashtbl.find_opt slots name with
      | Some i -> i
      | None -> error "no such signal: %s" name
    in
    fun () -> values.(i)
  | Ast.Mux (c, a, b) ->
    let fc = compile c and fa = compile a and fb = compile b in
    fun () -> if fc () <> 0 then fa () else fb ()
  | Ast.Binop (op, a, b) ->
    let fa = compile a and fb = compile b in
    let m = Ast.mask (Ast.width_of env e) in
    (match op with
    | Add -> fun () -> (fa () + fb ()) land m
    | Sub -> fun () -> (fa () - fb ()) land m
    | Mul -> fun () -> fa () * fb () land m
    | Div ->
      fun () ->
        let d = fb () in
        if d = 0 then 0 else fa () / d
    | Rem ->
      fun () ->
        let d = fb () in
        if d = 0 then 0 else fa () mod d
    | And -> fun () -> fa () land fb ()
    | Or -> fun () -> fa () lor fb ()
    | Xor -> fun () -> fa () lxor fb ()
    | Shl ->
      fun () ->
        let s = fb () in
        if s > Ast.max_width then 0 else (fa () lsl s) land m
    | Shr ->
      fun () ->
        let s = fb () in
        if s > Ast.max_width then 0 else fa () lsr s
    | Eq -> fun () -> if fa () = fb () then 1 else 0
    | Neq -> fun () -> if fa () <> fb () then 1 else 0
    | Lt -> fun () -> if fa () < fb () then 1 else 0
    | Le -> fun () -> if fa () <= fb () then 1 else 0
    | Gt -> fun () -> if fa () > fb () then 1 else 0
    | Ge -> fun () -> if fa () >= fb () then 1 else 0)
  | Ast.Unop (op, a) ->
    let fa = compile a in
    let wa = Ast.width_of env a in
    let m = Ast.mask wa in
    (match op with
    | Not -> fun () -> lnot (fa ()) land m
    | Neg -> fun () -> -fa () land m
    | Andr -> fun () -> if fa () = m then 1 else 0
    | Orr -> fun () -> if fa () <> 0 then 1 else 0
    | Xorr ->
      fun () ->
        let rec parity acc v =
          if v = 0 then acc else parity (acc lxor (v land 1)) (v lsr 1)
        in
        parity 0 (fa ()))
  | Ast.Bits { e = a; hi; lo } ->
    let fa = compile a in
    let m = Ast.mask (hi - lo + 1) in
    fun () -> (fa () lsr lo) land m
  | Ast.Cat (a, b) ->
    let fa = compile a and fb = compile b in
    let wb = Ast.width_of env b in
    if Ast.width_of env a + wb > Ast.max_width then
      error "cat result exceeds %d bits" Ast.max_width;
    fun () -> (fa () lsl wb) lor fb ()
  | Ast.Read { mem; addr } ->
    let arr =
      match Hashtbl.find_opt mems mem with
      | Some a -> a
      | None -> error "no such memory: %s" mem
    in
    let depth = Array.length arr in
    let fa = compile addr in
    fun () -> arr.(fa () mod depth)

(** Compiles [flat] (levelized by [analysis]) to closure instructions
    over the given [values] array.  [wrapped] is bumped once per
    out-of-range memory write address. *)
let compile ~flat ~analysis ~slots ~widths ~mems ~mem_widths ~values ~wrapped () =
  let env =
    {
      Ast.width_of_name =
        (fun n ->
          match Hashtbl.find_opt slots n with
          | Some i -> widths.(i)
          | None -> error "unknown name %s" n);
      Ast.width_of_mem =
        (fun n ->
          match Hashtbl.find_opt mem_widths n with
          | Some w -> w
          | None -> error "unknown memory %s" n);
    }
  in
  let compile = compile_expr slots values mems env in
  (* Combinational instructions in levelized order. *)
  let by_name = Hashtbl.create 256 in
  let comb =
    List.map
      (fun name ->
        let i_slot = Hashtbl.find slots name in
        let src =
          match Analysis.driver_of analysis name with
          | Some e -> e
          | None -> error "%s has no driver" name
        in
        let f = compile src in
        let m = Ast.mask widths.(i_slot) in
        let instr = { i_slot; i_eval = (fun () -> f () land m) } in
        Hashtbl.replace by_name name instr;
        instr)
      analysis.Analysis.order
    |> Array.of_list
  in
  let regs =
    List.filter_map
      (fun s ->
        match s with
        | Ast.Reg_update { reg; next; enable } ->
          let r_slot = Hashtbl.find slots reg in
          let f = compile next in
          let m = Ast.mask widths.(r_slot) in
          Some
            {
              r_slot;
              r_next = (fun () -> f () land m);
              r_enable = Option.map compile enable;
            }
        | Ast.Connect _ | Ast.Mem_write _ -> None)
      flat.Ast.stmts
    |> Array.of_list
  in
  let writes =
    List.filter_map
      (fun s ->
        match s with
        | Ast.Mem_write { mem; addr; data; enable } ->
          let arr = Hashtbl.find mems mem in
          let w = Hashtbl.find mem_widths mem in
          Some
            {
              w_mem = arr;
              w_depth = Array.length arr;
              w_addr = compile addr;
              w_data = compile data;
              w_width = w;
              w_enable = compile enable;
              w_fire = false;
              w_idx = 0;
              w_val = 0;
            }
        | Ast.Connect _ | Ast.Reg_update _ -> None)
      flat.Ast.stmts
    |> Array.of_list
  in
  {
    cl_comb = comb;
    cl_by_name = by_name;
    cl_regs = regs;
    cl_staging = Array.make (Array.length regs) 0;
    cl_writes = writes;
    cl_vals = values;
    cl_wrapped = wrapped;
  }

(* ------------------------------------------------------------------ *)
(* Engine interface ({!Engine.S})                                      *)
(* ------------------------------------------------------------------ *)

let name = "closure"

let lanes _ = 1

let eval_comb_all t =
  let vals = t.cl_vals in
  for i = 0 to Array.length t.cl_comb - 1 do
    let ins = Array.unsafe_get t.cl_comb i in
    vals.(ins.i_slot) <- ins.i_eval ()
  done

let fixpoint_sweep t =
  let vals = t.cl_vals in
  let changed = ref false in
  for i = Array.length t.cl_comb - 1 downto 0 do
    let ins = Array.unsafe_get t.cl_comb i in
    let v = ins.i_eval () in
    if vals.(ins.i_slot) <> v then begin
      vals.(ins.i_slot) <- v;
      changed := true
    end
  done;
  !changed

let fixpoint_bound t = Array.length t.cl_comb + 2

(* Two-phase: ALL register next-values and memory-write operands are
   computed from pre-update state before any commit — otherwise a later
   write's enable/data would observe an earlier write of the same cycle
   (registers banked into memories by the FAME-5 hardware transform
   make that race universal). *)
let stage_and_commit_all t =
  let vals = t.cl_vals in
  let regs = t.cl_regs in
  for i = 0 to Array.length regs - 1 do
    let r = Array.unsafe_get regs i in
    let keep =
      match r.r_enable with
      | None -> false
      | Some en -> en () = 0
    in
    t.cl_staging.(i) <- (if keep then vals.(r.r_slot) else r.r_next ())
  done;
  Array.iter
    (fun w ->
      w.w_fire <- w.w_enable () <> 0;
      if w.w_fire then begin
        let a = w.w_addr () in
        if a >= w.w_depth then Telemetry.incr t.cl_wrapped;
        w.w_idx <- a mod w.w_depth;
        w.w_val <- w.w_data () land Ast.mask w.w_width
      end)
    t.cl_writes;
  Array.iter (fun w -> if w.w_fire then w.w_mem.(w.w_idx) <- w.w_val) t.cl_writes;
  for i = 0 to Array.length regs - 1 do
    vals.(regs.(i).r_slot) <- t.cl_staging.(i)
  done

let make_cone t ~lane names =
  if lane <> 0 then error "closure engine is single-lane (lane %d requested)" lane;
  let instrs =
    List.filter_map (fun name -> Hashtbl.find_opt t.cl_by_name name) names
    |> Array.of_list
  in
  fun () ->
    for i = 0 to Array.length instrs - 1 do
      let ins = Array.unsafe_get instrs i in
      t.cl_vals.(ins.i_slot) <- ins.i_eval ()
    done

(* Static profiling facts: the closure engine has no opcode stream, so
   its unit of retired work is the evaluated node (one closure call). *)
let comb_class_hist t = [ ("node", Array.length t.cl_comb) ]

let seq_class_hist t =
  [ ("state", Array.length t.cl_regs + Array.length t.cl_writes) ]

let cone_profile t names =
  let n =
    List.fold_left
      (fun acc name -> if Hashtbl.mem t.cl_by_name name then acc + 1 else acc)
      0 names
  in
  (n, [ ("node", n) ])
