(* Compiled bytecode evaluation engine (GSIM/Manticore-style): the
   levelized combinational assignments, register updates and memory
   writes of a flat module are lowered into flat int-array instruction
   streams — opcode + operand slot indices over the simulator's shared
   [values] array — executed by a tight dispatch loop.  No closures, no
   allocation per cycle: one indirect-call-free sweep over an int array
   replaces one virtual call per expression node.

   Layout.  Named slots keep their [Sim] indices; literal-pool slots
   (constants written once at [bind] time) sit directly above them, and
   expression temporaries live above those in the same array.  Temporary
   indices reset per assignment ("segment"), so the array only needs
   the deepest single assignment's worth of temps, and every segment is
   self-contained — which is what lets cones concatenate segments and
   the fixpoint sweep replay them individually.

   Lanes.  A program can drive N independent copies of the design in
   lockstep (structure of arrays): ONE instruction stream, N value
   arrays, N memory images, N staging buffers.  The compiled program is
   lane-count independent — [set_lanes] only allocates execution state.
   Lane 0 is the scalar lane: with one lane, execution takes the exact
   dispatch loop the scalar engine always had; with more, [exec_all]
   decodes each instruction once and applies it to every lane, so
   dispatch, operand fetch and program-counter arithmetic are amortized
   over all lanes.  That amortization is the aggregate-throughput win
   FAME-5 threading and multi-tenant packing ride on.

   Masking discipline mirrors the closure engine exactly: operators
   that wrap (add/sub/mul/shl, not/neg, bit slices) carry their mask as
   an immediate; operators whose result provably fits the destination
   emit nothing extra; everything else gets a trailing MASK.  The
   compiler tracks a conservative "natural mask" per value (-1 =
   unknown) to decide which. *)

open Firrtl

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Opcodes.  Instructions are variable-length: opcode, then operands.
   dst/a/b/c are value-array slots; m is an immediate mask; other
   immediates as noted. *)
let op_const = 0 (* dst imm               vals[dst] <- imm *)

let op_mov = 1 (* dst a                 vals[dst] <- vals[a] *)
let op_mask = 2 (* dst a m              vals[dst] <- vals[a] land m *)
let op_mux = 3 (* dst c a b             vals[dst] <- if vals[c]<>0 then vals[a] else vals[b] *)
let op_add = 4 (* dst a b m *)
let op_sub = 5 (* dst a b m *)
let op_mul = 6 (* dst a b m *)
let op_div = 7 (* dst a b               0 on zero divisor *)
let op_rem = 8 (* dst a b               0 on zero divisor *)
let op_and = 9 (* dst a b *)
let op_or = 10 (* dst a b *)
let op_xor = 11 (* dst a b *)
let op_shl = 12 (* dst a b m            0 when shift > max_width *)
let op_shr = 13 (* dst a b              0 when shift > max_width *)
let op_eq = 14 (* dst a b *)
let op_neq = 15 (* dst a b *)
let op_lt = 16 (* dst a b *)
let op_le = 17 (* dst a b *)
let op_gt = 18 (* dst a b *)
let op_ge = 19 (* dst a b *)
let op_not = 20 (* dst a m *)
let op_neg = 21 (* dst a m *)
let op_andr = 22 (* dst a m             1 iff vals[a] = m *)
let op_orr = 23 (* dst a *)
let op_xorr = 24 (* dst a *)
let op_bits = 25 (* dst a lo m          (vals[a] lsr lo) land m *)
let op_cat = 26 (* dst a b wb           (vals[a] lsl wb) lor vals[b] *)
let op_read = 27 (* dst mem a           vals[dst] <- mems[mem][vals[a] mod depth] *)
let op_stage = 28 (* r a                staging[r] <- vals[a] *)
let op_stage_en = 29 (* r a en slot     staging[r] <- if vals[en]=0 then vals[slot] else vals[a] *)
let op_wstage = 30 (* j en a d depth    stage memory write j (counts wrapped addresses) *)

let op_read_p2 = 31 (* dst mem a m      vals[dst] <- mems[mem][vals[a] land m]
                       (power-of-two depth: the wrap is a mask, not a division) *)

(* One combinational assignment: [sg_dst] gets the value of the code
   range [sg_start, sg_stop). *)
type seg = {
  sg_name : string;
  sg_dst : int;
  sg_start : int;
  sg_stop : int;
}

type t = {
  bc_code : int array;  (** comb program: all segments, levelized *)
  bc_segs : seg array;  (** levelized order *)
  bc_seg_by_name : (string, int) Hashtbl.t;
  bc_seq : int array;  (** staging program for registers + memory writes *)
  bc_n_named : int;
  bc_pool : int array;  (** literal pool: values preloaded at [bind] time *)
  bc_n_temps : int;
  bc_mem_ids : (string, int) Hashtbl.t;  (** memory name -> id into per-lane images *)
  bc_w_mem_ids : int array;  (** per memory write (stmt order): its memory's id *)
  bc_reg_slots : int array;  (** per register (stmt order): its value slot *)
  bc_wrapped : Telemetry.counter;
  (* Per-lane execution state (structure of arrays; index = lane).
     Lane 0's memory images alias the simulator's own backing arrays;
     higher lanes get private copies allocated by [set_lanes]. *)
  mutable bc_vals : int array array;
  mutable bc_lmems : int array array array;  (** per lane: image per mem id *)
  mutable bc_staging : int array array;
  mutable bc_w_mem : int array array array;  (** per lane: image per write *)
  mutable bc_w_fire : bool array array;
  mutable bc_w_idx : int array array;
  mutable bc_w_val : int array array;
}

(* Growable int buffer. *)
type buf = {
  mutable b_code : int array;
  mutable b_len : int;
}

let buf_create () = { b_code = Array.make 256 0; b_len = 0 }

let buf_push b v =
  if b.b_len = Array.length b.b_code then begin
    let bigger = Array.make (2 * Array.length b.b_code) 0 in
    Array.blit b.b_code 0 bigger 0 b.b_len;
    b.b_code <- bigger
  end;
  b.b_code.(b.b_len) <- v;
  b.b_len <- b.b_len + 1

let buf_contents b = Array.sub b.b_code 0 b.b_len

(* Smallest contiguous mask covering [v]; -1 (unknown) propagates. *)
let contiguous v =
  if v < 0 then -1
  else begin
    let m = ref 0 in
    while !m < v do
      m := (!m lsl 1) lor 1
    done;
    !m
  end

let compile ~flat ~analysis ~slots ~widths ~mems ~mem_widths ?(live = fun _ -> true)
    ~wrapped () =
  let n_named = Array.length widths in
  let env =
    {
      Ast.width_of_name =
        (fun n ->
          match Hashtbl.find_opt slots n with
          | Some i -> widths.(i)
          | None -> error "unknown name %s" n);
      Ast.width_of_mem =
        (fun n ->
          match Hashtbl.find_opt mem_widths n with
          | Some w -> w
          | None -> error "unknown memory %s" n);
    }
  in
  let slot name =
    match Hashtbl.find_opt slots name with
    | Some i -> i
    | None -> error "no such signal: %s" name
  in
  (* Memory identity: stable ids into the per-lane memory images.
     EVERY simulator memory is registered up front — declaration order
     first, then (sorted) any backing array the optimizer's [flat] no
     longer declares — so higher lanes can snapshot/restore the same
     state a single-lane simulator would, and ids never depend on which
     memories the program happens to touch. *)
  let mem_ids = Hashtbl.create 8 in
  let mem_list = ref [] in
  let register name =
    if not (Hashtbl.mem mem_ids name) then
      match Hashtbl.find_opt mems name with
      | None -> error "no such memory: %s" name
      | Some arr ->
        Hashtbl.replace mem_ids name (Hashtbl.length mem_ids);
        mem_list := arr :: !mem_list
  in
  List.iter
    (fun c ->
      match c with
      | Ast.Mem { name; _ } -> register name
      | Ast.Wire _ | Ast.Reg _ | Ast.Inst _ -> ())
    flat.Ast.comps;
  Hashtbl.fold (fun name _ acc -> name :: acc) mems []
  |> List.sort compare
  |> List.iter register;
  let mem_id name =
    match Hashtbl.find_opt mem_ids name with
    | Some i -> i
    | None -> error "no such memory: %s" name
  in
  (* Literal pool: every literal operand value gets a dedicated slot
     just above the named ones, written once at [bind] time — no
     per-cycle CONST instructions for operands.  (Top-level literal
     connects still emit CONST: their destination is a named slot.) *)
  let pool = Hashtbl.create 32 in
  let pool_values = ref [] in
  let rec scan_lits e =
    match e with
    | Ast.Lit { value; _ } ->
      if not (Hashtbl.mem pool value) then begin
        Hashtbl.replace pool value (n_named + Hashtbl.length pool);
        pool_values := value :: !pool_values
      end
    | Ast.Ref _ -> ()
    | Ast.Mux (c, a, b) ->
      scan_lits c;
      scan_lits a;
      scan_lits b
    | Ast.Binop (_, a, b) | Ast.Cat (a, b) ->
      scan_lits a;
      scan_lits b
    | Ast.Unop (_, a) -> scan_lits a
    | Ast.Bits { e; _ } -> scan_lits e
    | Ast.Read { addr; _ } -> scan_lits addr
  in
  List.iter
    (fun s ->
      match s with
      | Ast.Connect { src; _ } -> scan_lits src
      | Ast.Reg_update { next; enable; _ } ->
        scan_lits next;
        Option.iter scan_lits enable
      | Ast.Mem_write { addr; data; enable; _ } ->
        scan_lits addr;
        scan_lits data;
        scan_lits enable)
    flat.Ast.stmts;
  let n_pool = Hashtbl.length pool in
  let cur_temps = ref 0 in
  let max_temps = ref 0 in
  let reset_temps () = cur_temps := 0 in
  let buf = buf_create () in
  let fresh () =
    let s = n_named + n_pool + !cur_temps in
    incr cur_temps;
    if !cur_temps > !max_temps then max_temps := !cur_temps;
    s
  in
  let emit3 a b c =
    buf_push buf a;
    buf_push buf b;
    buf_push buf c
  in
  let emit4 a b c d =
    emit3 a b c;
    buf_push buf d
  in
  let emit5 a b c d e =
    emit4 a b c d;
    buf_push buf e
  in
  let emit6 a b c d e f =
    emit5 a b c d e;
    buf_push buf f
  in
  (* [emit_node] compiles [e]'s top operator into [dst], masked to
     [dmask] (-1 = raw closure semantics); returns the natural mask of
     the stored value.  [operand] places a subexpression's raw value in
     a slot, hash-consing structurally identical subexpressions within
     the current segment. *)
  let rec operand cse e =
    match e with
    | Ast.Ref name ->
      let s = slot name in
      (s, Ast.mask widths.(s))
    | Ast.Lit { value; _ } ->
      (* The pool slot already holds the value; the value itself is the
         tightest possible natural mask. *)
      (Hashtbl.find pool value, if value >= 0 then value else -1)
    | _ -> (
      match Hashtbl.find_opt cse e with
      | Some r -> r
      | None ->
        let d = fresh () in
        let nm = emit_node cse e ~dst:d ~dmask:(-1) in
        Hashtbl.add cse e (d, nm);
        (d, nm))
  and emit_node cse e ~dst ~dmask =
    (* Appends a trailing MASK only when the natural mask does not
       already fit the requested one. *)
    let finish nm =
      if dmask <> -1 && nm land dmask <> nm then begin
        emit4 op_mask dst dst dmask;
        dmask
      end
      else nm
    in
    (* Folds [dmask] into an operator's own mask immediate. *)
    let combine m = m land dmask in
    match e with
    | Ast.Lit { value; _ } ->
      let v = if dmask = -1 then value else value land dmask in
      emit3 op_const dst v;
      if v >= 0 then v else -1
    | Ast.Ref name ->
      let s = slot name in
      let mw = Ast.mask widths.(s) in
      if dmask = -1 || mw land dmask = mw then begin
        emit3 op_mov dst s;
        mw
      end
      else begin
        emit4 op_mask dst s dmask;
        mw land dmask
      end
    | Ast.Mux (c, a, b) ->
      let sc, _ = operand cse c in
      let sa, na = operand cse a in
      let sb, nb = operand cse b in
      emit5 op_mux dst sc sa sb;
      finish (if na < 0 || nb < 0 then -1 else na lor nb)
    | Ast.Binop (op, a, b) ->
      let sa, na = operand cse a in
      let sb, nb = operand cse b in
      let m = Ast.mask (Ast.width_of env e) in
      (match op with
      | Ast.Add ->
        emit5 op_add dst sa sb (combine m);
        combine m
      | Ast.Sub ->
        emit5 op_sub dst sa sb (combine m);
        combine m
      | Ast.Mul ->
        emit5 op_mul dst sa sb (combine m);
        combine m
      | Ast.Shl ->
        emit5 op_shl dst sa sb (combine m);
        combine m
      | Ast.Div ->
        emit4 op_div dst sa sb;
        finish (contiguous na)
      | Ast.Rem ->
        emit4 op_rem dst sa sb;
        finish (if na < 0 || nb < 0 then -1 else contiguous (na lor nb))
      | Ast.And ->
        emit4 op_and dst sa sb;
        finish (na land nb)
      | Ast.Or ->
        emit4 op_or dst sa sb;
        finish (if na < 0 || nb < 0 then -1 else na lor nb)
      | Ast.Xor ->
        emit4 op_xor dst sa sb;
        finish (if na < 0 || nb < 0 then -1 else na lor nb)
      | Ast.Shr ->
        emit4 op_shr dst sa sb;
        finish (contiguous na)
      | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
        let opc =
          match op with
          | Ast.Eq -> op_eq
          | Ast.Neq -> op_neq
          | Ast.Lt -> op_lt
          | Ast.Le -> op_le
          | Ast.Gt -> op_gt
          | _ -> op_ge
        in
        emit4 opc dst sa sb;
        1)
    | Ast.Unop (op, a) ->
      let sa, _ = operand cse a in
      let ma = Ast.mask (Ast.width_of env a) in
      (match op with
      | Ast.Not ->
        emit4 op_not dst sa (combine ma);
        combine ma
      | Ast.Neg ->
        emit4 op_neg dst sa (combine ma);
        combine ma
      | Ast.Andr ->
        emit4 op_andr dst sa ma;
        1
      | Ast.Orr ->
        emit3 op_orr dst sa;
        1
      | Ast.Xorr ->
        emit3 op_xorr dst sa;
        1)
    | Ast.Bits { e = a; hi; lo } ->
      let sa, _ = operand cse a in
      let m = combine (Ast.mask (hi - lo + 1)) in
      emit5 op_bits dst sa lo m;
      m
    | Ast.Cat (a, b) ->
      let wb = Ast.width_of env b in
      if Ast.width_of env a + wb > Ast.max_width then
        error "cat result exceeds %d bits" Ast.max_width;
      let sa, na = operand cse a in
      let sb, nb = operand cse b in
      emit5 op_cat dst sa sb wb;
      let nm =
        if na < 0 || nb < 0 then -1
        else
          let sh = na lsl wb in
          if sh < 0 || sh lsr wb <> na then -1 else sh lor nb
      in
      finish nm
    | Ast.Read { mem; addr } ->
      let sa, _ = operand cse addr in
      let id = mem_id mem in
      let depth =
        match Hashtbl.find_opt mems mem with
        | Some arr -> Array.length arr
        | None -> error "no such memory: %s" mem
      in
      if depth land (depth - 1) = 0 then emit5 op_read_p2 dst id sa (depth - 1)
      else emit4 op_read dst id sa;
      finish (-1)
  in
  (* Places [e]'s value, masked to [dmask], in a slot (reusing a Ref's
     own slot when its width already fits). *)
  let masked_operand cse e dmask =
    match e with
    | Ast.Ref name ->
      let s = slot name in
      let mw = Ast.mask widths.(s) in
      if mw land dmask = mw then s
      else begin
        let d = fresh () in
        emit4 op_mask d s dmask;
        d
      end
    | _ ->
      let s, nm = operand cse e in
      if nm >= 0 && nm land dmask = nm then s
      else begin
        let d = fresh () in
        emit4 op_mask d s dmask;
        d
      end
  in
  (* Combinational segments, levelized. *)
  let segs = ref [] in
  let seg_by_name = Hashtbl.create 256 in
  List.iter
    (fun name ->
      if live name then begin
        let dst = slot name in
        let src =
          match Analysis.driver_of analysis name with
          | Some e -> e
          | None -> error "%s has no driver" name
        in
        reset_temps ();
        let cse = Hashtbl.create 16 in
        let sg_start = buf.b_len in
        ignore (emit_node cse src ~dst ~dmask:(Ast.mask widths.(dst)));
        Hashtbl.replace seg_by_name name (List.length !segs);
        segs := { sg_name = name; sg_dst = dst; sg_start; sg_stop = buf.b_len } :: !segs
      end)
    analysis.Analysis.order;
  let bc_code = buf_contents buf in
  let bc_segs = Array.of_list (List.rev !segs) in
  (* [segs] was accumulated in reverse, so indices recorded in
     [seg_by_name] count from the front already. *)
  (* Sequential staging program: register next/enable and memory-write
     operands, all computed from pre-commit state (two-phase). *)
  let seq_buf = buf_create () in
  let seq_swap = buf in
  ignore seq_swap;
  buf.b_code <- seq_buf.b_code;
  buf.b_len <- 0;
  reset_temps ();
  let cse = Hashtbl.create 32 in
  let reg_slots = ref [] in
  let w_ids = ref [] in
  let n_regs = ref 0 in
  let n_writes = ref 0 in
  List.iter
    (fun s ->
      match s with
      | Ast.Reg_update { reg; next; enable } ->
        let r = !n_regs in
        incr n_regs;
        let r_slot = slot reg in
        reg_slots := r_slot :: !reg_slots;
        let sn = masked_operand cse next (Ast.mask widths.(r_slot)) in
        (match enable with
        | None -> emit3 op_stage r sn
        | Some en ->
          let se, _ = operand cse en in
          emit5 op_stage_en r sn se r_slot)
      | Ast.Mem_write { mem; addr; data; enable } ->
        let j = !n_writes in
        incr n_writes;
        let arr =
          match Hashtbl.find_opt mems mem with
          | Some a -> a
          | None -> error "no such memory: %s" mem
        in
        w_ids := mem_id mem :: !w_ids;
        let w =
          match Hashtbl.find_opt mem_widths mem with
          | Some w -> w
          | None -> error "unknown memory %s" mem
        in
        let se, _ = operand cse enable in
        let sa, _ = operand cse addr in
        let sd = masked_operand cse data (Ast.mask w) in
        emit6 op_wstage j se sa sd (Array.length arr)
      | Ast.Connect _ -> ())
    flat.Ast.stmts;
  let bc_seq = buf_contents buf in
  let lane0_mems = Array.of_list (List.rev !mem_list) in
  let bc_w_mem_ids = Array.of_list (List.rev !w_ids) in
  {
    bc_code;
    bc_segs;
    bc_seg_by_name = seg_by_name;
    bc_seq;
    bc_n_named = n_named;
    bc_pool = Array.of_list (List.rev !pool_values);
    bc_n_temps = !max_temps;
    bc_mem_ids = mem_ids;
    bc_w_mem_ids;
    bc_reg_slots = Array.of_list (List.rev !reg_slots);
    bc_wrapped = wrapped;
    bc_vals = [| [||] |];
    bc_lmems = [| lane0_mems |];
    bc_staging = [| Array.make !n_regs 0 |];
    bc_w_mem = [| Array.map (fun id -> lane0_mems.(id)) bc_w_mem_ids |];
    bc_w_fire = [| Array.make !n_writes false |];
    bc_w_idx = [| Array.make !n_writes 0 |];
    bc_w_val = [| Array.make !n_writes 0 |];
  }

(* ------------------------------------------------------------------ *)
(* Program facts and lane management                                   *)
(* ------------------------------------------------------------------ *)

type stats = {
  named : int;
  temps : int;
  slots : int;
  comb_instrs : int;
  seq_instrs : int;
  segments : int;
  lanes : int;
}

let lanes t = Array.length t.bc_vals

let stats t =
  {
    named = t.bc_n_named;
    temps = t.bc_n_temps;
    slots = t.bc_n_named + Array.length t.bc_pool + t.bc_n_temps;
    comb_instrs = Array.length t.bc_code;
    seq_instrs = Array.length t.bc_seq;
    segments = Array.length t.bc_segs;
    lanes = lanes t;
  }

let reg_slots t = t.bc_reg_slots

(* Order-sensitive fold over both instruction streams; used by tests to
   check that the compiled program is independent of the lane count. *)
let program_hash t =
  let mix h v = (h * 31) + v in
  let h = Array.fold_left mix 17 t.bc_code in
  Array.fold_left mix h t.bc_seq

let check_lane t lane =
  if lane < 0 || lane >= lanes t then
    error "lane %d out of range (%d lanes)" lane (lanes t)

let set_lanes t n =
  if n < 1 then error "set_lanes: need at least one lane, got %d" n;
  let cur = lanes t in
  let lane0_mems = t.bc_lmems.(0) in
  let n_regs = Array.length t.bc_staging.(0) in
  let n_writes = Array.length t.bc_w_fire.(0) in
  let keep old fresh = Array.init n (fun k -> if k < cur then old.(k) else fresh k) in
  t.bc_lmems <-
    keep t.bc_lmems (fun _ -> Array.map (fun a -> Array.make (Array.length a) 0) lane0_mems);
  t.bc_vals <- keep t.bc_vals (fun _ -> [||]);
  t.bc_staging <- keep t.bc_staging (fun _ -> Array.make n_regs 0);
  t.bc_w_mem <-
    Array.init n (fun k ->
        if k < cur then t.bc_w_mem.(k)
        else Array.map (fun id -> t.bc_lmems.(k).(id)) t.bc_w_mem_ids);
  t.bc_w_fire <- keep t.bc_w_fire (fun _ -> Array.make n_writes false);
  t.bc_w_idx <- keep t.bc_w_idx (fun _ -> Array.make n_writes 0);
  t.bc_w_val <- keep t.bc_w_val (fun _ -> Array.make n_writes 0)

let n_slots t = t.bc_n_named + Array.length t.bc_pool + t.bc_n_temps

let bind_lane t lane vals =
  check_lane t lane;
  if Array.length vals < n_slots t then
    error "bind: value array has %d slots, program needs %d" (Array.length vals)
      (n_slots t);
  Array.iteri (fun k v -> vals.(t.bc_n_named + k) <- v) t.bc_pool;
  t.bc_vals.(lane) <- vals

let bind t vals = bind_lane t 0 vals

(* Lane [lane]'s image of memory [name] (lane 0 aliases the simulator's
   own backing array). *)
let lane_mem t ~lane name =
  check_lane t lane;
  match Hashtbl.find_opt t.bc_mem_ids name with
  | Some id -> t.bc_lmems.(lane).(id)
  | None -> error "no such memory: %s" name

let rec parity acc v = if v = 0 then acc else parity (acc lxor (v land 1)) (v lsr 1)

(* The dispatch loop: a dense integer match (one jump-table dispatch
   per instruction) with every operand read written out inline — no
   closures, no allocation anywhere in the loop.  The literal patterns
   mirror the op_* definitions above in order.  [code] reads are unsafe
   (the compiler only emits in-bounds program counters); value-array
   accesses are unsafe too — every slot index was derived from the
   validated slot table or the temp allocator. *)
let exec t ~lane code start stop =
  let vals = Array.unsafe_get t.bc_vals lane in
  let mems = Array.unsafe_get t.bc_lmems lane in
  let staging = Array.unsafe_get t.bc_staging lane in
  let w_fire = Array.unsafe_get t.bc_w_fire lane in
  let w_idx = Array.unsafe_get t.bc_w_idx lane in
  let w_val = Array.unsafe_get t.bc_w_val lane in
  let rec go p =
    if p < stop then begin
      let dst = Array.unsafe_get code (p + 1) in
      match Array.unsafe_get code p with
      | 0 ->
        (* const: dst imm *)
        Array.unsafe_set vals dst (Array.unsafe_get code (p + 2));
        go (p + 3)
      | 1 ->
        (* mov: dst a *)
        Array.unsafe_set vals dst (Array.unsafe_get vals (Array.unsafe_get code (p + 2)));
        go (p + 3)
      | 2 ->
        (* mask: dst a m *)
        Array.unsafe_set vals dst
          (Array.unsafe_get vals (Array.unsafe_get code (p + 2))
          land Array.unsafe_get code (p + 3));
        go (p + 4)
      | 3 ->
        (* mux: dst c a b *)
        Array.unsafe_set vals dst
          (if Array.unsafe_get vals (Array.unsafe_get code (p + 2)) <> 0 then
             Array.unsafe_get vals (Array.unsafe_get code (p + 3))
           else Array.unsafe_get vals (Array.unsafe_get code (p + 4)));
        go (p + 5)
      | 4 ->
        (* add: dst a b m *)
        Array.unsafe_set vals dst
          ((Array.unsafe_get vals (Array.unsafe_get code (p + 2))
           + Array.unsafe_get vals (Array.unsafe_get code (p + 3)))
          land Array.unsafe_get code (p + 4));
        go (p + 5)
      | 5 ->
        (* sub: dst a b m *)
        Array.unsafe_set vals dst
          ((Array.unsafe_get vals (Array.unsafe_get code (p + 2))
           - Array.unsafe_get vals (Array.unsafe_get code (p + 3)))
          land Array.unsafe_get code (p + 4));
        go (p + 5)
      | 6 ->
        (* mul: dst a b m *)
        Array.unsafe_set vals dst
          (Array.unsafe_get vals (Array.unsafe_get code (p + 2))
           * Array.unsafe_get vals (Array.unsafe_get code (p + 3))
          land Array.unsafe_get code (p + 4));
        go (p + 5)
      | 7 ->
        (* div: dst a b *)
        let b = Array.unsafe_get vals (Array.unsafe_get code (p + 3)) in
        Array.unsafe_set vals dst
          (if b = 0 then 0 else Array.unsafe_get vals (Array.unsafe_get code (p + 2)) / b);
        go (p + 4)
      | 8 ->
        (* rem: dst a b *)
        let b = Array.unsafe_get vals (Array.unsafe_get code (p + 3)) in
        Array.unsafe_set vals dst
          (if b = 0 then 0
           else Array.unsafe_get vals (Array.unsafe_get code (p + 2)) mod b);
        go (p + 4)
      | 9 ->
        (* and: dst a b *)
        Array.unsafe_set vals dst
          (Array.unsafe_get vals (Array.unsafe_get code (p + 2))
          land Array.unsafe_get vals (Array.unsafe_get code (p + 3)));
        go (p + 4)
      | 10 ->
        (* or: dst a b *)
        Array.unsafe_set vals dst
          (Array.unsafe_get vals (Array.unsafe_get code (p + 2))
          lor Array.unsafe_get vals (Array.unsafe_get code (p + 3)));
        go (p + 4)
      | 11 ->
        (* xor: dst a b *)
        Array.unsafe_set vals dst
          (Array.unsafe_get vals (Array.unsafe_get code (p + 2))
          lxor Array.unsafe_get vals (Array.unsafe_get code (p + 3)));
        go (p + 4)
      | 12 ->
        (* shl: dst a b m *)
        let b = Array.unsafe_get vals (Array.unsafe_get code (p + 3)) in
        Array.unsafe_set vals dst
          (if b > Ast.max_width then 0
           else
             Array.unsafe_get vals (Array.unsafe_get code (p + 2))
             lsl b
             land Array.unsafe_get code (p + 4));
        go (p + 5)
      | 13 ->
        (* shr: dst a b *)
        let b = Array.unsafe_get vals (Array.unsafe_get code (p + 3)) in
        Array.unsafe_set vals dst
          (if b > Ast.max_width then 0
           else Array.unsafe_get vals (Array.unsafe_get code (p + 2)) lsr b);
        go (p + 4)
      | 14 ->
        (* eq: dst a b *)
        Array.unsafe_set vals dst
          (if
             Array.unsafe_get vals (Array.unsafe_get code (p + 2))
             = Array.unsafe_get vals (Array.unsafe_get code (p + 3))
           then 1
           else 0);
        go (p + 4)
      | 15 ->
        (* neq: dst a b *)
        Array.unsafe_set vals dst
          (if
             Array.unsafe_get vals (Array.unsafe_get code (p + 2))
             <> Array.unsafe_get vals (Array.unsafe_get code (p + 3))
           then 1
           else 0);
        go (p + 4)
      | 16 ->
        (* lt: dst a b *)
        Array.unsafe_set vals dst
          (if
             Array.unsafe_get vals (Array.unsafe_get code (p + 2))
             < Array.unsafe_get vals (Array.unsafe_get code (p + 3))
           then 1
           else 0);
        go (p + 4)
      | 17 ->
        (* le: dst a b *)
        Array.unsafe_set vals dst
          (if
             Array.unsafe_get vals (Array.unsafe_get code (p + 2))
             <= Array.unsafe_get vals (Array.unsafe_get code (p + 3))
           then 1
           else 0);
        go (p + 4)
      | 18 ->
        (* gt: dst a b *)
        Array.unsafe_set vals dst
          (if
             Array.unsafe_get vals (Array.unsafe_get code (p + 2))
             > Array.unsafe_get vals (Array.unsafe_get code (p + 3))
           then 1
           else 0);
        go (p + 4)
      | 19 ->
        (* ge: dst a b *)
        Array.unsafe_set vals dst
          (if
             Array.unsafe_get vals (Array.unsafe_get code (p + 2))
             >= Array.unsafe_get vals (Array.unsafe_get code (p + 3))
           then 1
           else 0);
        go (p + 4)
      | 20 ->
        (* not: dst a m *)
        Array.unsafe_set vals dst
          (lnot (Array.unsafe_get vals (Array.unsafe_get code (p + 2)))
          land Array.unsafe_get code (p + 3));
        go (p + 4)
      | 21 ->
        (* neg: dst a m *)
        Array.unsafe_set vals dst
          (-Array.unsafe_get vals (Array.unsafe_get code (p + 2))
          land Array.unsafe_get code (p + 3));
        go (p + 4)
      | 22 ->
        (* andr: dst a m *)
        Array.unsafe_set vals dst
          (if
             Array.unsafe_get vals (Array.unsafe_get code (p + 2))
             = Array.unsafe_get code (p + 3)
           then 1
           else 0);
        go (p + 4)
      | 23 ->
        (* orr: dst a *)
        Array.unsafe_set vals dst
          (if Array.unsafe_get vals (Array.unsafe_get code (p + 2)) <> 0 then 1 else 0);
        go (p + 3)
      | 24 ->
        (* xorr: dst a *)
        Array.unsafe_set vals dst
          (parity 0 (Array.unsafe_get vals (Array.unsafe_get code (p + 2))));
        go (p + 3)
      | 25 ->
        (* bits: dst a lo m *)
        Array.unsafe_set vals dst
          (Array.unsafe_get vals (Array.unsafe_get code (p + 2))
           lsr Array.unsafe_get code (p + 3)
          land Array.unsafe_get code (p + 4));
        go (p + 5)
      | 26 ->
        (* cat: dst a b wb *)
        Array.unsafe_set vals dst
          (Array.unsafe_get vals (Array.unsafe_get code (p + 2))
           lsl Array.unsafe_get code (p + 4)
          lor Array.unsafe_get vals (Array.unsafe_get code (p + 3)));
        go (p + 5)
      | 27 ->
        (* read: dst mem a *)
        let arr = Array.unsafe_get mems (Array.unsafe_get code (p + 2)) in
        Array.unsafe_set vals dst
          (Array.unsafe_get arr
             (Array.unsafe_get vals (Array.unsafe_get code (p + 3)) mod Array.length arr));
        go (p + 4)
      | 28 ->
        (* stage: r a *)
        Array.unsafe_set staging dst
          (Array.unsafe_get vals (Array.unsafe_get code (p + 2)));
        go (p + 3)
      | 29 ->
        (* stage_en: r a en slot *)
        Array.unsafe_set staging dst
          (if Array.unsafe_get vals (Array.unsafe_get code (p + 3)) = 0 then
             Array.unsafe_get vals (Array.unsafe_get code (p + 4))
           else Array.unsafe_get vals (Array.unsafe_get code (p + 2)));
        go (p + 5)
      | 30 ->
        (* wstage: j en a d depth *)
        if Array.unsafe_get vals (Array.unsafe_get code (p + 2)) <> 0 then begin
          Array.unsafe_set w_fire dst true;
          let a = Array.unsafe_get vals (Array.unsafe_get code (p + 3)) in
          let depth = Array.unsafe_get code (p + 5) in
          if a >= depth then Telemetry.incr t.bc_wrapped;
          Array.unsafe_set w_idx dst (a mod depth);
          Array.unsafe_set w_val dst
            (Array.unsafe_get vals (Array.unsafe_get code (p + 4)))
        end
        else Array.unsafe_set w_fire dst false;
        go (p + 6)
      | _ ->
        (* read_p2: dst mem a m *)
        let arr = Array.unsafe_get mems (Array.unsafe_get code (p + 2)) in
        Array.unsafe_set vals dst
          (Array.unsafe_get arr
             (Array.unsafe_get vals (Array.unsafe_get code (p + 3))
             land Array.unsafe_get code (p + 4)));
        go (p + 5)
    end
  in
  go start

(* The vectorized dispatch loop: decodes each instruction ONCE and
   applies it to every lane before advancing the program counter, so
   dispatch, operand-slot fetch and PC arithmetic are amortized over
   all lanes — this inner lane loop is where the N-lane mode's
   aggregate-throughput win over N scalar passes comes from.  Per-lane
   state is indexed structure-of-arrays style from the hoisted lane
   tables; the opcode semantics are byte-identical to [exec]. *)
let exec_all t code start stop =
  let lvals = t.bc_vals in
  let nl = Array.length lvals in
  let lmems = t.bc_lmems in
  let lstage = t.bc_staging in
  let lfire = t.bc_w_fire in
  let lidx = t.bc_w_idx in
  let lval = t.bc_w_val in
  let rec go p =
    if p < stop then begin
      let dst = Array.unsafe_get code (p + 1) in
      match Array.unsafe_get code p with
      | 0 ->
        let imm = Array.unsafe_get code (p + 2) in
        for l = 0 to nl - 1 do
          Array.unsafe_set (Array.unsafe_get lvals l) dst imm
        done;
        go (p + 3)
      | 1 ->
        let a = Array.unsafe_get code (p + 2) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst (Array.unsafe_get v a)
        done;
        go (p + 3)
      | 2 ->
        let a = Array.unsafe_get code (p + 2) in
        let m = Array.unsafe_get code (p + 3) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst (Array.unsafe_get v a land m)
        done;
        go (p + 4)
      | 3 ->
        let c = Array.unsafe_get code (p + 2) in
        let a = Array.unsafe_get code (p + 3) in
        let b = Array.unsafe_get code (p + 4) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst
            (if Array.unsafe_get v c <> 0 then Array.unsafe_get v a
             else Array.unsafe_get v b)
        done;
        go (p + 5)
      | 4 ->
        let a = Array.unsafe_get code (p + 2) in
        let b = Array.unsafe_get code (p + 3) in
        let m = Array.unsafe_get code (p + 4) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst ((Array.unsafe_get v a + Array.unsafe_get v b) land m)
        done;
        go (p + 5)
      | 5 ->
        let a = Array.unsafe_get code (p + 2) in
        let b = Array.unsafe_get code (p + 3) in
        let m = Array.unsafe_get code (p + 4) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst ((Array.unsafe_get v a - Array.unsafe_get v b) land m)
        done;
        go (p + 5)
      | 6 ->
        let a = Array.unsafe_get code (p + 2) in
        let b = Array.unsafe_get code (p + 3) in
        let m = Array.unsafe_get code (p + 4) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst (Array.unsafe_get v a * Array.unsafe_get v b land m)
        done;
        go (p + 5)
      | 7 ->
        let a = Array.unsafe_get code (p + 2) in
        let b = Array.unsafe_get code (p + 3) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          let d = Array.unsafe_get v b in
          Array.unsafe_set v dst (if d = 0 then 0 else Array.unsafe_get v a / d)
        done;
        go (p + 4)
      | 8 ->
        let a = Array.unsafe_get code (p + 2) in
        let b = Array.unsafe_get code (p + 3) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          let d = Array.unsafe_get v b in
          Array.unsafe_set v dst (if d = 0 then 0 else Array.unsafe_get v a mod d)
        done;
        go (p + 4)
      | 9 ->
        let a = Array.unsafe_get code (p + 2) in
        let b = Array.unsafe_get code (p + 3) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst (Array.unsafe_get v a land Array.unsafe_get v b)
        done;
        go (p + 4)
      | 10 ->
        let a = Array.unsafe_get code (p + 2) in
        let b = Array.unsafe_get code (p + 3) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst (Array.unsafe_get v a lor Array.unsafe_get v b)
        done;
        go (p + 4)
      | 11 ->
        let a = Array.unsafe_get code (p + 2) in
        let b = Array.unsafe_get code (p + 3) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst (Array.unsafe_get v a lxor Array.unsafe_get v b)
        done;
        go (p + 4)
      | 12 ->
        let a = Array.unsafe_get code (p + 2) in
        let b = Array.unsafe_get code (p + 3) in
        let m = Array.unsafe_get code (p + 4) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          let s = Array.unsafe_get v b in
          Array.unsafe_set v dst
            (if s > Ast.max_width then 0 else Array.unsafe_get v a lsl s land m)
        done;
        go (p + 5)
      | 13 ->
        let a = Array.unsafe_get code (p + 2) in
        let b = Array.unsafe_get code (p + 3) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          let s = Array.unsafe_get v b in
          Array.unsafe_set v dst
            (if s > Ast.max_width then 0 else Array.unsafe_get v a lsr s)
        done;
        go (p + 4)
      | 14 ->
        let a = Array.unsafe_get code (p + 2) in
        let b = Array.unsafe_get code (p + 3) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst
            (if Array.unsafe_get v a = Array.unsafe_get v b then 1 else 0)
        done;
        go (p + 4)
      | 15 ->
        let a = Array.unsafe_get code (p + 2) in
        let b = Array.unsafe_get code (p + 3) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst
            (if Array.unsafe_get v a <> Array.unsafe_get v b then 1 else 0)
        done;
        go (p + 4)
      | 16 ->
        let a = Array.unsafe_get code (p + 2) in
        let b = Array.unsafe_get code (p + 3) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst
            (if Array.unsafe_get v a < Array.unsafe_get v b then 1 else 0)
        done;
        go (p + 4)
      | 17 ->
        let a = Array.unsafe_get code (p + 2) in
        let b = Array.unsafe_get code (p + 3) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst
            (if Array.unsafe_get v a <= Array.unsafe_get v b then 1 else 0)
        done;
        go (p + 4)
      | 18 ->
        let a = Array.unsafe_get code (p + 2) in
        let b = Array.unsafe_get code (p + 3) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst
            (if Array.unsafe_get v a > Array.unsafe_get v b then 1 else 0)
        done;
        go (p + 4)
      | 19 ->
        let a = Array.unsafe_get code (p + 2) in
        let b = Array.unsafe_get code (p + 3) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst
            (if Array.unsafe_get v a >= Array.unsafe_get v b then 1 else 0)
        done;
        go (p + 4)
      | 20 ->
        let a = Array.unsafe_get code (p + 2) in
        let m = Array.unsafe_get code (p + 3) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst (lnot (Array.unsafe_get v a) land m)
        done;
        go (p + 4)
      | 21 ->
        let a = Array.unsafe_get code (p + 2) in
        let m = Array.unsafe_get code (p + 3) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst (-Array.unsafe_get v a land m)
        done;
        go (p + 4)
      | 22 ->
        let a = Array.unsafe_get code (p + 2) in
        let m = Array.unsafe_get code (p + 3) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst (if Array.unsafe_get v a = m then 1 else 0)
        done;
        go (p + 4)
      | 23 ->
        let a = Array.unsafe_get code (p + 2) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst (if Array.unsafe_get v a <> 0 then 1 else 0)
        done;
        go (p + 3)
      | 24 ->
        let a = Array.unsafe_get code (p + 2) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst (parity 0 (Array.unsafe_get v a))
        done;
        go (p + 3)
      | 25 ->
        let a = Array.unsafe_get code (p + 2) in
        let lo = Array.unsafe_get code (p + 3) in
        let m = Array.unsafe_get code (p + 4) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst (Array.unsafe_get v a lsr lo land m)
        done;
        go (p + 5)
      | 26 ->
        let a = Array.unsafe_get code (p + 2) in
        let b = Array.unsafe_get code (p + 3) in
        let wb = Array.unsafe_get code (p + 4) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set v dst (Array.unsafe_get v a lsl wb lor Array.unsafe_get v b)
        done;
        go (p + 5)
      | 27 ->
        let mid = Array.unsafe_get code (p + 2) in
        let a = Array.unsafe_get code (p + 3) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          let arr = Array.unsafe_get (Array.unsafe_get lmems l) mid in
          Array.unsafe_set v dst
            (Array.unsafe_get arr (Array.unsafe_get v a mod Array.length arr))
        done;
        go (p + 4)
      | 28 ->
        let a = Array.unsafe_get code (p + 2) in
        for l = 0 to nl - 1 do
          Array.unsafe_set (Array.unsafe_get lstage l) dst
            (Array.unsafe_get (Array.unsafe_get lvals l) a)
        done;
        go (p + 3)
      | 29 ->
        let a = Array.unsafe_get code (p + 2) in
        let en = Array.unsafe_get code (p + 3) in
        let slot = Array.unsafe_get code (p + 4) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          Array.unsafe_set (Array.unsafe_get lstage l) dst
            (if Array.unsafe_get v en = 0 then Array.unsafe_get v slot
             else Array.unsafe_get v a)
        done;
        go (p + 5)
      | 30 ->
        let en = Array.unsafe_get code (p + 2) in
        let a = Array.unsafe_get code (p + 3) in
        let d = Array.unsafe_get code (p + 4) in
        let depth = Array.unsafe_get code (p + 5) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          if Array.unsafe_get v en <> 0 then begin
            Array.unsafe_set (Array.unsafe_get lfire l) dst true;
            let addr = Array.unsafe_get v a in
            if addr >= depth then Telemetry.incr t.bc_wrapped;
            Array.unsafe_set (Array.unsafe_get lidx l) dst (addr mod depth);
            Array.unsafe_set (Array.unsafe_get lval l) dst (Array.unsafe_get v d)
          end
          else Array.unsafe_set (Array.unsafe_get lfire l) dst false
        done;
        go (p + 6)
      | _ ->
        let mid = Array.unsafe_get code (p + 2) in
        let a = Array.unsafe_get code (p + 3) in
        let m = Array.unsafe_get code (p + 4) in
        for l = 0 to nl - 1 do
          let v = Array.unsafe_get lvals l in
          let arr = Array.unsafe_get (Array.unsafe_get lmems l) mid in
          Array.unsafe_set v dst
            (Array.unsafe_get arr (Array.unsafe_get v a land m))
        done;
        go (p + 5)
    end
  in
  go start

(* Lane 0's combinational pass — the scalar path, byte-identical to the
   pre-lane engine. *)
let eval_comb t = exec t ~lane:0 t.bc_code 0 (Array.length t.bc_code)

(* One full levelized combinational pass over EVERY lane in lockstep;
   with a single lane this is exactly the scalar [eval_comb]. *)
let eval_comb_all t =
  if Array.length t.bc_vals = 1 then eval_comb t
  else exec_all t t.bc_code 0 (Array.length t.bc_code)

(* One reverse sweep over the segments of every lane, replaying each
   assignment and reporting whether any destination changed — the
   bytecode counterpart of the closure engine's naive-fixpoint inner
   loop. *)
let fixpoint_sweep t =
  let changed = ref false in
  let segs = t.bc_segs in
  for lane = 0 to lanes t - 1 do
    let vals = t.bc_vals.(lane) in
    for i = Array.length segs - 1 downto 0 do
      let sg = Array.unsafe_get segs i in
      let before = vals.(sg.sg_dst) in
      exec t ~lane t.bc_code sg.sg_start sg.sg_stop;
      if vals.(sg.sg_dst) <> before then changed := true
    done
  done;
  !changed

let fixpoint_bound t = Array.length t.bc_segs + 2

(** Concatenates the segments of the given (levelized) cone names into
    one dedicated instruction stream over [lane]'s state; names without
    a segment (ports, registers) contribute nothing, exactly like the
    closure engine's cone evaluator skips names without an instruction. *)
let make_cone t ~lane names =
  check_lane t lane;
  let buf = buf_create () in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.bc_seg_by_name name with
      | None -> ()
      | Some i ->
        let sg = t.bc_segs.(i) in
        for p = sg.sg_start to sg.sg_stop - 1 do
          buf_push buf t.bc_code.(p)
        done)
    names;
  let code = buf_contents buf in
  let stop = Array.length code in
  fun () ->
    check_lane t lane;
    exec t ~lane code 0 stop

(* Commits lane [lane]'s staged memory writes and register updates. *)
let commit_lane t lane =
  let fire = t.bc_w_fire.(lane) in
  let w_mem = t.bc_w_mem.(lane) in
  let w_idx = t.bc_w_idx.(lane) in
  let w_val = t.bc_w_val.(lane) in
  for j = 0 to Array.length fire - 1 do
    if Array.unsafe_get fire j then
      (Array.unsafe_get w_mem j).(Array.unsafe_get w_idx j) <- Array.unsafe_get w_val j
  done;
  let regs = t.bc_reg_slots in
  let vals = t.bc_vals.(lane) in
  let staging = t.bc_staging.(lane) in
  for r = 0 to Array.length regs - 1 do
    Array.unsafe_set vals (Array.unsafe_get regs r) (Array.unsafe_get staging r)
  done

(** Runs the staging program over every lane, then commits each lane's
    memory writes and register updates — the bytecode counterpart of
    the closure engine's two-phase [step_seq] body (the caller advances
    the cycle counter). *)
let stage_and_commit_all t =
  let nl = Array.length t.bc_vals in
  if nl = 1 then begin
    exec t ~lane:0 t.bc_seq 0 (Array.length t.bc_seq);
    commit_lane t 0
  end
  else begin
    exec_all t t.bc_seq 0 (Array.length t.bc_seq);
    for lane = 0 to nl - 1 do
      commit_lane t lane
    done
  end

let name = "bytecode"

(* ------------------------------------------------------------------ *)
(* Static profiling facts                                              *)
(* ------------------------------------------------------------------ *)

(* Encoded length (opcode word included) per opcode — the stride table
   the histogram walker uses.  Must track the encodings at the top of
   this file; profile_tests pins it against hand-assembled designs. *)
let op_len =
  [|
    3 (* const *); 3 (* mov *); 4 (* mask *); 5 (* mux *); 5 (* add *);
    5 (* sub *); 5 (* mul *); 4 (* div *); 4 (* rem *); 4 (* and *);
    4 (* or *); 4 (* xor *); 5 (* shl *); 4 (* shr *); 4 (* eq *);
    4 (* neq *); 4 (* lt *); 4 (* le *); 4 (* gt *); 4 (* ge *);
    4 (* not *); 4 (* neg *); 4 (* andr *); 3 (* orr *); 3 (* xorr *);
    5 (* bits *); 5 (* cat *); 4 (* read *); 3 (* stage *);
    5 (* stage_en *); 6 (* wstage *); 5 (* read_p2 *);
  |]

(* The opcode-class names the profiler reports, in report order. *)
let class_names =
  [ "mov"; "mux"; "arith"; "logic"; "cmp"; "reduce"; "bits"; "mem"; "state" ]

let op_class op =
  if op = op_const || op = op_mov || op = op_mask then "mov"
  else if op = op_mux then "mux"
  else if op >= op_add && op <= op_rem then "arith"
  else if (op >= op_and && op <= op_shr) || op = op_not || op = op_neg then "logic"
  else if op >= op_eq && op <= op_ge then "cmp"
  else if op >= op_andr && op <= op_xorr then "reduce"
  else if op = op_bits || op = op_cat then "bits"
  else if op = op_read || op = op_read_p2 then "mem"
  else "state"

(* Walks [code.(start, stop)] by instruction, tallying per class. *)
let hist_into counts code start stop =
  let n = ref 0 in
  let p = ref start in
  while !p < stop do
    let op = code.(!p) in
    incr n;
    (match Hashtbl.find_opt counts (op_class op) with
    | Some r -> incr r
    | None -> Hashtbl.add counts (op_class op) (ref 1));
    p := !p + op_len.(op)
  done;
  !n

let hist_list counts =
  List.filter_map
    (fun c -> Option.map (fun r -> (c, !r)) (Hashtbl.find_opt counts c))
    class_names

let hist_range code start stop =
  let counts = Hashtbl.create 8 in
  ignore (hist_into counts code start stop);
  hist_list counts

(** Static opcode-class histogram of one combinational pass. *)
let comb_class_hist t = hist_range t.bc_code 0 (Array.length t.bc_code)

(** Static opcode-class histogram of one sequential staging step. *)
let seq_class_hist t = hist_range t.bc_seq 0 (Array.length t.bc_seq)

(** Static profile of a cone built from [names]: its instruction count
    and opcode-class histogram — what one [make_cone] eval retires. *)
let cone_profile t names =
  let counts = Hashtbl.create 8 in
  let n =
    List.fold_left
      (fun acc name ->
        match Hashtbl.find_opt t.bc_seg_by_name name with
        | None -> acc
        | Some i ->
          let sg = t.bc_segs.(i) in
          acc + hist_into counts t.bc_code sg.sg_start sg.sg_stop)
      0 names
  in
  (n, hist_list counts)
