(** Compiled bytecode evaluation engine: levelized combinational
    assignments, register updates and memory writes lowered into flat
    int-array instruction streams (opcode + operand slot indices over
    the simulator's shared value array) executed by a tight dispatch
    loop — no closures, no allocation per cycle.

    The compiler tracks a conservative "natural mask" per produced
    value to skip redundant masking; the emitted semantics are
    bit-exact with the closure engine in [Sim], including wrap-around
    masking, division-by-zero yielding 0, oversized shifts yielding 0,
    and raw (unmasked) literal and memory values. *)

exception Error of string

type t

(** Lowers [flat] (levelized by [analysis]) against the simulator's
    slot table and memory backing arrays.  [live] filters which driven
    names get a combinational segment (default: all).  [wrapped] is
    bumped once per out-of-range memory write address. *)
val compile :
  flat:Firrtl.Ast.module_def ->
  analysis:Firrtl.Analysis.t ->
  slots:(string, int) Hashtbl.t ->
  widths:int array ->
  mems:(string, int array) Hashtbl.t ->
  mem_widths:(string, int) Hashtbl.t ->
  ?live:(string -> bool) ->
  wrapped:Telemetry.counter ->
  unit ->
  t

val n_named : t -> int

(** Expression temporaries needed above the named and literal-pool
    slots (the maximum over any single assignment — temporaries are
    segment-local). *)
val n_temps : t -> int

(** [n_named] + literal-pool size + [n_temps]: the value array size
    the program requires. *)
val n_slots : t -> int

val n_comb_instrs : t -> int
val n_seq_instrs : t -> int

(** Number of combinational assignments (levelized segments). *)
val n_segments : t -> int

(** Per register (statement order): its value-array slot. *)
val reg_slots : t -> int array

(** Attaches the value array the program executes over; named slots
    must occupy the first [n_named] entries.  Writes the literal pool
    into its slots (directly above the named ones). *)
val bind : t -> int array -> unit

(** One full levelized combinational pass. *)
val eval_comb : t -> unit

(** One reverse sweep over all segments; [true] if any destination
    changed (the naive-fixpoint ablation's inner loop). *)
val fixpoint_sweep : t -> bool

(** Concatenates the segments of the given (levelized) cone names into
    one dedicated instruction stream; names without a segment (ports,
    registers) contribute nothing. *)
val make_cone : t -> string list -> unit -> unit

(** Runs the staging program, then commits memory writes and register
    updates (two-phase; the caller advances the cycle counter). *)
val stage_and_commit_seq : t -> unit
