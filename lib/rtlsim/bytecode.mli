(** Compiled bytecode evaluation engine: levelized combinational
    assignments, register updates and memory writes lowered into flat
    int-array instruction streams (opcode + operand slot indices over
    the simulator's shared value array) executed by a tight dispatch
    loop — no closures, no allocation per cycle.

    A compiled program can drive N independent copies of the design in
    lockstep (structure of arrays): ONE instruction stream, N value
    arrays, N memory images, N staging buffers.  Lane 0 is the scalar
    lane — with a single lane every operation takes the exact code path
    the scalar engine always had — and the vectorized dispatch loop
    decodes each instruction once for all lanes, amortizing dispatch
    and operand fetch over the lane count.

    The compiler tracks a conservative "natural mask" per produced
    value to skip redundant masking; the emitted semantics are
    bit-exact with the closure engine in [Sim], including wrap-around
    masking, division-by-zero yielding 0, oversized shifts yielding 0,
    and raw (unmasked) literal and memory values. *)

exception Error of string

type t

(** Lowers [flat] (levelized by [analysis]) against the simulator's
    slot table and memory backing arrays.  [live] filters which driven
    names get a combinational segment (default: all).  [wrapped] is
    bumped once per out-of-range memory write address (per lane).  The
    program starts with a single lane whose memory images alias the
    given backing arrays; the compiled instruction streams do not
    depend on the lane count. *)
val compile :
  flat:Firrtl.Ast.module_def ->
  analysis:Firrtl.Analysis.t ->
  slots:(string, int) Hashtbl.t ->
  widths:int array ->
  mems:(string, int array) Hashtbl.t ->
  mem_widths:(string, int) Hashtbl.t ->
  ?live:(string -> bool) ->
  wrapped:Telemetry.counter ->
  unit ->
  t

(** Program and lane facts, in one place so growing the engine does not
    grow a getter zoo: [named] is the named-slot count, [temps] the
    expression temporaries needed above the named and literal-pool
    slots (segment-local maximum), [slots] the full value-array size a
    lane requires ([named] + pool + [temps]), [comb_instrs] /
    [seq_instrs] the two stream lengths, [segments] the number of
    combinational assignments, and [lanes] the current lane count. *)
type stats = {
  named : int;
  temps : int;
  slots : int;
  comb_instrs : int;
  seq_instrs : int;
  segments : int;
  lanes : int;
}

val stats : t -> stats

(** Engine identity ("bytecode"). *)
val name : string

(** Current lane count (1 until {!set_lanes}). *)
val lanes : t -> int

(** Order-sensitive hash over both compiled instruction streams; equal
    across any two programs whose streams are identical (used to check
    lane-count independence of compilation). *)
val program_hash : t -> int

(** Per register (statement order): its value-array slot. *)
val reg_slots : t -> int array

(** Grows (or shrinks) the program to [n] lanes.  Existing lanes keep
    their state; fresh lanes get zeroed memory images and staging
    buffers and must be {!bind_lane}d before execution. *)
val set_lanes : t -> int -> unit

(** Attaches the value array lane 0 executes over; named slots must
    occupy the first [stats.named] entries.  Writes the literal pool
    into its slots (directly above the named ones). *)
val bind : t -> int array -> unit

(** {!bind} for an arbitrary lane. *)
val bind_lane : t -> int -> int array -> unit

(** Lane [lane]'s image of the named memory (lane 0 aliases the
    simulator's own backing array) — the per-lane peek/poke view. *)
val lane_mem : t -> lane:int -> string -> int array

(** One full levelized combinational pass over lane 0 (the scalar
    path). *)
val eval_comb : t -> unit

(** One full levelized combinational pass over EVERY lane in lockstep;
    with a single lane this is exactly {!eval_comb}. *)
val eval_comb_all : t -> unit

(** One reverse sweep over all segments of every lane; [true] if any
    destination changed (the naive-fixpoint ablation's inner loop). *)
val fixpoint_sweep : t -> bool

(** Sweep-count bound past which the fixpoint cannot still be
    converging. *)
val fixpoint_bound : t -> int

(** Concatenates the segments of the given (levelized) cone names into
    one dedicated instruction stream over [lane]'s state; names without
    a segment (ports, registers) contribute nothing. *)
val make_cone : t -> lane:int -> string list -> unit -> unit

(** Runs the staging program over every lane, then commits each lane's
    memory writes and register updates (two-phase; the caller advances
    the cycle counter). *)
val stage_and_commit_all : t -> unit

(** {1 Static profiling facts}

    The compiled streams are straight-line, so per-opcode-class retired
    counts are a pure function of the program: histogram x executions.
    These walkers give the profiler the static side. *)

(** The opcode-class names the histograms use, in report order. *)
val class_names : string list

(** Opcode-class histogram of one combinational pass. *)
val comb_class_hist : t -> (string * int) list

(** Opcode-class histogram of one sequential staging step. *)
val seq_class_hist : t -> (string * int) list

(** Instruction count and opcode-class histogram of the cone the given
    names resolve to — the static work of one cone eval. *)
val cone_profile : t -> string list -> int * (string * int) list
