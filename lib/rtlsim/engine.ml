(* The one evaluation-engine interface every [Rtlsim] engine
   implements.  [Sim] packs an engine as a first-class module together
   with its state, so the simulator front-end (slot assignment,
   levelization, two-phase cycle structure, snapshots) is written once
   against this signature and "how many lanes" is a property OF the
   engine rather than something callers emulate with N independent
   simulators.

   Contract:
   - [lanes] is fixed for the lifetime of the packed state (the
     simulator sizes its per-lane views at creation).
   - [eval_comb_all] and [stage_and_commit_all] advance EVERY lane in
     lockstep; engines that only support one lane simply have
     [lanes _ = 1].
   - [fixpoint_sweep] is one reverse sweep over all combinational
     assignments of every lane, returning whether anything changed;
     [fixpoint_bound] is the sweep count past which non-convergence is
     a combinational cycle, not slow convergence.
   - [make_cone] pre-compiles evaluation of just the given (levelized)
     cone names over one lane's state; names the engine has no
     combinational assignment for (ports, registers) contribute
     nothing. *)

module type S = sig
  type t

  val name : string
  val lanes : t -> int
  val eval_comb_all : t -> unit
  val fixpoint_sweep : t -> bool
  val fixpoint_bound : t -> int
  val stage_and_commit_all : t -> unit
  val make_cone : t -> lane:int -> string list -> unit -> unit

  (* Static profiling facts: opcode-class histograms of one
     combinational pass / sequential step, and the instruction count +
     histogram of one eval of the cone the given names resolve to. *)
  val comb_class_hist : t -> (string * int) list
  val seq_class_hist : t -> (string * int) list
  val cone_profile : t -> string list -> int * (string * int) list
end

(** An engine packed with its state: what [Sim] dispatches through. *)
type packed = Packed : (module S with type t = 'e) * 'e -> packed

let eval_comb_all (Packed ((module E), e)) = E.eval_comb_all e
let fixpoint_sweep (Packed ((module E), e)) = E.fixpoint_sweep e
let fixpoint_bound (Packed ((module E), e)) = E.fixpoint_bound e
let stage_and_commit_all (Packed ((module E), e)) = E.stage_and_commit_all e
let make_cone (Packed ((module E), e)) ~lane names = E.make_cone e ~lane names
let lanes (Packed ((module E), e)) = E.lanes e
let name (Packed ((module E), _)) = E.name
let comb_class_hist (Packed ((module E), e)) = E.comb_class_hist e
let seq_class_hist (Packed ((module E), e)) = E.seq_class_hist e
let cone_profile (Packed ((module E), e)) names = E.cone_profile e names
