(* Value Change Dump writer: records selected signals of a simulation
   into the standard VCD format so partitioned-simulation debug sessions
   can be inspected in GTKWave & co.  Only changes are emitted; call
   {!sample} once per target cycle after evaluation. *)

type signal = {
  sg_name : string;
  sg_id : string;
  sg_width : int;
  mutable sg_last : int;
}

type t = {
  buf : Buffer.t;
  sim : Sim.t;
  signals : signal list;
  mutable header_done : bool;
  mutable samples : int;
}

(* VCD identifier characters: printable ASCII '!'..'~'. *)
let ident n =
  let base = 94 in
  let rec go n acc =
    let c = Char.chr (33 + (n mod base)) in
    let acc = String.make 1 c ^ acc in
    if n < base then acc else go ((n / base) - 1) acc
  in
  go n ""

let width_of_signal sim name =
  let i = Hashtbl.find sim.Sim.slots name in
  sim.Sim.widths.(i)

let create sim ~signals =
  let signals =
    List.mapi
      (fun i name ->
        { sg_name = name; sg_id = ident i; sg_width = width_of_signal sim name; sg_last = -1 })
      signals
  in
  { buf = Buffer.create 4096; sim; signals; header_done = false; samples = 0 }

let sanitize name =
  String.map (fun c -> if c = '$' || c = '.' || c = '#' then '_' else c) name

let write_header t =
  Buffer.add_string t.buf "$version fireaxe rtlsim $end\n";
  Buffer.add_string t.buf "$timescale 1ns $end\n";
  Buffer.add_string t.buf "$scope module top $end\n";
  List.iter
    (fun sg ->
      Buffer.add_string t.buf
        (Printf.sprintf "$var wire %d %s %s $end\n" sg.sg_width sg.sg_id (sanitize sg.sg_name)))
    t.signals;
  Buffer.add_string t.buf "$upscope $end\n$enddefinitions $end\n";
  t.header_done <- true

let binary_of v width =
  String.init width (fun i ->
      if v land (1 lsl (width - 1 - i)) <> 0 then '1' else '0')

(** Records the current values (call after [eval_comb]); emits only the
    signals that changed since the previous sample. *)
let sample t =
  if not t.header_done then write_header t;
  let changes =
    List.filter
      (fun sg ->
        let v = Sim.get t.sim sg.sg_name in
        v <> sg.sg_last)
      t.signals
  in
  if changes <> [] || t.samples = 0 then begin
    Buffer.add_string t.buf (Printf.sprintf "#%d\n" t.samples);
    List.iter
      (fun sg ->
        let v = Sim.get t.sim sg.sg_name in
        sg.sg_last <- v;
        if sg.sg_width = 1 then
          Buffer.add_string t.buf (Printf.sprintf "%d%s\n" v sg.sg_id)
        else
          Buffer.add_string t.buf
            (Printf.sprintf "b%s %s\n" (binary_of v sg.sg_width) sg.sg_id))
      (if t.samples = 0 then t.signals else changes)
  end;
  t.samples <- t.samples + 1

let contents t =
  if not t.header_done then write_header t;
  Buffer.contents t.buf

let save t ~path =
  let oc = open_out path in
  output_string oc (contents t);
  close_out oc

(* A general VCD document builder, decoupled from any one simulation:
   callers declare an arbitrary scope tree of variables, then feed
   timestamped value changes from wherever the values live (a local
   simulator, a worker pipe, an LI-BDN channel queue).  Change dedup is
   per variable; a timestamp line is only emitted once a change at that
   time actually survives dedup, so two writers fed identical values
   produce identical bytes regardless of how often they were told the
   time. *)
module Writer = struct
  type var = { w_id : string; w_width : int; mutable w_last : int }

  type t = {
    w_buf : Buffer.t;
    mutable w_vars : int;  (* ids handed out so far *)
    mutable w_defs_done : bool;
    mutable w_pending : int option;  (* timestamp awaiting its first change *)
    mutable w_time : int;  (* last timestamp actually emitted *)
  }

  let create ?(version = "fireaxe rtlsim") () =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (Printf.sprintf "$version %s $end\n" version);
    Buffer.add_string buf "$timescale 1ns $end\n";
    { w_buf = buf; w_vars = 0; w_defs_done = false; w_pending = None; w_time = -1 }

  let scope t name =
    if t.w_defs_done then invalid_arg "Vcd.Writer.scope: definitions closed";
    Buffer.add_string t.w_buf
      (Printf.sprintf "$scope module %s $end\n" (sanitize name))

  let upscope t =
    if t.w_defs_done then invalid_arg "Vcd.Writer.upscope: definitions closed";
    Buffer.add_string t.w_buf "$upscope $end\n"

  let var t ~name ~width =
    if t.w_defs_done then invalid_arg "Vcd.Writer.var: definitions closed";
    let id = ident t.w_vars in
    t.w_vars <- t.w_vars + 1;
    Buffer.add_string t.w_buf
      (Printf.sprintf "$var wire %d %s %s $end\n" width id (sanitize name));
    { w_id = id; w_width = width; w_last = min_int }

  let enddefs t =
    if not t.w_defs_done then begin
      Buffer.add_string t.w_buf "$enddefinitions $end\n";
      t.w_defs_done <- true
    end

  let time t n =
    enddefs t;
    if n < t.w_time then
      invalid_arg
        (Printf.sprintf "Vcd.Writer.time: %d after %d (timestamps must be monotone)"
           n t.w_time);
    if n > t.w_time then t.w_pending <- Some n

  let change t v value =
    enddefs t;
    if value <> v.w_last then begin
      (match t.w_pending with
      | Some n ->
        Buffer.add_string t.w_buf (Printf.sprintf "#%d\n" n);
        t.w_time <- n;
        t.w_pending <- None
      | None -> ());
      v.w_last <- value;
      if v.w_width = 1 then
        Buffer.add_string t.w_buf (Printf.sprintf "%d%s\n" (value land 1) v.w_id)
      else
        Buffer.add_string t.w_buf
          (Printf.sprintf "b%s %s\n" (binary_of value v.w_width) v.w_id)
    end

  let contents t =
    enddefs t;
    Buffer.contents t.w_buf

  let save t ~path =
    let oc = open_out path in
    output_string oc (contents t);
    close_out oc
end
