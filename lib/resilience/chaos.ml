(* Seeded fault injection: kill schedules, signal helpers, checkpoint
   corruption.  Everything is a pure function of the seed. *)

type kill = { at : int; victim : int }

type t = {
  c_seed : int;
  mutable c_kills : kill list;  (** soonest first *)
}

let plan ~seed ~cycles ~n_victims ?(kills = 1) () =
  let rng = Des.Stats.rng ~seed in
  let lo = max 1 (cycles / 10) in
  let hi = max (lo + 1) (cycles * 9 / 10) in
  let ks =
    List.init kills (fun _ ->
        {
          at = lo + Des.Stats.int rng (hi - lo);
          victim = (if n_victims <= 0 then 0 else Des.Stats.int rng n_victims);
        })
    |> List.sort_uniq (fun a b -> compare (a.at, a.victim) (b.at, b.victim))
  in
  { c_seed = seed; c_kills = ks }

let seed t = t.c_seed
let pending t = t.c_kills

let next_kill t ~upto =
  match t.c_kills with
  | k :: rest when k.at <= upto ->
    t.c_kills <- rest;
    Some k
  | _ -> None

let signal_quietly pid s = try Unix.kill pid s with Unix.Unix_error _ -> ()
let sigkill pid = signal_quietly pid Sys.sigkill
let sigstop pid = signal_quietly pid Sys.sigstop
let sigcont pid = signal_quietly pid Sys.sigcont

let corrupt_file ?(seed = 0) path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  if n > 0 then begin
    let rng = Des.Stats.rng ~seed in
    let off = Des.Stats.int rng n in
    let bytes = Bytes.of_string text in
    Bytes.set bytes off (Char.chr (Char.code (Bytes.get bytes off) lxor 0x5a));
    let oc = open_out_bin path in
    output_bytes oc bytes;
    close_out oc
  end

let truncate_file path ~keep =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub text 0 (min keep n));
  close_out oc
