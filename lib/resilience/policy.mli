(** Restart policy for supervised workers: how many consecutive
    failures to tolerate, and how long to back off between respawn
    attempts (exponential, capped). *)

type t = {
  max_restarts : int;  (** consecutive failures tolerated before giving up *)
  backoff_ms : int;  (** delay before the first respawn attempt *)
  backoff_factor : float;  (** growth per consecutive failure *)
  backoff_max_ms : int;  (** backoff ceiling *)
}

(** 5 restarts, 25 ms initial backoff, doubling, capped at 2 s. *)
val default : t

(** The backoff before respawn attempt [attempt] (1-based), in
    milliseconds: [backoff_ms * factor^(attempt-1)], capped. *)
val delay_ms : t -> attempt:int -> int

(** Sleeps that many milliseconds (no-op for [ms <= 0]). *)
val sleep_ms : int -> unit
