(** Supervised execution of a partitioned simulation: periodic durable
    checkpoints ({!Bundle}), worker crash detection, respawn under a
    {!Policy}, and rollback of the {e whole} network — survivors
    included — to the last restorable checkpoint.

    The supervisor advances the simulation in checkpoint-interval
    chunks.  When a worker dies mid-chunk
    ({!Libdn.Remote_engine.Worker_died}, from an exit, a SIGKILL, or a
    read timeout), it respawns every dead worker behind its existing
    connection, restores the newest valid bundle (walking to older
    bundles past corrupted ones), and re-runs the chunk.  Consecutive
    failures beyond the policy's budget raise {!Gave_up}.

    Telemetry (through the handle's sink): [resilience.<label>.restarts]
    counters, [resilience.checkpoints], [resilience.checkpoint_us] and
    [resilience.recovery_us] histograms. *)

type t

type event =
  | Checkpointed of { cycle : int; path : string }
  | Worker_down of { label : string; status : string }
  | Restarted of { unit_index : int; label : string; attempt : int }
  | Rolled_back of { to_cycle : int; path : string }
  | Skipped_bundle of { path : string; reason : string }
      (** a corrupted/unreadable bundle was passed over during recovery *)

exception Gave_up of { label : string; attempts : int }
(** The restart budget ({!Policy.max_restarts} consecutive failures)
    is exhausted. *)

exception Recovery_failed of string
(** A worker died but no checkpoint could be restored (no directory
    configured, or every bundle rejected). *)

(** Wraps an instantiated handle (local or remote units alike).
    [checkpoint_dir] enables durable checkpoints every [every] target
    cycles (default 1000); without it a crash is unrecoverable and
    checkpointing costs nothing.  [chaos] injects the given kill
    schedule — for tests and smoke runs.  [on_event] observes the
    recovery lifecycle (default: ignore).  [worker] is the worker
    binary used to respawn dead partitions. *)
val create :
  ?checkpoint_dir:string ->
  ?every:int ->
  ?policy:Policy.t ->
  ?chaos:Chaos.t ->
  ?on_event:(event -> unit) ->
  worker:string ->
  Fireripper.Runtime.handle ->
  t

val handle : t -> Fireripper.Runtime.handle

(** Total worker respawns performed so far. *)
val restarts : t -> int

(** Runs to target cycle [cycles] (absolute, like
    {!Fireripper.Runtime.run}), checkpointing every interval and
    recovering from worker deaths along the way.  Ensures one bundle
    exists before the first chunk so recovery always has a floor. *)
val run : t -> cycles:int -> unit

(** Takes a checkpoint right now; [None] without a checkpoint dir. *)
val checkpoint : t -> string option

(** Runs the full death-recovery path for a crash observed {e outside}
    {!run} — e.g. a {!Libdn.Remote_engine.Worker_died} raised by an
    out-of-band read such as a waveform sample: emits [Worker_down],
    charges the restart budget (raising {!Gave_up} past it), respawns
    dead workers and rolls the network back to the newest restorable
    bundle.  The caller then re-advances with {!run}. *)
val heal : t -> label:string -> status:string -> unit

(** Closes every remote worker connection (bounded, idempotent). *)
val close : t -> unit

(** Restores the newest restorable bundle under [dir] into [handle],
    skipping corrupted ones; [Some cycle] on success, [None] when the
    directory holds no bundle at all.  Raises {!Bundle.Bundle_error}
    when bundles exist but none restores. *)
val resume : dir:string -> Fireripper.Runtime.handle -> int option
