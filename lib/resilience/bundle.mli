(** Durable whole-simulation checkpoint bundles.

    A bundle is one directory under the checkpoint dir:

    {v
    <dir>/ckpt-000000000042/
      MANIFEST        versioned JSON: schema, design hash, plan
                      fingerprint, cycle, scheduler, mode, unit names,
                      per-file byte counts and checksums
      unit-<k>.state  one architectural-state blob per partition
                      (remote partitions included, read over the pipe)
      network.state   LI-BDN channel queues / fired flags / cycles
    v}

    Writes are atomic: everything lands in a hidden temp directory that
    is [rename]d into place only once complete, so a crash mid-write
    never leaves a half-bundle behind with a valid name.  Restores
    verify the manifest schema, design hash, plan fingerprint, and
    every blob's size and checksum {e before} touching any simulation
    state — a truncated or corrupted bundle is rejected with
    {!Bundle_error}, never silently resumed from. *)

exception Bundle_error of string

(** Manifest schema tag written and required: ["fireaxe-checkpoint-1"]. *)
val schema : string

(** FNV-1a 64-bit hash (hex) of the plan's original circuit text —
    ties a bundle to the exact design it was taken from. *)
val design_hash : Fireripper.Plan.t -> string

(** FNV-1a 64-bit hash (hex) of the plan's partitioning: mode, unit
    names, and full channelization.  A bundle restores only into a
    handle whose plan fingerprints identically. *)
val plan_fingerprint : Fireripper.Plan.t -> string

(** Captures the whole simulation behind [handle] into a fresh bundle
    under [dir] (created if missing), named after the current target
    cycle.  An existing same-cycle bundle is replaced atomically.
    Returns the bundle path. *)
val save : dir:string -> Fireripper.Runtime.handle -> string

(** Restores the bundle at [path] into [handle] (same plan, any
    scheduler): every unit's state — over the worker pipe for remote
    units — plus the network's in-flight state.  Returns the bundle's
    target cycle.  Raises {!Bundle_error} on any validation failure. *)
val restore : path:string -> Fireripper.Runtime.handle -> int

(** Bundles under [dir] as [(cycle, path)], cycle-ascending.  Missing
    directory is an empty list; non-bundle entries are ignored. *)
val list_bundles : dir:string -> (int * string) list

(** The highest-cycle bundle under [dir], if any. *)
val latest : dir:string -> (int * string) option

(** The parsed+validated manifest of the bundle at [path], as JSON
    (tests and the CLI use it for introspection).  Raises
    {!Bundle_error} when unreadable or the wrong schema. *)
val manifest : path:string -> Telemetry.Json.t

(** {1 Session bundles}

    The simulation service's per-tenant checkpoints: one monolithic
    session's design text + architectural state, keyed by session id
    under [<dir>/session-<id>/ckpt-<cycle>].  The design source rides
    inside the bundle, so eviction and resume (and server restarts)
    never need the client to re-ship the circuit.  Same atomic-write /
    validate-everything-before-restore discipline as whole-network
    bundles. *)

(** Manifest schema tag of session bundles: ["fireaxe-session-1"]. *)
val session_schema : string

(** FNV-1a 64-bit hash (hex) of arbitrary text — the design-hash used
    to key the service's compile cache and pack groups. *)
val hash_text : string -> string

type session_ckpt = {
  sc_id : string;
  sc_engine : string;  (** evaluation-engine name *)
  sc_cycle : int;
  sc_design_hash : string;
  sc_design : string;  (** full circuit text *)
  sc_state : string;  (** {!Rtlsim.Sim.state_to_string} text *)
}

(** Writes one session bundle (atomically; an existing same-cycle
    bundle is replaced) and returns its path.  Session ids must match
    [[A-Za-z0-9_-]+] — they become directory names. *)
val save_session :
  dir:string ->
  id:string ->
  engine:string ->
  design:string ->
  cycle:int ->
  state:string ->
  string

(** Reads and fully validates the session bundle at [path].  Raises
    {!Bundle_error} on any schema, size or checksum mismatch. *)
val load_session : path:string -> session_ckpt

(** A session's bundles as [(cycle, path)], cycle-ascending. *)
val session_bundles : dir:string -> id:string -> (int * string) list

(** The session's highest-cycle bundle, if any. *)
val session_latest : dir:string -> id:string -> (int * string) option

(** Every session with at least one bundle under [dir], as
    [(id, latest cycle, latest path)], id-ascending. *)
val session_list : dir:string -> (string * int * string) list
