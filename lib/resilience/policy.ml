(* Restart policy: bounded consecutive failures, exponential backoff. *)

type t = {
  max_restarts : int;
  backoff_ms : int;
  backoff_factor : float;
  backoff_max_ms : int;
}

let default = { max_restarts = 5; backoff_ms = 25; backoff_factor = 2.0; backoff_max_ms = 2_000 }

let delay_ms t ~attempt =
  if attempt <= 1 then min t.backoff_ms t.backoff_max_ms
  else begin
    let raw =
      float_of_int t.backoff_ms *. (t.backoff_factor ** float_of_int (attempt - 1))
    in
    let capped = Float.min raw (float_of_int t.backoff_max_ms) in
    int_of_float capped
  end

let sleep_ms ms = if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.)
