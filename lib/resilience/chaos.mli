(** Deterministic fault injection for crash-recovery testing.

    A chaos plan is derived from one integer seed via the DES
    splitmix PRNG ({!Des.Stats.rng}), so the same seed always produces
    the same kill schedule — the property that lets a test (or a CI
    smoke run) assert bit-exact recovery against a reference run. *)

type t

(** A kill event: at target cycle [at], SIGKILL victim [victim] —
    an index into the supervised handle's remote-connection list. *)
type kill = { at : int; victim : int }

(** Derives a kill schedule for a run of [cycles] target cycles over
    [n_victims] remote workers: [kills] (default 1) SIGKILLs at
    distinct pseudo-random cycles inside the middle 80% of the run.
    Same seed, same schedule. *)
val plan : seed:int -> cycles:int -> n_victims:int -> ?kills:int -> unit -> t

val seed : t -> int

(** The remaining schedule, soonest first. *)
val pending : t -> kill list

(** Pops the next kill due at or before cycle [upto], if any. *)
val next_kill : t -> upto:int -> kill option

(** Signal helpers that never raise (the process may already be gone). *)
val sigkill : int -> unit

val sigstop : int -> unit
val sigcont : int -> unit

(** Flips one byte of the file (offset chosen from [seed], default 0) —
    checkpoint-corruption injection for bundle validation tests. *)
val corrupt_file : ?seed:int -> string -> unit

(** Truncates the file to its first [keep] bytes. *)
val truncate_file : string -> keep:int -> unit
