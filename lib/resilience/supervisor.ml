(* Supervised simulation: chunked advance with periodic durable
   checkpoints; on a worker death, respawn + whole-network rollback to
   the newest restorable bundle, bounded by the restart policy. *)

type event =
  | Checkpointed of { cycle : int; path : string }
  | Worker_down of { label : string; status : string }
  | Restarted of { unit_index : int; label : string; attempt : int }
  | Rolled_back of { to_cycle : int; path : string }
  | Skipped_bundle of { path : string; reason : string }

exception Gave_up of { label : string; attempts : int }
exception Recovery_failed of string

let () =
  Printexc.register_printer (function
    | Gave_up { label; attempts } ->
      Some
        (Printf.sprintf
           "supervisor: gave up on partition %S after %d consecutive failures" label
           attempts)
    | Recovery_failed m -> Some ("supervisor: recovery failed: " ^ m)
    | _ -> None)

type t = {
  sv_handle : Fireripper.Runtime.handle;
  sv_worker : string;
  sv_dir : string option;
  sv_every : int;
  sv_policy : Policy.t;
  sv_chaos : Chaos.t option;
  sv_on_event : event -> unit;
  sv_tel : Telemetry.t;
  sv_ckpts : Telemetry.counter;
  sv_ckpt_us : Telemetry.hist;
  sv_recovery_us : Telemetry.hist;
  mutable sv_restarts : int;  (** total respawns over the supervisor's life *)
  mutable sv_consecutive : int;  (** failures since the last completed chunk *)
  mutable sv_last_ckpt : int;  (** cycle of the newest bundle this supervisor wrote *)
  mutable sv_floored : bool;  (** the recovery-floor bundle check already ran *)
}

let create ?checkpoint_dir ?(every = 1000) ?(policy = Policy.default) ?chaos
    ?(on_event = ignore) ~worker h =
  if every <= 0 then invalid_arg "Supervisor.create: every must be positive";
  let tel = Fireripper.Runtime.telemetry h in
  {
    sv_handle = h;
    sv_worker = worker;
    sv_dir = checkpoint_dir;
    sv_every = every;
    sv_policy = policy;
    sv_chaos = chaos;
    sv_on_event = on_event;
    sv_tel = tel;
    sv_ckpts = Telemetry.counter tel "resilience.checkpoints";
    sv_ckpt_us = Telemetry.hist tel "resilience.checkpoint_us";
    sv_recovery_us = Telemetry.hist tel "resilience.recovery_us";
    sv_restarts = 0;
    sv_consecutive = 0;
    sv_last_ckpt = 0;
    sv_floored = false;
  }

let handle t = t.sv_handle
let restarts t = t.sv_restarts
let cycle0 t = Fireripper.Runtime.cycle t.sv_handle 0

let checkpoint t =
  match t.sv_dir with
  | None -> None
  | Some dir ->
    let t0 = Unix.gettimeofday () in
    let path = Bundle.save ~dir t.sv_handle in
    Telemetry.observe t.sv_ckpt_us
      (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
    Telemetry.incr t.sv_ckpts;
    t.sv_last_ckpt <- cycle0 t;
    t.sv_on_event (Checkpointed { cycle = cycle0 t; path });
    Some path

(* Restore walk shared by in-flight recovery and cold-start resume:
   newest bundle first, older ones past corruption. *)
let restore_newest ~dir ~on_skip h =
  let rec go last_err = function
    | [] -> (
      match last_err with
      | Some e -> raise e
      | None -> raise (Recovery_failed "checkpoint directory holds no bundle"))
    | (_, path) :: older -> (
      match Bundle.restore ~path h with
      | cycle -> (cycle, path)
      | exception (Bundle.Bundle_error reason as e) ->
        on_skip path reason;
        go (Some e) older)
  in
  go None (List.rev (Bundle.list_bundles ~dir))

(* Respawn every dead remote worker behind its existing connection,
   then roll the whole network back to the newest restorable bundle. *)
let recover t =
  let t0 = Unix.gettimeofday () in
  let h = t.sv_handle in
  List.iter
    (fun (k, conn) ->
      if not (Libdn.Remote_engine.is_alive conn) then begin
        Fireripper.Runtime.respawn_remote h k ~worker:t.sv_worker;
        t.sv_restarts <- t.sv_restarts + 1;
        let label = Libdn.Remote_engine.label conn in
        Telemetry.incr
          (Telemetry.counter t.sv_tel (Printf.sprintf "resilience.%s.restarts" label));
        t.sv_on_event (Restarted { unit_index = k; label; attempt = t.sv_consecutive })
      end)
    (Fireripper.Runtime.remote_conns h);
  (match t.sv_dir with
  | None ->
    raise (Recovery_failed "no checkpoint directory configured; cannot roll back")
  | Some dir ->
    let to_cycle, path =
      restore_newest ~dir h ~on_skip:(fun path reason ->
          t.sv_on_event (Skipped_bundle { path; reason }))
    in
    t.sv_on_event (Rolled_back { to_cycle; path }));
  Telemetry.observe t.sv_recovery_us
    (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6))

(* Also exposed as [heal]: the same path serves crashes observed
   outside [run], e.g. during an out-of-band waveform sample. *)
let on_death t ~label ~status =
  t.sv_on_event (Worker_down { label; status });
  t.sv_consecutive <- t.sv_consecutive + 1;
  if t.sv_consecutive > t.sv_policy.Policy.max_restarts then
    raise (Gave_up { label; attempts = t.sv_consecutive });
  Policy.sleep_ms (Policy.delay_ms t.sv_policy ~attempt:t.sv_consecutive);
  recover t

let heal = on_death

(* Fire the next due chaos kill: advance to its cycle, then SIGKILL the
   victim worker.  The death surfaces as [Worker_died] on the next
   protocol exchange and goes through the normal recovery path. *)
let fire_kill t (k : Chaos.kill) =
  (try
     if k.Chaos.at > cycle0 t then Fireripper.Runtime.run t.sv_handle ~cycles:k.Chaos.at
   with Libdn.Remote_engine.Worker_died { label; status; _ } ->
     on_death t ~label ~status);
  match Fireripper.Runtime.remote_conns t.sv_handle with
  | [] -> ()
  | conns ->
    let _, conn = List.nth conns (k.Chaos.victim mod List.length conns) in
    Chaos.sigkill (Libdn.Remote_engine.pid conn)

let run t ~cycles:target =
  (* A recovery floor must exist before anything can crash (checked
     once: callers that advance cycle by cycle — waveform capture —
     must not pay a directory listing per target cycle). *)
  if not t.sv_floored then begin
    (match t.sv_dir with
    | Some dir when Bundle.list_bundles ~dir = [] -> ignore (checkpoint t)
    | _ -> ());
    t.sv_floored <- true
  end;
  let rec step () =
    let now = cycle0 t in
    if now < target then begin
      let next = min target (now + t.sv_every) in
      (match Option.bind t.sv_chaos (fun c -> Chaos.next_kill c ~upto:next) with
      | Some k -> fire_kill t k
      | None -> (
        match Fireripper.Runtime.run t.sv_handle ~cycles:next with
        | () ->
          t.sv_consecutive <- 0;
          (* Checkpoint on interval boundaries, not per chunk: a caller
             driving the supervisor one target cycle at a time (the
             capture loop) still gets a bundle every [sv_every] cycles
             rather than one per cycle. *)
          if cycle0 t - t.sv_last_ckpt >= t.sv_every then ignore (checkpoint t)
        | exception Libdn.Remote_engine.Worker_died { label; status; _ } ->
          on_death t ~label ~status));
      step ()
    end
  in
  step ()

let close t =
  List.iter
    (fun (_, conn) -> Libdn.Remote_engine.close conn)
    (Fireripper.Runtime.remote_conns t.sv_handle)

let resume ~dir h =
  if Bundle.list_bundles ~dir = [] then None
  else begin
    let cycle, _ = restore_newest ~dir h ~on_skip:(fun _ _ -> ()) in
    Some cycle
  end
