(* Durable checkpoint bundles: one directory per checkpoint, manifest +
   per-unit state blobs + network state, written atomically (temp dir,
   then rename) and fully validated before any restore touches the
   simulation. *)

exception Bundle_error of string

let () =
  Printexc.register_printer (function
    | Bundle_error m -> Some ("checkpoint bundle: " ^ m)
    | _ -> None)

let fail fmt = Printf.ksprintf (fun m -> raise (Bundle_error m)) fmt

let schema = "fireaxe-checkpoint-1"

(* FNV-1a 64-bit, rendered as 16 hex digits — cheap, dependency-free
   content fingerprinting (integrity check, not cryptographic). *)
let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let design_hash (plan : Fireripper.Plan.t) =
  fnv1a64 (Firrtl.Text.emit plan.Fireripper.Plan.p_original)

(* Canonical rendering of the partitioning itself: mode, unit names,
   and the full channelization with port names and widths.  Two plans
   fingerprint identically iff a bundle from one restores into the
   other. *)
let plan_fingerprint (plan : Fireripper.Plan.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Fireripper.Spec.mode_to_string plan.Fireripper.Plan.p_mode);
  Array.iter
    (fun (u : Fireripper.Plan.unit_part) ->
      Buffer.add_char buf '|';
      Buffer.add_string buf u.Fireripper.Plan.u_name)
    plan.Fireripper.Plan.p_units;
  List.iter
    (fun (cp : Fireripper.Plan.channel_pair) ->
      Buffer.add_string buf
        (Printf.sprintf "|%d>%d:%s>%s" cp.Fireripper.Plan.cp_src_unit
           cp.Fireripper.Plan.cp_dst_unit cp.Fireripper.Plan.cp_out.Libdn.Channel.name
           cp.Fireripper.Plan.cp_in.Libdn.Channel.name);
      List.iter
        (fun (p, w) -> Buffer.add_string buf (Printf.sprintf ",%s:%d" p w))
        cp.Fireripper.Plan.cp_out.Libdn.Channel.ports)
    (Fireripper.Plan.channel_pairs plan);
  fnv1a64 (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Filesystem plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | Sys_error m -> fail "cannot read %s: %s" path m
  | End_of_file -> fail "cannot read %s: truncated" path

let write_file path text =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc text;
      flush oc;
      try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ())

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> remove_tree (Filename.concat path e)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Bundle naming                                                       *)
(* ------------------------------------------------------------------ *)

let bundle_name cycle = Printf.sprintf "ckpt-%012d" cycle

let cycle_of_name name =
  if String.length name = 17 && String.sub name 0 5 = "ckpt-" then
    int_of_string_opt (String.sub name 5 12)
  else None

let list_bundles ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           match cycle_of_name name with
           | Some cycle when Sys.is_directory (Filename.concat dir name) ->
             Some (cycle, Filename.concat dir name)
           | _ -> None)
    |> List.sort compare

let latest ~dir =
  match List.rev (list_bundles ~dir) with [] -> None | newest :: _ -> Some newest

(* ------------------------------------------------------------------ *)
(* Save                                                                *)
(* ------------------------------------------------------------------ *)

let unit_file k = Printf.sprintf "unit-%d.state" k
let network_file = "network.state"
let manifest_file = "MANIFEST"

let save ~dir (h : Fireripper.Runtime.handle) =
  let plan = h.Fireripper.Runtime.h_plan in
  let n = Fireripper.Plan.n_units plan in
  let cycle = Fireripper.Runtime.cycle h 0 in
  mkdir_p dir;
  let tmp = Filename.concat dir (Printf.sprintf ".tmp-ckpt-%d-%d" (Unix.getpid ()) cycle) in
  remove_tree tmp;
  Unix.mkdir tmp 0o755;
  let files = ref [] in
  let put name text =
    write_file (Filename.concat tmp name) text;
    files :=
      Telemetry.Json.Obj
        [
          ("name", Telemetry.Json.String name);
          ("bytes", Telemetry.Json.Int (String.length text));
          ("checksum", Telemetry.Json.String (fnv1a64 text));
        ]
      :: !files
  in
  for k = 0 to n - 1 do
    put (unit_file k) (Fireripper.Runtime.save_unit_state h k)
  done;
  put network_file (Fireripper.Runtime.network_state_to_string h);
  let manifest =
    Telemetry.Json.Obj
      [
        ("schema", Telemetry.Json.String schema);
        ("design", Telemetry.Json.String (design_hash plan));
        ("plan", Telemetry.Json.String (plan_fingerprint plan));
        ("cycle", Telemetry.Json.Int cycle);
        ("units", Telemetry.Json.Int n);
        ( "scheduler",
          Telemetry.Json.String (Libdn.Scheduler.name (Fireripper.Runtime.scheduler h)) );
        ( "mode",
          Telemetry.Json.String
            (Fireripper.Spec.mode_to_string plan.Fireripper.Plan.p_mode) );
        ( "unit_names",
          Telemetry.Json.List
            (Array.to_list plan.Fireripper.Plan.p_units
            |> List.map (fun (u : Fireripper.Plan.unit_part) ->
                   Telemetry.Json.String u.Fireripper.Plan.u_name)) );
        ("files", Telemetry.Json.List (List.rev !files));
      ]
  in
  write_file (Filename.concat tmp manifest_file) (Telemetry.Json.to_string manifest);
  let final = Filename.concat dir (bundle_name cycle) in
  remove_tree final;
  Sys.rename tmp final;
  final

(* ------------------------------------------------------------------ *)
(* Restore                                                             *)
(* ------------------------------------------------------------------ *)

let manifest ~path =
  let file = Filename.concat path manifest_file in
  if not (Sys.file_exists file) then fail "%s: no MANIFEST" path;
  let text = read_file file in
  match Telemetry.Json.parse text with
  | Error m -> fail "%s: unparseable MANIFEST (%s)" path m
  | Ok json -> (
    match Option.bind (Telemetry.Json.member "schema" json) Telemetry.Json.to_str with
    | Some s when s = schema -> json
    | Some s -> fail "%s: unsupported schema %S (want %S)" path s schema
    | None -> fail "%s: MANIFEST has no schema tag" path)

(* Pulls one required member through an accessor or fails. *)
let want path json name conv =
  match Option.bind (Telemetry.Json.member name json) conv with
  | Some v -> v
  | None -> fail "%s: MANIFEST missing %s" path name

(* ------------------------------------------------------------------ *)
(* Session bundles (simulation-service eviction / resume)              *)
(* ------------------------------------------------------------------ *)

(* A session bundle checkpoints ONE monolithic tenant of the simulation
   service rather than a partitioned network: the design source rides
   inside so an evicted session can be revived — or a restarted server
   can resurrect it — without the client re-shipping the circuit.

     <dir>/session-<id>/ckpt-<cycle>/
       MANIFEST     schema fireaxe-session-1: id, engine, cycle,
                    design hash, per-file byte counts and checksums
       design.fir   the session's circuit text
       sim.state    the standard Rtlsim.Sim state text

   The same atomic-rename write and validate-before-touch restore
   discipline as whole-network bundles. *)

let session_schema = "fireaxe-session-1"
let hash_text = fnv1a64
let design_file = "design.fir"
let state_file = "sim.state"

type session_ckpt = {
  sc_id : string;
  sc_engine : string;
  sc_cycle : int;
  sc_design_hash : string;
  sc_design : string;
  sc_state : string;
}

let session_dir_name id = "session-" ^ id

let id_of_session_dir name =
  let prefix = "session-" in
  let n = String.length prefix in
  if String.length name > n && String.sub name 0 n = prefix then
    Some (String.sub name n (String.length name - n))
  else None

(* Session ids land in directory names; anything path-hostile is the
   caller's bug, caught loudly rather than written somewhere surprising. *)
let check_session_id id =
  if
    id = ""
    || not
         (String.for_all
            (fun c ->
              (c >= 'a' && c <= 'z')
              || (c >= 'A' && c <= 'Z')
              || (c >= '0' && c <= '9')
              || c = '-' || c = '_')
            id)
  then fail "bad session id %S (want [A-Za-z0-9_-]+)" id

let save_session ~dir ~id ~engine ~design ~cycle ~state =
  check_session_id id;
  let sdir = Filename.concat dir (session_dir_name id) in
  mkdir_p sdir;
  let tmp =
    Filename.concat sdir (Printf.sprintf ".tmp-ckpt-%d-%d" (Unix.getpid ()) cycle)
  in
  remove_tree tmp;
  Unix.mkdir tmp 0o755;
  let files = ref [] in
  let put name text =
    write_file (Filename.concat tmp name) text;
    files :=
      Telemetry.Json.Obj
        [
          ("name", Telemetry.Json.String name);
          ("bytes", Telemetry.Json.Int (String.length text));
          ("checksum", Telemetry.Json.String (fnv1a64 text));
        ]
      :: !files
  in
  put design_file design;
  put state_file state;
  let manifest =
    Telemetry.Json.Obj
      [
        ("schema", Telemetry.Json.String session_schema);
        ("id", Telemetry.Json.String id);
        ("engine", Telemetry.Json.String engine);
        ("cycle", Telemetry.Json.Int cycle);
        ("design", Telemetry.Json.String (fnv1a64 design));
        ("files", Telemetry.Json.List (List.rev !files));
      ]
  in
  write_file (Filename.concat tmp manifest_file) (Telemetry.Json.to_string manifest);
  let final = Filename.concat sdir (bundle_name cycle) in
  remove_tree final;
  Sys.rename tmp final;
  final

let session_bundles ~dir ~id =
  check_session_id id;
  list_bundles ~dir:(Filename.concat dir (session_dir_name id))

let session_latest ~dir ~id =
  match List.rev (session_bundles ~dir ~id) with
  | [] -> None
  | newest :: _ -> Some newest

let session_list ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           match id_of_session_dir name with
           | Some id when Sys.is_directory (Filename.concat dir name) -> (
             match session_latest ~dir ~id with
             | Some (cycle, path) -> Some (id, cycle, path)
             | None -> None)
           | _ -> None)
    |> List.sort compare

let load_session ~path =
  let file = Filename.concat path manifest_file in
  if not (Sys.file_exists file) then fail "%s: no MANIFEST" path;
  let json =
    match Telemetry.Json.parse (read_file file) with
    | Error m -> fail "%s: unparseable MANIFEST (%s)" path m
    | Ok json -> json
  in
  (match Option.bind (Telemetry.Json.member "schema" json) Telemetry.Json.to_str with
  | Some s when s = session_schema -> ()
  | Some s -> fail "%s: unsupported schema %S (want %S)" path s session_schema
  | None -> fail "%s: MANIFEST has no schema tag" path);
  let str name = want path json name Telemetry.Json.to_str in
  let entries =
    match Option.bind (Telemetry.Json.member "files" json) Telemetry.Json.to_list with
    | Some l -> l
    | None -> fail "%s: MANIFEST missing files" path
  in
  (* Validate every blob before handing any of it back. *)
  let blobs = Hashtbl.create 4 in
  List.iter
    (fun entry ->
      let name = want path entry "name" Telemetry.Json.to_str in
      let bytes = want path entry "bytes" Telemetry.Json.to_int in
      let checksum = want path entry "checksum" Telemetry.Json.to_str in
      let file = Filename.concat path name in
      if not (Sys.file_exists file) then fail "%s: missing blob %s" path name;
      let text = read_file file in
      if String.length text <> bytes then
        fail "%s: blob %s is %d bytes, MANIFEST declares %d (truncated?)" path name
          (String.length text) bytes;
      if fnv1a64 text <> checksum then
        fail "%s: blob %s fails its checksum (corrupted)" path name;
      Hashtbl.replace blobs name text)
    entries;
  let blob name =
    match Hashtbl.find_opt blobs name with
    | Some text -> text
    | None -> fail "%s: MANIFEST lists no %s" path name
  in
  let design = blob design_file in
  let design_hash = str "design" in
  if fnv1a64 design <> design_hash then
    fail "%s: design text hashes to %s, MANIFEST declares %s" path (fnv1a64 design)
      design_hash;
  {
    sc_id = str "id";
    sc_engine = str "engine";
    sc_cycle = want path json "cycle" Telemetry.Json.to_int;
    sc_design_hash = design_hash;
    sc_design = design;
    sc_state = blob state_file;
  }

let restore ~path (h : Fireripper.Runtime.handle) =
  let plan = h.Fireripper.Runtime.h_plan in
  let json = manifest ~path in
  let str name = want path json name Telemetry.Json.to_str in
  let int name = want path json name Telemetry.Json.to_int in
  let design = str "design" and fingerprint = str "plan" in
  if design <> design_hash plan then
    fail "%s: bundle is for design %s, handle runs %s" path design (design_hash plan);
  if fingerprint <> plan_fingerprint plan then
    fail "%s: bundle partitioning %s does not match handle's %s" path fingerprint
      (plan_fingerprint plan);
  let n = int "units" in
  if n <> Fireripper.Plan.n_units plan then
    fail "%s: bundle has %d units, handle has %d" path n (Fireripper.Plan.n_units plan);
  let cycle = int "cycle" in
  (* Verify every blob's presence, size, and checksum BEFORE touching
     any simulation state: a bad bundle must never half-restore. *)
  let entries =
    match Option.bind (Telemetry.Json.member "files" json) Telemetry.Json.to_list with
    | Some l -> l
    | None -> fail "%s: MANIFEST missing files" path
  in
  let blobs = Hashtbl.create 8 in
  List.iter
    (fun entry ->
      let name = want path entry "name" Telemetry.Json.to_str in
      let bytes = want path entry "bytes" Telemetry.Json.to_int in
      let checksum = want path entry "checksum" Telemetry.Json.to_str in
      let file = Filename.concat path name in
      if not (Sys.file_exists file) then fail "%s: missing blob %s" path name;
      let text = read_file file in
      if String.length text <> bytes then
        fail "%s: blob %s is %d bytes, MANIFEST declares %d (truncated?)" path name
          (String.length text) bytes;
      if fnv1a64 text <> checksum then
        fail "%s: blob %s fails its checksum (corrupted)" path name;
      Hashtbl.replace blobs name text)
    entries;
  let blob name =
    match Hashtbl.find_opt blobs name with
    | Some text -> text
    | None -> fail "%s: MANIFEST lists no %s" path name
  in
  let net_text = blob network_file in
  let unit_texts = Array.init n (fun k -> blob (unit_file k)) in
  (try
     Array.iteri (fun k text -> Fireripper.Runtime.restore_unit_state h k text) unit_texts;
     Fireripper.Runtime.restore_network_state h net_text
   with
  | Rtlsim.Sim.Sim_error m -> fail "%s: state does not fit the handle: %s" path m
  | Failure m -> fail "%s: state does not fit the handle: %s" path m);
  cycle
