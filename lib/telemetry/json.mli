(** Minimal JSON values: emitter + parser, shared by every telemetry
    exporter (metrics snapshots, Chrome trace events, deadlock
    snapshots) and by the tests that validate the written files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

(** Parses a complete JSON document (trailing garbage is an error). *)
val parse : string -> (t, string) result

(** Object member lookup; [None] on non-objects and missing keys. *)
val member : string -> t -> t option

val to_list : t -> t list option
val to_int : t -> int option

(** Accepts both [Int] and [Float]. *)
val to_float : t -> float option

val to_str : t -> string option
