(* Chrome trace-event collector: spans and instant events on per-track
   buffers, exported as trace-event JSON loadable in Perfetto or
   chrome://tracing.

   A track is identified by (pid, tid) — the LI-BDN runtime uses one
   track per partition/domain, so partition timelines sit side by side
   in the viewer.  Each track's event buffer is owned by the domain
   recording into it: registration takes the collector mutex once, but
   appends are plain (unsynchronized) list conses, so recording never
   introduces cross-domain synchronization on the simulation's hot
   path.  Export ({!to_json}) must only run after the recording domains
   have been joined. *)

type event =
  | Span of { sp_name : string; sp_ts : float; sp_dur : float; sp_args : (string * Json.t) list }
  | Instant of { in_name : string; in_ts : float; in_args : (string * Json.t) list }

type track = {
  tr_pid : int;
  tr_tid : int;
  tr_pname : string;  (** process (partition) display name *)
  tr_tname : string;  (** thread (domain) display name *)
  mutable tr_events : event list;  (* newest first *)
  mutable tr_count : int;
}

type t = {
  tc_mu : Mutex.t;
  mutable tc_tracks : track list;  (* registration order, reversed *)
  tc_t0 : float;  (** wall-clock origin of all timestamps *)
}

let create () = { tc_mu = Mutex.create (); tc_tracks = []; tc_t0 = Unix.gettimeofday () }

(** Microseconds since the collector was created — the [ts] domain of
    every event. *)
let now_us t = (Unix.gettimeofday () -. t.tc_t0) *. 1e6

(** Finds or registers the (pid, tid) track.  Get-or-create, so a
    partition's domain can be respawned (barrier-stepped runs) and keep
    appending to the same track. *)
let track t ~pid ~tid ?(pname = "") ~name () =
  Mutex.lock t.tc_mu;
  let tr =
    match
      List.find_opt (fun tr -> tr.tr_pid = pid && tr.tr_tid = tid) t.tc_tracks
    with
    | Some tr -> tr
    | None ->
      let tr =
        { tr_pid = pid; tr_tid = tid; tr_pname = pname; tr_tname = name; tr_events = []; tr_count = 0 }
      in
      t.tc_tracks <- tr :: t.tc_tracks;
      tr
  in
  Mutex.unlock t.tc_mu;
  tr

(* Appends are domain-local: only the domain owning the track calls
   these while the simulation runs. *)
let span tr ~name ?(args = []) ~ts ~dur () =
  tr.tr_events <- Span { sp_name = name; sp_ts = ts; sp_dur = dur; sp_args = args } :: tr.tr_events;
  tr.tr_count <- tr.tr_count + 1

let instant tr ~name ?(args = []) ~ts () =
  tr.tr_events <- Instant { in_name = name; in_ts = ts; in_args = args } :: tr.tr_events;
  tr.tr_count <- tr.tr_count + 1

let tracks t =
  Mutex.lock t.tc_mu;
  let ts = List.rev t.tc_tracks in
  Mutex.unlock t.tc_mu;
  ts

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let args_json args = Json.Obj args

let event_json tr = function
  | Span { sp_name; sp_ts; sp_dur; sp_args } ->
    Json.Obj
      [
        ("name", Json.String sp_name);
        ("ph", Json.String "X");
        ("ts", Json.Float sp_ts);
        ("dur", Json.Float sp_dur);
        ("pid", Json.Int tr.tr_pid);
        ("tid", Json.Int tr.tr_tid);
        ("args", args_json sp_args);
      ]
  | Instant { in_name; in_ts; in_args } ->
    Json.Obj
      [
        ("name", Json.String in_name);
        ("ph", Json.String "i");
        ("ts", Json.Float in_ts);
        ("s", Json.String "t");
        ("pid", Json.Int tr.tr_pid);
        ("tid", Json.Int tr.tr_tid);
        ("args", args_json in_args);
      ]

let metadata_json tr =
  let meta name value =
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "M");
        ("ts", Json.Float 0.);
        ("pid", Json.Int tr.tr_pid);
        ("tid", Json.Int tr.tr_tid);
        ("args", Json.Obj [ ("name", Json.String value) ]);
      ]
  in
  [ meta "process_name" tr.tr_pname; meta "thread_name" tr.tr_tname ]

(** The whole collection as one Chrome trace-event JSON document:
    metadata (track names) first, then each track's events in recording
    order. *)
let to_json_value t =
  let trs = tracks t in
  let events =
    List.concat_map
      (fun tr -> metadata_json tr @ List.rev_map (event_json tr) tr.tr_events)
      trs
  in
  Json.Obj [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.String "ms") ]

let to_json t = Json.to_string (to_json_value t)

let save t ~path =
  let oc = open_out path in
  output_string oc (to_json t);
  output_char oc '\n';
  close_out oc
