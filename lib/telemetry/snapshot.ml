(* Structured network-state snapshot: the single source of truth for
   LI-BDN introspection and deadlock diagnostics (the Fig. 2a
   circular-dependency argument made machine-readable).

   The runtime captures one of these per partition — target cycle,
   input-queue depths, unfired outputs and their dependencies — and
   every rendering derives from it: the human-readable deadlock message
   ({!to_string}), the metrics-snapshot embedding and the trace-sink
   instant event ({!to_json}), and the blocked-edge summary tests
   assert on ({!blocked}).  It is plain data with no runtime types, so
   any layer can build or consume one. *)

type input = {
  in_chan : string;
  in_depth : int;  (** queued tokens *)
}

type output = {
  out_chan : string;
  out_fired : bool;
  out_deps : string list;  (** input channels it combinationally waits for *)
  out_blocked_on : string list;
      (** the empty subset of [out_deps] — what keeps it from firing *)
}

type part = {
  p_name : string;
  p_index : int;
  p_cycle : int;
  p_inputs : input list;
  p_outputs : output list;
}

type t = { parts : part list }

(** Empty inputs that gate progress, as (partition, input channel)
    pairs: the dependencies of unfired outputs, plus any empty input
    holding back a partition whose outputs have all fired (the advance
    rule).  For a Fig. 2a mis-cut this names the exact blocked
    channels. *)
let blocked t =
  List.concat_map
    (fun p ->
      let from_outputs =
        List.concat_map
          (fun o -> if o.out_fired then [] else o.out_blocked_on)
          p.p_outputs
      in
      let advance_blocked =
        if List.for_all (fun o -> o.out_fired) p.p_outputs then
          List.filter_map
            (fun i -> if i.in_depth = 0 then Some i.in_chan else None)
            p.p_inputs
        else []
      in
      List.sort_uniq compare (from_outputs @ advance_blocked)
      |> List.map (fun c -> (p.p_name, c)))
    t.parts

(* ------------------------------------------------------------------ *)
(* Renderings                                                          *)
(* ------------------------------------------------------------------ *)

let to_string t =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "partition %s @ cycle %d:\n" p.p_name p.p_cycle);
      List.iter
        (fun i ->
          Buffer.add_string buf
            (Printf.sprintf "  in  %-24s queue=%d\n" i.in_chan i.in_depth))
        p.p_inputs;
      List.iter
        (fun o ->
          Buffer.add_string buf
            (Printf.sprintf "  out %-24s fired=%b deps=[%s]%s\n" o.out_chan
               o.out_fired
               (String.concat "," o.out_deps)
               (match o.out_blocked_on with
               | [] -> ""
               | bs -> Printf.sprintf " blocked-on=[%s]" (String.concat "," bs))))
        p.p_outputs)
    t.parts;
  Buffer.contents buf

let to_json t =
  Json.Obj
    [
      ( "partitions",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("name", Json.String p.p_name);
                   ("index", Json.Int p.p_index);
                   ("cycle", Json.Int p.p_cycle);
                   ( "inputs",
                     Json.List
                       (List.map
                          (fun i ->
                            Json.Obj
                              [
                                ("chan", Json.String i.in_chan);
                                ("depth", Json.Int i.in_depth);
                              ])
                          p.p_inputs) );
                   ( "outputs",
                     Json.List
                       (List.map
                          (fun o ->
                            Json.Obj
                              [
                                ("chan", Json.String o.out_chan);
                                ("fired", Json.Bool o.out_fired);
                                ("deps", Json.List (List.map (fun d -> Json.String d) o.out_deps));
                                ( "blocked_on",
                                  Json.List (List.map (fun d -> Json.String d) o.out_blocked_on) );
                              ])
                          p.p_outputs) );
                 ])
             t.parts) );
      ( "blocked",
        Json.List
          (List.map
             (fun (part, chan) ->
               Json.Obj [ ("partition", Json.String part); ("chan", Json.String chan) ])
             (blocked t)) );
    ]
