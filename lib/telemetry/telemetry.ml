(* The telemetry registry: named counters, gauges and percentile
   histograms plus an optional Chrome-trace collector, behind one sink
   object threaded through the LI-BDN execution layers.

   The disabled default ({!null}) is free on the hot path: every metric
   handed out by a disabled registry carries [*_on = false], so the
   recording operations reduce to a single predictable branch — no
   allocation, no atomics, no clock reads.  Instrumentation that must
   do extra work to *compute* a sample (queue lengths, wall-clock
   reads) additionally guards on {!enabled}.

   Counters and gauges are atomics because partitions record from their
   own domains; histograms (which mutate a [Des.Stats] sample buffer)
   take a per-histogram mutex, and are only used on per-domain or
   driver-thread paths (remote-engine round trips). *)

(* Re-export the sibling modules: [Telemetry] is the library's main
   module, so these are the public names ([Telemetry.Json],
   [Telemetry.Chrome_trace], [Telemetry.Snapshot]). *)
module Json = Json
module Chrome_trace = Chrome_trace
module Snapshot = Snapshot
module Profile = Profile

type counter = {
  c_name : string;
  c_on : bool;
  c_v : int Atomic.t;
}

type gauge = {
  g_name : string;
  g_on : bool;
  g_v : int Atomic.t;
}

type hist = {
  h_name : string;
  h_on : bool;
  h_mu : Mutex.t;
  h_stats : Des.Stats.t;
}

type t = {
  enabled : bool;
  t0 : float;
  mu : Mutex.t;  (** guards the registration lists *)
  mutable t_counters : counter list;  (* newest first *)
  mutable t_gauges : gauge list;
  mutable t_hists : hist list;
  t_trace : Chrome_trace.t option;
  mutable t_deadlock : Snapshot.t option;
}

let make ~enabled ~trace =
  {
    enabled;
    t0 = Unix.gettimeofday ();
    mu = Mutex.create ();
    t_counters = [];
    t_gauges = [];
    t_hists = [];
    t_trace = (if trace then Some (Chrome_trace.create ()) else None);
    t_deadlock = None;
  }

(** The shared disabled sink: every metric it hands out is an inert
    dummy and nothing is ever registered or exported. *)
let null = make ~enabled:false ~trace:false

let create ?(trace = false) () = make ~enabled:true ~trace

let enabled t = t.enabled

let trace t = t.t_trace

(** Microseconds since the sink was created (the trace collector keeps
    its own origin; use {!Chrome_trace.now_us} for event timestamps). *)
let now_us t = (Unix.gettimeofday () -. t.t0) *. 1e6

(* ------------------------------------------------------------------ *)
(* Registration (get-or-create by name)                                *)
(* ------------------------------------------------------------------ *)

let counter t name =
  if not t.enabled then { c_name = name; c_on = false; c_v = Atomic.make 0 }
  else begin
    Mutex.lock t.mu;
    let c =
      match List.find_opt (fun c -> c.c_name = name) t.t_counters with
      | Some c -> c
      | None ->
        let c = { c_name = name; c_on = true; c_v = Atomic.make 0 } in
        t.t_counters <- c :: t.t_counters;
        c
    in
    Mutex.unlock t.mu;
    c
  end

let gauge t name =
  if not t.enabled then { g_name = name; g_on = false; g_v = Atomic.make 0 }
  else begin
    Mutex.lock t.mu;
    let g =
      match List.find_opt (fun g -> g.g_name = name) t.t_gauges with
      | Some g -> g
      | None ->
        let g = { g_name = name; g_on = true; g_v = Atomic.make 0 } in
        t.t_gauges <- g :: t.t_gauges;
        g
    in
    Mutex.unlock t.mu;
    g
  end

let hist t name =
  if not t.enabled then
    { h_name = name; h_on = false; h_mu = Mutex.create (); h_stats = Des.Stats.create () }
  else begin
    Mutex.lock t.mu;
    let h =
      match List.find_opt (fun h -> h.h_name = name) t.t_hists with
      | Some h -> h
      | None ->
        let h =
          { h_name = name; h_on = true; h_mu = Mutex.create (); h_stats = Des.Stats.create () }
        in
        t.t_hists <- h :: t.t_hists;
        h
    in
    Mutex.unlock t.mu;
    h
  end

(* ------------------------------------------------------------------ *)
(* Recording (hot path: one branch when disabled)                      *)
(* ------------------------------------------------------------------ *)

let incr c = if c.c_on then Atomic.incr c.c_v

let add c n = if c.c_on then ignore (Atomic.fetch_and_add c.c_v n)

let counter_value c = Atomic.get c.c_v

let set g v = if g.g_on then Atomic.set g.g_v v

(* Monotone max update (concurrent recorders race toward the max). *)
let set_max g v =
  if g.g_on then begin
    let rec go () =
      let cur = Atomic.get g.g_v in
      if v > cur && not (Atomic.compare_and_set g.g_v cur v) then go ()
    in
    go ()
  end

let gauge_value g = Atomic.get g.g_v

let observe h v =
  if h.h_on then begin
    Mutex.lock h.h_mu;
    Des.Stats.add h.h_stats v;
    Mutex.unlock h.h_mu
  end

(* ------------------------------------------------------------------ *)
(* Deadlock snapshots                                                  *)
(* ------------------------------------------------------------------ *)

(** Records a structured network snapshot on both sinks: kept for the
    metrics exporter and emitted as an instant event on the trace
    (track pid = -1, the network-wide lane). *)
let record_deadlock t snap =
  if t.enabled then begin
    Mutex.lock t.mu;
    t.t_deadlock <- Some snap;
    Mutex.unlock t.mu;
    match t.t_trace with
    | None -> ()
    | Some tc ->
      let tr = Chrome_trace.track tc ~pid:(-1) ~tid:0 ~pname:"network" ~name:"events" () in
      Chrome_trace.instant tr ~name:"deadlock"
        ~args:[ ("snapshot", Snapshot.to_json snap) ]
        ~ts:(Chrome_trace.now_us tc) ()
  end

let last_deadlock t = t.t_deadlock

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let counters t =
  Mutex.lock t.mu;
  let cs = List.rev_map (fun c -> (c.c_name, Atomic.get c.c_v)) t.t_counters in
  Mutex.unlock t.mu;
  cs

let gauges t =
  Mutex.lock t.mu;
  let gs = List.rev_map (fun g -> (g.g_name, Atomic.get g.g_v)) t.t_gauges in
  Mutex.unlock t.mu;
  gs

let hist_summary h =
  Json.Obj
    [
      ("count", Json.Int (Des.Stats.count h.h_stats));
      ("mean", Json.Float (Des.Stats.mean h.h_stats));
      ("p50", Json.Int (Des.Stats.percentile h.h_stats 50));
      ("p90", Json.Int (Des.Stats.percentile h.h_stats 90));
      ("p99", Json.Int (Des.Stats.percentile h.h_stats 99));
      ("max", Json.Int (Des.Stats.max_value h.h_stats));
    ]

let hists t =
  Mutex.lock t.mu;
  let hs = List.rev t.t_hists in
  Mutex.unlock t.mu;
  List.map (fun h -> (h.h_name, hist_summary h)) hs

(** The whole registry as one JSON metrics snapshot. *)
let metrics_json t =
  Json.Obj
    [
      ("schema", Json.String "fireaxe-metrics-1");
      ("enabled", Json.Bool t.enabled);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (gauges t)));
      ("histograms", Json.Obj (hists t));
      ( "deadlock",
        match t.t_deadlock with None -> Json.Null | Some s -> Snapshot.to_json s );
    ]

let metrics_json_string t = Json.to_string (metrics_json t)

let write_metrics t ~path =
  let oc = open_out path in
  output_string oc (metrics_json_string t);
  output_char oc '\n';
  close_out oc

(** Writes the Chrome trace (no-op when the sink has no trace
    collector). *)
let write_trace t ~path =
  match t.t_trace with None -> () | Some tc -> Chrome_trace.save tc ~path
