(** Structured network-state snapshot — the single source of truth for
    LI-BDN introspection and deadlock diagnostics.  Plain data: the
    runtime builds one (per partition: target cycle, input queue
    depths, unfired outputs and their dependencies); the human-readable
    deadlock message, the JSON sink embedding, and the blocked-edge
    summary all derive from it. *)

type input = {
  in_chan : string;
  in_depth : int;  (** queued tokens *)
}

type output = {
  out_chan : string;
  out_fired : bool;
  out_deps : string list;  (** input channels it combinationally waits for *)
  out_blocked_on : string list;
      (** the empty subset of [out_deps] — what keeps it from firing *)
}

type part = {
  p_name : string;
  p_index : int;
  p_cycle : int;
  p_inputs : input list;
  p_outputs : output list;
}

type t = { parts : part list }

(** Empty inputs gating progress, as (partition, input channel) pairs —
    for a Fig. 2a mis-cut, the exact blocked channels. *)
val blocked : t -> (string * string) list

(** The human-readable rendering used in {!Deadlock} messages. *)
val to_string : t -> string

val to_json : t -> Json.t
