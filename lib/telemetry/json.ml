(* A dependency-free JSON value type with an emitter and a small
   recursive-descent parser.  The telemetry exporters (metrics snapshot,
   Chrome trace events, deadlock snapshots) emit through this module so
   every file they write is well-formed by construction, and the test
   suite parses the files back with the same module — no external JSON
   library is required. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/Infinity; clamp them to null rather than emit an
   unparseable file. *)
let add_float buf f =
  if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
  else Buffer.add_string buf "null"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse_fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_fail "at %d: expected %C, found %C" c.pos ch x
  | None -> parse_fail "at %d: expected %C, found end of input" c.pos ch

let expect_word c w =
  let n = String.length w in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = w then
    c.pos <- c.pos + n
  else parse_fail "at %d: expected %s" c.pos w

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_fail "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'; advance c
      | Some '\\' -> Buffer.add_char buf '\\'; advance c
      | Some '/' -> Buffer.add_char buf '/'; advance c
      | Some 'n' -> Buffer.add_char buf '\n'; advance c
      | Some 'r' -> Buffer.add_char buf '\r'; advance c
      | Some 't' -> Buffer.add_char buf '\t'; advance c
      | Some 'b' -> Buffer.add_char buf '\b'; advance c
      | Some 'f' -> Buffer.add_char buf '\012'; advance c
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then parse_fail "truncated \\u escape";
        let hex = String.sub c.src c.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> parse_fail "bad \\u escape %S" hex
        in
        (* Only BMP code points below 0x80 render directly; others are
           replaced — the telemetry emitters never produce them. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else Buffer.add_char buf '?';
        c.pos <- c.pos + 4
      | _ -> parse_fail "bad escape at %d" c.pos);
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub c.src start (c.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> parse_fail "bad number %S at %d" text start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_fail "unexpected end of input"
  | Some 'n' -> expect_word c "null"; Null
  | Some 't' -> expect_word c "true"; Bool true
  | Some 'f' -> expect_word c "false"; Bool false
  | Some '"' -> String (parse_string_body c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin advance c; List [] end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; items (v :: acc)
        | Some ']' -> advance c; List.rev (v :: acc)
        | _ -> parse_fail "at %d: expected ',' or ']'" c.pos
      in
      List (items [])
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin advance c; Obj [] end
    else begin
      let rec members acc =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; members ((k, v) :: acc)
        | Some '}' -> advance c; Obj (List.rev ((k, v) :: acc))
        | _ -> parse_fail "at %d: expected ',' or '}'" c.pos
      in
      members []
    end
  | Some _ -> parse_number c

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at %d" c.pos)
    else Ok v
  | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors (for tests and consumers of parsed telemetry files)       *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
