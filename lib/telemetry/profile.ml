(* Hot-path profiling sink: attributes wall time and retired work at
   three granularities — engine (per-opcode-class instruction counts,
   per-cone eval time), scheduler (run / token-exchange / spin / park /
   barrier per partition), and network (per-channel enqueue/dequeue
   cost, remote wire cost) — and folds the static per-cone weights into
   a partition load model.

   The disabled path follows the [Telemetry.null] discipline: every
   recorder carries its own [on] flag captured at registration, so a
   disabled profile costs exactly one predictable branch per record
   call and never allocates.  Registration happens at build time (sim
   creation, network construction), never in the per-cycle loop. *)

type engine = {
  e_on : bool;
  e_label : string;
  e_kind : string;
  e_lanes : int;
  e_comb_hist : (string * int) list;  (* opcode class -> instrs per comb pass *)
  e_seq_hist : (string * int) list;   (* opcode class -> instrs per seq step *)
  e_comb_passes : int Atomic.t;
  e_comb_ns : int Atomic.t;
  e_seq_passes : int Atomic.t;
  e_seq_ns : int Atomic.t;
}

type cone = {
  cn_on : bool;
  cn_label : string;  (* owning unit/partition *)
  cn_name : string;   (* root signal(s) of the cone *)
  cn_instrs : int;    (* static work per eval *)
  cn_hist : (string * int) list;
  cn_evals : int Atomic.t;
  cn_ns : int Atomic.t;
}

type part = {
  pp_on : bool;
  pp_name : string;
  pp_index : int;
  pp_cycles : int Atomic.t;
  pp_run_ns : int Atomic.t;      (* active sweeps, token exchange included *)
  pp_exchange_ns : int Atomic.t; (* enq+deq slice of run, carved out at export *)
  pp_spins : int Atomic.t;
  pp_spin_ns : int Atomic.t;
  pp_parks : int Atomic.t;
  pp_park_ns : int Atomic.t;
  pp_barrier_ns : int Atomic.t;
}

type chan = {
  ch_on : bool;
  ch_part : string;  (* consuming partition: the channel's home *)
  ch_name : string;
  ch_enqs : int Atomic.t;
  ch_enq_tokens : int Atomic.t;
  ch_enq_ns : int Atomic.t;
  ch_deqs : int Atomic.t;
  ch_deq_tokens : int Atomic.t;
  ch_deq_ns : int Atomic.t;
  ch_max_batch : int Atomic.t;
}

type wire = {
  wr_on : bool;
  wr_label : string;
  wr_round_trips : int Atomic.t;
  wr_bytes_out : int Atomic.t;
  wr_bytes_in : int Atomic.t;
  wr_ns : int Atomic.t;
}

type t = {
  enabled : bool;
  t0 : float;
  mu : Mutex.t;
  mutable engines : engine list;  (* all registries newest-first *)
  mutable cones : cone list;
  mutable parts : part list;
  mutable chans : chan list;
  mutable wires : wire list;
  mutable slices : (string * Json.t) list;  (* remote workers' profiles *)
  mutable wall_ns : int option;
  acc_wall : int Atomic.t;
      (* scheduler-accumulated parallel-section wall time; the export
         denominator when no explicit wall was pinned *)
}

let make ~enabled =
  {
    enabled;
    t0 = Unix.gettimeofday ();
    mu = Mutex.create ();
    engines = [];
    cones = [];
    parts = [];
    chans = [];
    wires = [];
    slices = [];
    wall_ns = None;
    acc_wall = Atomic.make 0;
  }

let null = make ~enabled:false
let create () = make ~enabled:true
let enabled t = t.enabled

(* Monotonic-enough nanosecond clock relative to the profile's birth.
   gettimeofday keeps the disabled/enabled code identical to the rest
   of the telemetry layer (same syscall, same resolution). *)
let now_ns t =
  if t.enabled then int_of_float ((Unix.gettimeofday () -. t.t0) *. 1e9) else 0

let set_wall_ns t ns = if t.enabled then t.wall_ns <- Some ns

let add_wall_ns t ns =
  if t.enabled then ignore (Atomic.fetch_and_add t.acc_wall ns)

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* -- registration (build-time; thread-safe, never hot) ------------- *)

let engine t ~label ~kind ~lanes ~comb_hist ~seq_hist =
  let e =
    {
      e_on = t.enabled;
      e_label = label;
      e_kind = kind;
      e_lanes = lanes;
      e_comb_hist = comb_hist;
      e_seq_hist = seq_hist;
      e_comb_passes = Atomic.make 0;
      e_comb_ns = Atomic.make 0;
      e_seq_passes = Atomic.make 0;
      e_seq_ns = Atomic.make 0;
    }
  in
  if t.enabled then locked t (fun () -> t.engines <- e :: t.engines);
  e

let cone t ~label ~name ~instrs ~hist =
  let c =
    {
      cn_on = t.enabled;
      cn_label = label;
      cn_name = name;
      cn_instrs = instrs;
      cn_hist = hist;
      cn_evals = Atomic.make 0;
      cn_ns = Atomic.make 0;
    }
  in
  if t.enabled then locked t (fun () -> t.cones <- c :: t.cones);
  c

let part t ~name ~index =
  let fresh () =
    {
      pp_on = t.enabled;
      pp_name = name;
      pp_index = index;
      pp_cycles = Atomic.make 0;
      pp_run_ns = Atomic.make 0;
      pp_exchange_ns = Atomic.make 0;
      pp_spins = Atomic.make 0;
      pp_spin_ns = Atomic.make 0;
      pp_parks = Atomic.make 0;
      pp_park_ns = Atomic.make 0;
      pp_barrier_ns = Atomic.make 0;
    }
  in
  if not t.enabled then fresh ()
  else
    locked t (fun () ->
        match List.find_opt (fun p -> p.pp_name = name) t.parts with
        | Some p -> p
        | None ->
          let p = fresh () in
          t.parts <- p :: t.parts;
          p)

let channel t ~part ~name =
  let c =
    {
      ch_on = t.enabled;
      ch_part = part;
      ch_name = name;
      ch_enqs = Atomic.make 0;
      ch_enq_tokens = Atomic.make 0;
      ch_enq_ns = Atomic.make 0;
      ch_deqs = Atomic.make 0;
      ch_deq_tokens = Atomic.make 0;
      ch_deq_ns = Atomic.make 0;
      ch_max_batch = Atomic.make 0;
    }
  in
  if t.enabled then locked t (fun () -> t.chans <- c :: t.chans);
  c

let wire t ~label =
  let w =
    {
      wr_on = t.enabled;
      wr_label = label;
      wr_round_trips = Atomic.make 0;
      wr_bytes_out = Atomic.make 0;
      wr_bytes_in = Atomic.make 0;
      wr_ns = Atomic.make 0;
    }
  in
  if t.enabled then locked t (fun () -> t.wires <- w :: t.wires);
  w

let add_slice t ~label json =
  if t.enabled then locked t (fun () -> t.slices <- (label, json) :: t.slices)

(* -- recording (hot; one branch when disabled) --------------------- *)

let bump a n = ignore (Atomic.fetch_and_add a n)

let engine_enabled e = e.e_on
let add_comb e ns =
  if e.e_on then begin
    bump e.e_comb_passes 1;
    bump e.e_comb_ns ns
  end

let add_seq e ns =
  if e.e_on then begin
    bump e.e_seq_passes 1;
    bump e.e_seq_ns ns
  end

let cone_enabled c = c.cn_on
let add_cone_eval c ns =
  if c.cn_on then begin
    bump c.cn_evals 1;
    bump c.cn_ns ns
  end

let part_enabled p = p.pp_on
let add_run p ns = if p.pp_on then bump p.pp_run_ns ns
let add_exchange p ns = if p.pp_on then bump p.pp_exchange_ns ns
let add_spin p ns =
  if p.pp_on then begin
    bump p.pp_spins 1;
    bump p.pp_spin_ns ns
  end

let add_park p ns =
  if p.pp_on then begin
    bump p.pp_parks 1;
    bump p.pp_park_ns ns
  end

let add_barrier p ns = if p.pp_on then bump p.pp_barrier_ns ns
let add_cycles p n = if p.pp_on then bump p.pp_cycles n

let chan_enabled c = c.ch_on

let max_to a n =
  let rec go () =
    let cur = Atomic.get a in
    if n > cur && not (Atomic.compare_and_set a cur n) then go ()
  in
  go ()

let add_enq c ~tokens ns =
  if c.ch_on then begin
    bump c.ch_enqs 1;
    bump c.ch_enq_tokens tokens;
    bump c.ch_enq_ns ns;
    max_to c.ch_max_batch tokens
  end

let add_deq c ~tokens ns =
  if c.ch_on then begin
    bump c.ch_deqs 1;
    bump c.ch_deq_tokens tokens;
    bump c.ch_deq_ns ns;
    max_to c.ch_max_batch tokens
  end

let add_wire w ~bytes_out ~bytes_in ns =
  if w.wr_on then begin
    bump w.wr_round_trips 1;
    bump w.wr_bytes_out bytes_out;
    bump w.wr_bytes_in bytes_in;
    bump w.wr_ns ns
  end

(* -- export -------------------------------------------------------- *)

let hist_json h = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) h)
let hist_total h = List.fold_left (fun a (_, v) -> a + v) 0 h
let scale_hist h k = List.map (fun (c, v) -> (c, v * k)) h

let merge_hists hs =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (List.iter (fun (c, v) ->
         match Hashtbl.find_opt tbl c with
         | Some r -> r := !r + v
         | None ->
           Hashtbl.add tbl c (ref v);
           order := c :: !order))
    hs;
  List.rev_map (fun c -> (c, !(Hashtbl.find tbl c))) !order

let engine_json e =
  Json.Obj
    [
      ("label", Json.String e.e_label);
      ("engine", Json.String e.e_kind);
      ("lanes", Json.Int e.e_lanes);
      ("comb_passes", Json.Int (Atomic.get e.e_comb_passes));
      ("comb_ns", Json.Int (Atomic.get e.e_comb_ns));
      ("seq_passes", Json.Int (Atomic.get e.e_seq_passes));
      ("seq_ns", Json.Int (Atomic.get e.e_seq_ns));
      ("comb_instrs_per_pass", Json.Int (hist_total e.e_comb_hist));
      ("seq_instrs_per_pass", Json.Int (hist_total e.e_seq_hist));
      ("comb_classes", hist_json e.e_comb_hist);
      ("seq_classes", hist_json e.e_seq_hist);
    ]

let cone_json c =
  Json.Obj
    [
      ("part", Json.String c.cn_label);
      ("name", Json.String c.cn_name);
      ("instrs", Json.Int c.cn_instrs);
      ("evals", Json.Int (Atomic.get c.cn_evals));
      ("ns", Json.Int (Atomic.get c.cn_ns));
      ("classes", hist_json c.cn_hist);
    ]

let part_totals p =
  let run = Atomic.get p.pp_run_ns and ex = Atomic.get p.pp_exchange_ns in
  (* Exchange happens inside run segments; carve it out so the four
     components partition the active time. *)
  let run = max 0 (run - ex) in
  ( run,
    ex,
    Atomic.get p.pp_spin_ns,
    Atomic.get p.pp_park_ns,
    Atomic.get p.pp_barrier_ns )

let part_json p =
  let run, ex, spin, park, barrier = part_totals p in
  Json.Obj
    [
      ("name", Json.String p.pp_name);
      ("index", Json.Int p.pp_index);
      ("cycles", Json.Int (Atomic.get p.pp_cycles));
      ("run_ns", Json.Int run);
      ("exchange_ns", Json.Int ex);
      ("spin_ns", Json.Int spin);
      ("park_ns", Json.Int park);
      ("barrier_ns", Json.Int barrier);
      ("total_ns", Json.Int (run + ex + spin + park + barrier));
      ("spins", Json.Int (Atomic.get p.pp_spins));
      ("parks", Json.Int (Atomic.get p.pp_parks));
    ]

let chan_total_ns c = Atomic.get c.ch_enq_ns + Atomic.get c.ch_deq_ns

let chan_json c =
  Json.Obj
    [
      ("part", Json.String c.ch_part);
      ("name", Json.String c.ch_name);
      ("enqs", Json.Int (Atomic.get c.ch_enqs));
      ("enq_tokens", Json.Int (Atomic.get c.ch_enq_tokens));
      ("enq_ns", Json.Int (Atomic.get c.ch_enq_ns));
      ("deqs", Json.Int (Atomic.get c.ch_deqs));
      ("deq_tokens", Json.Int (Atomic.get c.ch_deq_tokens));
      ("deq_ns", Json.Int (Atomic.get c.ch_deq_ns));
      ("max_batch", Json.Int (Atomic.get c.ch_max_batch));
    ]

let wire_json w =
  Json.Obj
    [
      ("label", Json.String w.wr_label);
      ("round_trips", Json.Int (Atomic.get w.wr_round_trips));
      ("bytes_out", Json.Int (Atomic.get w.wr_bytes_out));
      ("bytes_in", Json.Int (Atomic.get w.wr_bytes_in));
      ("ns", Json.Int (Atomic.get w.wr_ns));
    ]

(* Retired-instruction totals: the bytecode programs are straight-line
   (no control flow), so retired = static histogram x executions — the
   hot loop only has to count passes. *)
let retired_classes t =
  let per_engine =
    List.map
      (fun e ->
        merge_hists
          [
            scale_hist e.e_comb_hist (Atomic.get e.e_comb_passes * e.e_lanes);
            scale_hist e.e_seq_hist (Atomic.get e.e_seq_passes * e.e_lanes);
          ])
      t.engines
  in
  let per_cone =
    List.map (fun c -> scale_hist c.cn_hist (Atomic.get c.cn_evals)) t.cones
  in
  merge_hists (per_engine @ per_cone)

(* -- partition load model ------------------------------------------ *)

type model_row = {
  m_name : string;
  m_predicted : int;       (* static instrs per target cycle *)
  m_predicted_share : float;
  m_measured_ns : int;
  m_measured_share : float;
}

let shares xs =
  let total = List.fold_left (fun a x -> a +. x) 0. xs in
  if total <= 0. then List.map (fun _ -> 0.) xs
  else List.map (fun x -> x /. total) xs

let imbalance xs =
  match xs with
  | [] -> 1.
  | _ ->
    let n = float_of_int (List.length xs) in
    let total = List.fold_left (fun a x -> a +. x) 0. xs in
    let mean = total /. n in
    if mean <= 0. then 1.
    else List.fold_left (fun a x -> Float.max a x) 0. xs /. mean

(* One load-model row per label seen on engines/cones/partitions.
   Predicted weight: static instructions retired per target cycle (one
   comb pass + one seq step + one eval of every registered cone).
   Measured weight: the partition's active ns when the scheduler
   recorded it, else the unit's summed engine+cone ns. *)
let load_model t =
  let labels = ref [] in
  let remember l = if not (List.mem l !labels) then labels := l :: !labels in
  List.iter (fun p -> remember p.pp_name) t.parts;
  List.iter (fun e -> remember e.e_label) t.engines;
  List.iter (fun c -> remember c.cn_label) t.cones;
  let labels = List.rev !labels in
  let predicted_of l =
    List.fold_left
      (fun a e ->
        if e.e_label = l then a + hist_total e.e_comb_hist + hist_total e.e_seq_hist
        else a)
      0 t.engines
    + List.fold_left
        (fun a c -> if c.cn_label = l then a + c.cn_instrs else a)
        0 t.cones
  in
  let engine_cone_ns l =
    List.fold_left
      (fun a e ->
        if e.e_label = l then a + Atomic.get e.e_comb_ns + Atomic.get e.e_seq_ns
        else a)
      0 t.engines
    + List.fold_left
        (fun a c -> if c.cn_label = l then a + Atomic.get c.cn_ns else a)
        0 t.cones
  in
  let measured_of l =
    match List.find_opt (fun p -> p.pp_name = l) t.parts with
    | Some p ->
      let run, ex, spin, _, _ = part_totals p in
      let active = run + ex + spin in
      if active > 0 then active else engine_cone_ns l
    | None -> engine_cone_ns l
  in
  let predicted = List.map predicted_of labels in
  let measured = List.map measured_of labels in
  let pshare = shares (List.map float_of_int predicted) in
  let mshare = shares (List.map float_of_int measured) in
  let rows =
    List.mapi
      (fun i l ->
        {
          m_name = l;
          m_predicted = List.nth predicted i;
          m_predicted_share = List.nth pshare i;
          m_measured_ns = List.nth measured i;
          m_measured_share = List.nth mshare i;
        })
      labels
  in
  (rows, imbalance (List.map float_of_int predicted),
   imbalance (List.map float_of_int measured))

(* Per-label placement weights distilled from the load model: the
   measured active time when this profile has recorded any (a previous
   run's truth beats any static prediction), else the predicted static
   weight (instrs per target cycle).  Feeds the placement pass that
   bin-packs partitions onto host domains. *)
let load_weights t =
  let rows, _, _ = locked t (fun () -> load_model t) in
  let any_measured = List.exists (fun r -> r.m_measured_ns > 0) rows in
  List.map
    (fun r ->
      (r.m_name, if any_measured then r.m_measured_ns else r.m_predicted))
    rows

let top_k k cmp xs =
  let sorted = List.stable_sort cmp xs in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take k sorted

let top_cones ?(k = 10) t =
  top_k k (fun a b -> compare (Atomic.get b.cn_ns) (Atomic.get a.cn_ns)) t.cones

let top_channels ?(k = 10) t =
  top_k k (fun a b -> compare (chan_total_ns b) (chan_total_ns a)) t.chans

let load_model_json t =
  let rows, pred_imb, meas_imb = load_model t in
  Json.Obj
    [
      ( "partitions",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("name", Json.String r.m_name);
                   ("predicted_weight", Json.Int r.m_predicted);
                   ("predicted_share", Json.Float r.m_predicted_share);
                   ("measured_ns", Json.Int r.m_measured_ns);
                   ("measured_share", Json.Float r.m_measured_share);
                 ])
             rows) );
      ("predicted_imbalance", Json.Float pred_imb);
      ("measured_imbalance", Json.Float meas_imb);
      ( "top_cones",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("part", Json.String c.cn_label);
                   ("name", Json.String c.cn_name);
                   ("instrs", Json.Int c.cn_instrs);
                   ("ns", Json.Int (Atomic.get c.cn_ns));
                 ])
             (top_cones t)) );
      ( "top_channels",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("part", Json.String c.ch_part);
                   ("name", Json.String c.ch_name);
                   ("ns", Json.Int (chan_total_ns c));
                   ("tokens",
                    Json.Int (Atomic.get c.ch_enq_tokens + Atomic.get c.ch_deq_tokens));
                 ])
             (top_channels t)) );
    ]

(* Export denominator: an explicitly pinned wall wins; otherwise the
   scheduler-accumulated parallel-section time; otherwise the profile's
   age (single-process engine-only profiles). *)
let wall t =
  match t.wall_ns with
  | Some w -> w
  | None ->
    let acc = Atomic.get t.acc_wall in
    if acc > 0 then acc else now_ns t

let to_json t =
  locked t (fun () ->
      Json.Obj
        [
          ("schema", Json.String "fireaxe-profile-1");
          ("wall_ns", Json.Int (wall t));
          ("engines", Json.List (List.rev_map engine_json t.engines));
          ("opcode_classes", hist_json (retired_classes t));
          ("cones", Json.List (List.rev_map cone_json t.cones));
          ("partitions", Json.List (List.rev_map part_json t.parts));
          ("channels", Json.List (List.rev_map chan_json t.chans));
          ("wires", Json.List (List.rev_map wire_json t.wires));
          ( "remote_slices",
            Json.Obj (List.rev_map (fun (l, j) -> (l, j)) t.slices) );
          ("load_model", load_model_json t);
        ])

(* One line per send: the worker protocol ships this back verbatim. *)
let slice_string t = Json.to_string (to_json t)

let write t ~path =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n';
  close_out oc

(* -- human-readable load report ------------------------------------ *)

let pct f = f *. 100.

let report_string t =
  let b = Buffer.create 1024 in
  let rows, pred_imb, meas_imb = locked t (fun () -> load_model t) in
  Buffer.add_string b "partition load model (predicted = static instrs/cycle):\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  %-24s predicted %8d (%5.1f%%)   measured %10d ns (%5.1f%%)\n"
           r.m_name r.m_predicted (pct r.m_predicted_share) r.m_measured_ns
           (pct r.m_measured_share)))
    rows;
  Buffer.add_string b
    (Printf.sprintf "  imbalance (max/mean): predicted %.2f, measured %.2f\n" pred_imb
       meas_imb);
  let parts = locked t (fun () -> List.rev t.parts) in
  if parts <> [] then begin
    Buffer.add_string b "scheduler breakdown per partition:\n";
    List.iter
      (fun p ->
        let run, ex, spin, park, barrier = part_totals p in
        Buffer.add_string b
          (Printf.sprintf
             "  %-24s run %10d ns  exchange %8d ns  spin %8d ns  park %8d ns  \
              barrier %8d ns\n"
             p.pp_name run ex spin park barrier))
      parts
  end;
  let cones = locked t (fun () -> top_cones t) in
  if cones <> [] then begin
    Buffer.add_string b "top cones by eval time:\n";
    List.iter
      (fun c ->
        Buffer.add_string b
          (Printf.sprintf "  %-24s %-20s %8d instrs  %10d ns  %8d evals\n" c.cn_label
             c.cn_name c.cn_instrs (Atomic.get c.cn_ns) (Atomic.get c.cn_evals)))
      cones
  end;
  let chans = locked t (fun () -> top_channels t) in
  if chans <> [] then begin
    Buffer.add_string b "top channels by exchange time:\n";
    List.iter
      (fun c ->
        Buffer.add_string b
          (Printf.sprintf "  %-24s %-20s %10d ns  enq %8d  deq %8d  max batch %d\n"
             c.ch_part c.ch_name (chan_total_ns c) (Atomic.get c.ch_enq_tokens)
             (Atomic.get c.ch_deq_tokens) (Atomic.get c.ch_max_batch)))
      chans
  end;
  Buffer.contents b

(* -- flamegraph-compatible Chrome-trace view ----------------------- *)

(* Synthesizes one track per partition with consecutive
   run/exchange/spin/park/barrier phase spans, the costliest cones
   nested inside the run span (containment on the same tid is what
   chrome://tracing / Perfetto renders as a flame).  Engine-only
   profiles (no scheduler) get one track per engine instead. *)
let trace_into t tc =
  let us ns = float_of_int ns /. 1e3 in
  let parts = locked t (fun () -> List.rev t.parts) in
  let cones_of l =
    locked t (fun () -> List.filter (fun c -> c.cn_label = l) t.cones)
  in
  let emit_cones tr ~label ~ts ~budget_ns =
    let cs =
      List.stable_sort
        (fun a b -> compare (Atomic.get b.cn_ns) (Atomic.get a.cn_ns))
        (cones_of label)
    in
    ignore
      (List.fold_left
         (fun off c ->
           let ns = Atomic.get c.cn_ns in
           if ns <= 0 || off + ns > budget_ns then off
           else begin
             Chrome_trace.span tr
               ~name:("cone " ^ c.cn_name)
               ~args:[ ("instrs", Json.Int c.cn_instrs) ]
               ~ts:(ts +. us off) ~dur:(us ns) ();
             off + ns
           end)
         0 cs)
  in
  if parts <> [] then
    List.iter
      (fun p ->
        let tr =
          Chrome_trace.track tc ~pid:(p.pp_index + 1) ~tid:0
            ~pname:("partition " ^ p.pp_name) ~name:"phases" ()
        in
        let run, ex, spin, park, barrier = part_totals p in
        let phases =
          [ ("run", run); ("exchange", ex); ("spin", spin); ("park", park);
            ("barrier", barrier) ]
        in
        ignore
          (List.fold_left
             (fun off (name, ns) ->
               if ns <= 0 then off
               else begin
                 Chrome_trace.span tr ~name ~ts:(us off) ~dur:(us ns) ();
                 if name = "run" then
                   emit_cones tr ~label:p.pp_name ~ts:(us off) ~budget_ns:ns;
                 off + ns
               end)
             0 phases))
      parts
  else
    List.iteri
      (fun i e ->
        let tr =
          Chrome_trace.track tc ~pid:(i + 1) ~tid:0 ~pname:("engine " ^ e.e_label)
            ~name:"phases" ()
        in
        let comb = Atomic.get e.e_comb_ns and seq = Atomic.get e.e_seq_ns in
        if comb > 0 then begin
          Chrome_trace.span tr ~name:"comb" ~ts:0. ~dur:(us comb) ();
          emit_cones tr ~label:e.e_label ~ts:0. ~budget_ns:comb
        end;
        if seq > 0 then
          Chrome_trace.span tr ~name:"seq" ~ts:(us comb) ~dur:(us seq) ())
      (locked t (fun () -> List.rev t.engines))

let write_trace t ~path =
  let tr = Chrome_trace.create () in
  trace_into t tr;
  Chrome_trace.save tr ~path
