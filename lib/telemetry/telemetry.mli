(** The telemetry sink threaded through the LI-BDN execution layers:
    named counters, gauges and exact-percentile histograms (backed by
    {!Des.Stats}), an optional Chrome-trace collector, and the last
    structured deadlock snapshot — exported together as one JSON
    metrics document.

    The disabled default ({!null}) is free on the hot path: metrics
    handed out by a disabled sink are inert, so recording reduces to a
    single branch — no allocation, no atomics, no clock reads.
    Counters and gauges are atomics (partitions record from their own
    domains); histograms take a per-histogram mutex. *)

(** The sibling modules, re-exported under the library's main module. *)
module Json = Json

module Chrome_trace = Chrome_trace
module Snapshot = Snapshot
module Profile = Profile

type counter
type gauge
type hist
type t

(** The shared disabled sink; all recording through it is a no-op. *)
val null : t

(** A live sink; [trace] additionally attaches a Chrome-trace
    collector. *)
val create : ?trace:bool -> unit -> t

val enabled : t -> bool
val trace : t -> Chrome_trace.t option

(** Microseconds since the sink was created. *)
val now_us : t -> float

(** Get-or-create by name.  On a disabled sink these return inert
    dummies without registering anything. *)
val counter : t -> string -> counter

val gauge : t -> string -> gauge
val hist : t -> string -> hist

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> int -> unit

(** Monotone max update (safe under concurrent recorders). *)
val set_max : gauge -> int -> unit

val gauge_value : gauge -> int

val observe : hist -> int -> unit

(** Records a structured network snapshot on both sinks: kept for the
    metrics exporter, and emitted as an instant event on the trace. *)
val record_deadlock : t -> Snapshot.t -> unit

val last_deadlock : t -> Snapshot.t option

(** Registered metrics in registration order. *)
val counters : t -> (string * int) list

val gauges : t -> (string * int) list

(** Histogram summaries (count/mean/p50/p90/p99/max) as JSON. *)
val hists : t -> (string * Json.t) list

(** The whole registry as one JSON metrics snapshot (schema
    [fireaxe-metrics-1]). *)
val metrics_json : t -> Json.t

val metrics_json_string : t -> string
val write_metrics : t -> path:string -> unit

(** Writes the Chrome trace; no-op when the sink has no collector. *)
val write_trace : t -> path:string -> unit
