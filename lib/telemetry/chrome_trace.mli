(** Chrome trace-event collector: spans and instant events on per-track
    buffers — one track per partition/domain — exported as trace-event
    JSON loadable in Perfetto / [chrome://tracing].

    Registration ({!track}) takes the collector mutex once; appends
    ({!span}, {!instant}) are unsynchronized and must come from the
    single domain owning the track, so recording adds no cross-domain
    synchronization.  Export only after recording domains are joined. *)

type event =
  | Span of { sp_name : string; sp_ts : float; sp_dur : float; sp_args : (string * Json.t) list }
  | Instant of { in_name : string; in_ts : float; in_args : (string * Json.t) list }

type track = {
  tr_pid : int;
  tr_tid : int;
  tr_pname : string;
  tr_tname : string;
  mutable tr_events : event list;
  mutable tr_count : int;
}

type t

val create : unit -> t

(** Microseconds since {!create} — the [ts] domain of every event. *)
val now_us : t -> float

(** Finds or registers the (pid, tid) track (get-or-create, so
    barrier-stepped runs that respawn domains keep one track per
    partition). *)
val track : t -> pid:int -> tid:int -> ?pname:string -> name:string -> unit -> track

(** A completed span ([ph:"X"]); [ts]/[dur] in microseconds. *)
val span : track -> name:string -> ?args:(string * Json.t) list -> ts:float -> dur:float -> unit -> unit

(** An instant event ([ph:"i"]). *)
val instant : track -> name:string -> ?args:(string * Json.t) list -> ts:float -> unit -> unit

(** All tracks in registration order. *)
val tracks : t -> track list

val to_json_value : t -> Json.t
val to_json : t -> string
val save : t -> path:string -> unit
