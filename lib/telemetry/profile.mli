(** Hot-path profiling sink.

    Attributes wall time and retired work at three granularities:

    - {b engine}: per-opcode-class retired-instruction counts and
      per-cone eval time.  The bytecode programs are straight-line, so
      the static class histogram captured at registration times the
      pass count gives exact retired counts — the hot loop only bumps a
      pass counter and (optionally) a clock pair.
    - {b scheduler}: per-partition run / token-exchange / spin / park /
      barrier time per target-cycle run.
    - {b network}: per-channel enqueue/dequeue cost and batch sizes,
      plus remote-worker wire cost.

    Recorders follow the [Telemetry.null] discipline: each carries its
    own [on] flag captured at registration, so a disabled profile costs
    one predictable branch per record call and never allocates. *)

type t

(** Registered recorders.  Registration is thread-safe and build-time
    only; recording into a recorder is lock-free (atomics). *)
type engine

type cone
type part
type chan
type wire

val null : t
(** The shared disabled sink: recorders minted from it are permanently
    off. *)

val create : unit -> t
val enabled : t -> bool

val now_ns : t -> int
(** Nanoseconds since the profile was created; [0] when disabled, so
    callers can take timestamps unconditionally. *)

val set_wall_ns : t -> int -> unit
(** Pins the wall-clock denominator used by the export.  Unpinned, the
    export uses the scheduler-accumulated parallel-section time
    ({!add_wall_ns}), or the profile's age when nothing accumulated. *)

val add_wall_ns : t -> int -> unit
(** Accumulates one parallel section's wall time into the export
    denominator — the scheduler calls this around each profiled
    [run_par]. *)

(** {1 Registration} *)

val engine :
  t ->
  label:string ->
  kind:string ->
  lanes:int ->
  comb_hist:(string * int) list ->
  seq_hist:(string * int) list ->
  engine
(** [comb_hist]/[seq_hist] are static opcode-class histograms of one
    combinational pass / one sequential step. *)

val cone :
  t -> label:string -> name:string -> instrs:int -> hist:(string * int) list -> cone

val part : t -> name:string -> index:int -> part
(** Get-or-create by [name]: repeated runs of the same network keep
    accumulating into one row. *)

val channel : t -> part:string -> name:string -> chan
val wire : t -> label:string -> wire

val add_slice : t -> label:string -> Json.t -> unit
(** Attach a remote worker's shipped profile document verbatim. *)

(** {1 Recording} — one branch when the recorder is disabled. *)

val engine_enabled : engine -> bool
val add_comb : engine -> int -> unit
val add_seq : engine -> int -> unit
val cone_enabled : cone -> bool
val add_cone_eval : cone -> int -> unit
val part_enabled : part -> bool
val add_run : part -> int -> unit
val add_exchange : part -> int -> unit
val add_spin : part -> int -> unit
val add_park : part -> int -> unit
val add_barrier : part -> int -> unit
val add_cycles : part -> int -> unit
val chan_enabled : chan -> bool
val add_enq : chan -> tokens:int -> int -> unit
val add_deq : chan -> tokens:int -> int -> unit
val add_wire : wire -> bytes_out:int -> bytes_in:int -> int -> unit

(** {1 Export} *)

val load_weights : t -> (string * int) list
(** Per-label placement weights distilled from the load model: measured
    active ns when this profile recorded any (a previous run's truth
    beats any static prediction), else the predicted static weight
    (instrs per target cycle).  Empty for {!null}.  Feeds the placement
    pass that bin-packs partitions onto host domains. *)

val to_json : t -> Json.t
(** The whole profile as a [fireaxe-profile-1] document: engines,
    retired opcode-class totals, cones, partitions, channels, wires,
    remote slices and the partition load model. *)

val slice_string : t -> string
(** One-line JSON encoding of {!to_json} — what a worker ships back
    over the pipe protocol. *)

val write : t -> path:string -> unit

val report_string : t -> string
(** Human-readable load-model report: per-partition predicted
    vs. measured weights, imbalance factors, scheduler breakdown, and
    the top-K costliest cones and channels. *)

val trace_into : t -> Chrome_trace.t -> unit
(** Renders the profile as flamegraph-style phase spans (cones nested
    inside run) into an existing Chrome-trace collector. *)

val write_trace : t -> path:string -> unit
