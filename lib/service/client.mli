(** Blocking client for the simulation service ({!Protocol.schema}).

    One connection, one outstanding request: every call writes a frame
    and blocks until the server's reply — including [step] on a packed
    session, which returns only once the cycles have actually executed
    (the server detaches the session into a private engine if its
    lane-mates stall it past the pack patience, so the call always
    terminates). *)

(** The server answered ["error <msg>"]. *)
exception Service_error of string

(** Admission control answered ["rejected <msg>"]. *)
exception Rejected of string

(** One decoded server push (v2 connections only).  [Watch] carries
    both the delta the server sent and the full snapshot the client
    reconstructed from it — values are bit-exact with what [probe]
    would have returned at that cycle. *)
type push =
  | Watch of {
      w_wid : int;
      w_sid : string;
      w_cycle : int;
      w_changes : (string * int) list;
      w_values : (string * int) list;
    }
  | Event of { e_seq : int; e_json : Telemetry.Json.t }

type t

(** Connects and performs the schema handshake.  [retry_for] keeps
    retrying a missing or refusing socket for that many seconds — the
    standard way to ride out a server that is still starting.
    [timeout] bounds every subsequent reply wait. *)
val connect : ?timeout:float -> ?retry_for:float -> socket_path:string -> unit -> t

val close : t -> unit

type created = {
  c_sid : string;
  c_cycle : int;
  c_packed : bool;  (** landed as a lane of an already-tenanted engine *)
  c_group : int;
  c_lanes : int;  (** lanes of the engine it landed in *)
}

(** Creates a session over [design] (circuit text).  [engine] is
    ["bytecode"] (default) or ["closure"]; [lanes] > 1 replicates the
    design across broadcast lanes of a private engine; [pack:false]
    opts out of tenant packing; [queue:true] waits for capacity instead
    of taking a rejection.  Raises {!Rejected} when admission says
    no. *)
val create :
  ?engine:string ->
  ?lanes:int ->
  ?scheduler:string ->
  ?pack:bool ->
  ?queue:bool ->
  t ->
  design:string ->
  created

(** Runs [n] more cycles and returns the session's cycle count. *)
val step : t -> sid:string -> int -> int

(** Grants [n] cycle credits without waiting for them to execute;
    returns (cycle so far, credits still pending).  Packed tenants use
    this to feed the credit barrier from one thread of control. *)
val step_async : t -> sid:string -> int -> int * int

(** Blocks until every granted credit has executed; returns the cycle. *)
val wait : t -> sid:string -> int

val set : t -> sid:string -> string -> int -> unit
val get : t -> sid:string -> string -> int

(** Reads several signals in one round trip. *)
val probe : t -> sid:string -> string list -> int list

val poke_mem : t -> sid:string -> string -> int -> int -> unit
val peek_mem : t -> sid:string -> string -> int -> int

(** Cuts a session bundle; returns (cycle, bundle path). *)
val checkpoint : t -> sid:string -> int * string

(** Forces the session out to its bundle now; any later command
    resumes it transparently.  Returns the evicted cycle. *)
val evict : t -> sid:string -> int

(** Explicitly revives an evicted session; returns its cycle. *)
val resume : t -> sid:string -> int

val kill : t -> sid:string -> unit
val list : t -> Protocol.row list

(** The server's stats document ({!Protocol.stats_schema}). *)
val stats : t -> Telemetry.Json.t

val shutdown : t -> unit

(** {1 Subscriptions}

    Push frames arrive whenever the server has something to say; they
    are decoded and queued as they are encountered — transparently
    while waiting for a reply, or explicitly via {!next_push}. *)

(** Subscribes to [probes] of [sid]: the server pushes one delta frame
    whenever the session's cycle advances by at least [every] (default
    1) target cycles, starting with a full snapshot.  Returns the watch
    id.  A slow subscriber loses oldest frames first (counted in the
    server's [service.sub.dropped]); the stream resynchronizes with a
    full snapshot after a drop. *)
val subscribe : ?every:int -> t -> sid:string -> probes:string list -> int

val unsubscribe : t -> wid:int -> unit

(** Subscribes to the server lifecycle journal
    ({!Protocol.events_schema}), replaying retained entries from [from]
    (default: now).  Returns the sequence number the live stream starts
    at. *)
val events : ?from:int -> t -> int

(** The next queued or arriving push; [None] once [timeout] seconds
    (forever when omitted) pass without one.  Select-driven: safe to
    call in a loop as a poor man's event loop. *)
val next_push : ?timeout:float -> t -> push option
