(* The fireaxe-service-1 protocol, shared by {!Server} and {!Client}.

   Transport: length-prefixed frames ({!Libdn.Wire}) over a Unix-domain
   stream socket.  Strictly one outstanding request per connection; the
   server replies to every request exactly once (possibly late — a
   parked [step]/[wait] replies when the session's cycles have actually
   executed).

   A frame payload is one command line of space-separated words,
   optionally followed by a newline and a bulk blob (circuit text on
   [create], the table on [list], JSON on [stats]):

     hello fireaxe-service-1                  -> ok fireaxe-service-1
     create k=v ...  \n<circuit text>         -> ok <sid> <cycle> <packed> <group> <lanes>
       options: engine=closure|bytecode  lanes=N  scheduler=seq
                pack=0|1  queue=0|1
     step <sid> <n>                           -> ok <cycle>      (runs all n)
     step_async <sid> <n>                     -> ok <cycle> <pending>
     wait <sid>                               -> ok <cycle>      (pending drained)
     set <sid> <name> <v>                     -> ok
     get <sid> <name>                         -> ok <v>
     probe <sid> <name...>                    -> ok <v...>
     poke <sid> <mem> <addr> <v>              -> ok
     peek <sid> <mem> <addr>                  -> ok <v>
     checkpoint <sid>                         -> ok <cycle> \n<bundle path>
     evict <sid>                              -> ok <cycle>
     resume <sid>                             -> ok <cycle>
     kill <sid>                               -> ok
     list                                     -> ok <n> \n<rows>
     stats                                    -> ok \n<JSON>
     shutdown                                 -> ok

   Error replies: "error <message>" for malformed or failed requests,
   "rejected <message>" when admission control turns a create (or a
   resume that cannot fit) away.  Any command addressed to an evicted
   session transparently resumes it first (resume-on-touch). *)

let schema = "fireaxe-service-1"
let stats_schema = "fireaxe-service-stats-1"

(* [list] rows: one session per line. *)
type row = {
  r_sid : string;
  r_status : string;  (** "live" or "evicted" *)
  r_cycle : int;
  r_engine : string;
  r_group : int;  (** pack-group id; -1 when evicted *)
  r_lane : int;  (** lane within the group; -1 when evicted *)
  r_pending : int;  (** step credits not yet executed *)
}

let row_to_line r =
  Printf.sprintf "%s %s %d %s %d %d %d" r.r_sid r.r_status r.r_cycle r.r_engine
    r.r_group r.r_lane r.r_pending

let row_of_line line =
  match Libdn.Wire.words line with
  | [ sid; status; cycle; engine; group; lane; pending ] ->
    let int w = Libdn.Wire.int_word ~context:"service list row" w in
    {
      r_sid = sid;
      r_status = status;
      r_cycle = int cycle;
      r_engine = engine;
      r_group = int group;
      r_lane = int lane;
      r_pending = int pending;
    }
  | _ -> failwith (Printf.sprintf "service: bad list row %S" line)

(* Reply classification, shared by the client and the CLI. *)
type reply =
  | Ok of string list * string  (** words after "ok", blob *)
  | Error of string
  | Rejected of string

let parse_reply payload =
  let line, blob = Libdn.Wire.split_payload payload in
  match Libdn.Wire.words line with
  | "ok" :: rest -> Ok (rest, blob)
  | "error" :: rest -> Error (String.concat " " rest)
  | "rejected" :: rest -> Rejected (String.concat " " rest)
  | _ -> failwith (Printf.sprintf "service: unparseable reply %S" line)
