(* The fireaxe-service-2 protocol, shared by {!Server} and {!Client}.

   Transport: length-prefixed frames ({!Libdn.Wire}) over a Unix-domain
   stream socket.  Strictly one outstanding request per connection; the
   server replies to every request exactly once (possibly late — a
   parked [step]/[wait] replies when the session's cycles have actually
   executed).

   Version 2 adds server-initiated push frames.  A v2 connection (one
   that said [hello fireaxe-service-2]) receives every frame with a
   one-byte tag prefix ({!Libdn.Wire.tag_reply} / [tag_push]): pushes
   may arrive at any moment, including between a request and its reply,
   and the client skips them while waiting.  A v1 peer keeps the exact
   fireaxe-service-1 byte stream — no tags, no pushes — so old clients
   interoperate unchanged.

   A frame payload is one command line of space-separated words,
   optionally followed by a newline and a bulk blob (circuit text on
   [create], the table on [list], JSON on [stats]):

     hello fireaxe-service-2                  -> ok fireaxe-service-2
     hello fireaxe-service-1                  -> ok fireaxe-service-1   (untagged conn)
     create k=v ...  \n<circuit text>         -> ok <sid> <cycle> <packed> <group> <lanes>
       options: engine=closure|bytecode  lanes=N  scheduler=seq
                pack=0|1  queue=0|1
     step <sid> <n>                           -> ok <cycle>      (runs all n)
     step_async <sid> <n>                     -> ok <cycle> <pending>
     wait <sid>                               -> ok <cycle>      (pending drained)
     set <sid> <name> <v>                     -> ok
     get <sid> <name>                         -> ok <v>
     probe <sid> <name...>                    -> ok <v...>
     poke <sid> <mem> <addr> <v>              -> ok
     peek <sid> <mem> <addr>                  -> ok <v>
     checkpoint <sid>                         -> ok <cycle> \n<bundle path>
     evict <sid>                              -> ok <cycle>
     resume <sid>                             -> ok <cycle>
     kill <sid>                               -> ok
     list                                     -> ok <n> \n<rows>
     stats                                    -> ok \n<JSON>
     watch <sid> [every=N] <probe...>         -> ok <wid>        (v2 only)
     unwatch <wid>                            -> ok              (v2 only)
     events [from=N]                          -> ok <next_seq>   (v2 only)
     shutdown                                 -> ok

   Push frames (tag 'P', v2 connections only):

     watch <wid> <sid> \n<delta blob>

       One probe-delta per watched session per progress pass once the
       session's cycle reaches the next [every] boundary.  The blob is
       a {!Debug.Wavestore.Codec} delta record — varint cycle plus
       (probe index, value) changes vs the previously pushed frame; the
       first frame after [watch] (and after a drop) carries every
       probe.

     event <seq> \n<JSON>

       One [fireaxe-events-1] lifecycle-journal entry (kinds: create,
       pack, detach, evict, resume, kill, reject, queue, shutdown).
       Sequence numbers are global and monotone; [events from=N]
       replays what the journal ring still holds before going live.

   Pushes are queued per connection with a bounded queue; when a slow
   subscriber falls behind, the oldest queued push is dropped (counted
   in [service.sub.dropped] and per-session in [stats]) and the next
   [watch] frame re-carries every probe so the stream resynchronizes.

   Error replies: "error <message>" for malformed or failed requests,
   "rejected <message>" when admission control turns a create (or a
   resume that cannot fit) away.  Any command addressed to an evicted
   session transparently resumes it first (resume-on-touch). *)

let schema = "fireaxe-service-2"
let schema_v1 = "fireaxe-service-1"
let stats_schema = "fireaxe-service-stats-1"
let events_schema = "fireaxe-events-1"

(* [list] rows: one session per line. *)
type row = {
  r_sid : string;
  r_status : string;  (** "live" or "evicted" *)
  r_cycle : int;
  r_engine : string;
  r_group : int;  (** pack-group id; -1 when evicted *)
  r_lane : int;  (** lane within the group; -1 when evicted *)
  r_pending : int;  (** step credits not yet executed *)
}

let row_to_line r =
  Printf.sprintf "%s %s %d %s %d %d %d" r.r_sid r.r_status r.r_cycle r.r_engine
    r.r_group r.r_lane r.r_pending

let row_of_line line =
  match Libdn.Wire.words line with
  | [ sid; status; cycle; engine; group; lane; pending ] ->
    let int w = Libdn.Wire.int_word ~context:"service list row" w in
    {
      r_sid = sid;
      r_status = status;
      r_cycle = int cycle;
      r_engine = engine;
      r_group = int group;
      r_lane = int lane;
      r_pending = int pending;
    }
  | _ -> failwith (Printf.sprintf "service: bad list row %S" line)

(* Reply classification, shared by the client and the CLI. *)
type reply =
  | Ok of string list * string  (** words after "ok", blob *)
  | Error of string
  | Rejected of string

let parse_reply payload =
  let line, blob = Libdn.Wire.split_payload payload in
  match Libdn.Wire.words line with
  | "ok" :: rest -> Ok (rest, blob)
  | "error" :: rest -> Error (String.concat " " rest)
  | "rejected" :: rest -> Rejected (String.concat " " rest)
  | _ -> failwith (Printf.sprintf "service: unparseable reply %S" line)

(* Push classification (v2 frames tagged {!Libdn.Wire.tag_push}). *)
type push =
  | Push_watch of {
      pw_wid : int;
      pw_sid : string;
      pw_cycle : int;
      pw_changes : (int * int) list;  (** (probe index, value) *)
    }
  | Push_event of { pe_seq : int; pe_json : string }

let parse_push payload =
  let line, blob = Libdn.Wire.split_payload payload in
  match Libdn.Wire.words line with
  | [ "watch"; wid; sid ] ->
    let cycle, changes = Debug.Wavestore.Codec.decode_delta blob in
    Push_watch
      {
        pw_wid = Libdn.Wire.int_word ~context:"watch push" wid;
        pw_sid = sid;
        pw_cycle = cycle;
        pw_changes = changes;
      }
  | [ "event"; seq ] ->
    Push_event { pe_seq = Libdn.Wire.int_word ~context:"event push" seq; pe_json = blob }
  | _ -> failwith (Printf.sprintf "service: unparseable push %S" line)

(* Parses trailing [k=v] options out of a word list, returning the
   option table and the remaining bare words in order — shared by the
   server's [watch]/[events] handlers and the CLI's client verbs. *)
let split_options words =
  let opts, bare =
    List.partition_map
      (fun w ->
        match String.index_opt w '=' with
        | Some i ->
          Either.Left
            (String.sub w 0 i, String.sub w (i + 1) (String.length w - i - 1))
        | None -> Either.Right w)
      words
  in
  (opts, bare)
