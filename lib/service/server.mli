(** The simulation-session server: one process multiplexing many
    concurrent RTL simulations over a Unix-domain socket speaking
    {!Protocol.schema} frames.

    Two mechanisms make it more than a sim-per-request loop:

    - {e Admission control and placement}: every session is estimated
      against a {!Platform.Fpga.board} budget before it is built.  A
      create that would blow the budget first tries to LRU-evict idle
      sessions into {!Resilience.Bundle} session checkpoints, then is
      rejected (or parked, with [queue=1], until capacity frees).
      Evicted sessions resume transparently on their next command.

    - {e Tenant packing}: sessions over the same design (same text
      hash, bytecode engine) are packed as lanes of ONE vectorized
      engine pass — the FAME-5 threading economics applied to service
      tenants.  Stimuli, probes and memories stay per-lane, so packing
      is invisible except in throughput.  Packed tenants advance under
      a credit barrier: [step] grants cycle credits and the group
      executes the minimum outstanding across its lanes; a tenant kept
      waiting longer than [pack_wait] seconds by a slower lane-mate is
      detached into a private engine (lane state carried over
      bit-exactly) and finishes alone.

    Version 2 of the protocol adds the live observability plane: v2
    connections may [watch] a session's probes (delta frames in the
    {!Debug.Wavestore.Codec} encoding, pushed once the cycle crosses
    each [every] boundary) and subscribe to the [events] lifecycle
    journal (sequence-numbered [fireaxe-events-1] entries, replayed
    from a bounded ring for late subscribers).  Pushes ride tagged
    frames interleaved with the one-outstanding-request reply
    discipline; each subscriber has a bounded queue with drop-oldest
    backpressure ([service.sub.dropped]), and a dropped watch frame
    forces the next one to carry a full snapshot so the stream
    resynchronizes.  v1 ({!Protocol.schema_v1}) clients keep the exact
    untagged byte stream and simply cannot subscribe. *)

type config = {
  socket_path : string;
  state_dir : string option;
      (** Root for eviction/checkpoint bundles; [None] disables
          eviction, [checkpoint], [evict] and restart resurrection. *)
  board : Platform.Fpga.board;  (** admission budget *)
  fit_threshold : float;  (** routability threshold for {!Platform.Fpga.fits} *)
  pack : bool;  (** allow tenant packing (per-create [pack=0] opts out) *)
  pack_wait : float;
      (** seconds a packed tenant's [step]/[wait] may stall on the
          credit barrier before it is detached into a private engine *)
  queue_wait : float;  (** seconds a [queue=1] create may wait for capacity *)
  max_sessions : int;
  telemetry : Telemetry.t;
}

(** [u250] budget, threshold 0.85, packing on with a 0.2 s barrier
    patience, 30 s create queue, 64 sessions, no state dir, telemetry
    off. *)
val default_config : socket_path:string -> config

(** Runs the server until a [shutdown] request: binds [socket_path]
    (replacing a stale socket file), resurrects any session bundles
    under [state_dir] as evicted sessions, then serves.  Blocks the
    calling domain; tests run it via [Domain.spawn]. *)
val run : config -> unit
