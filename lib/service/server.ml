(* The simulation-session server.  See server.mli for the contract.

   Single-threaded select(2) loop: every request is handled to
   completion except [step]/[wait] on a packed tenant stalled at the
   credit barrier and [queue=1] creates over capacity — those PARK (the
   reply is deferred) and are resolved by [progress], which runs after
   every request and on every loop tick.  Strictly one outstanding
   request per connection, so parking never reorders a client's
   replies. *)

module Sim = Rtlsim.Sim
module Wire = Libdn.Wire
module Resource = Platform.Resource
module Fpga = Platform.Fpga
module Bundle = Resilience.Bundle

type config = {
  socket_path : string;
  state_dir : string option;
  board : Fpga.board;
  fit_threshold : float;
  pack : bool;
  pack_wait : float;
  queue_wait : float;
  max_sessions : int;
  telemetry : Telemetry.t;
}

let default_config ~socket_path =
  {
    socket_path;
    state_dir = None;
    board = Fpga.u250;
    fit_threshold = 0.85;
    pack = true;
    pack_wait = 0.2;
    queue_wait = 30.;
    max_sessions = 64;
    telemetry = Telemetry.null;
  }

(* "rejected" replies (admission said no), as opposed to "error"
   replies (the request itself was bad or failed). *)
exception Reject of string

(* A create that does not fit even after eviction; the caller decides
   between queueing and rejecting. *)
exception No_capacity of string

(* One parsed+flattened design per text hash: joining sessions skip the
   FIRRTL re-parse, the flatten pass and the resource estimate; packed
   joiners additionally skip engine compilation by riding an existing
   group's program. *)
type cache_entry = {
  ce_flat : Firrtl.Ast.module_def;
  ce_est : Resource.estimate;  (* one copy: the group's base cost *)
}

type group = {
  g_id : int;
  g_hash : string;
  g_engine : Sim.engine;
  g_sim : Sim.t;
  g_base : Resource.estimate;
  g_lane_cost : Resource.estimate;
  g_packable : bool;  (* may accept joining tenants while unstepped *)
  mutable g_members : (int * session) list;  (* lane -> tenant *)
  mutable g_free : int list;  (* power-on lanes, reusable until stepped *)
  mutable g_stepped : bool;
  mutable g_dirty : bool;  (* inputs/pokes since the last eval_comb *)
}

and body =
  | Live of live
  | Evicted of string  (* session-bundle path *)

and live = {
  mutable b_grp : group;
  mutable b_lane : int;
}

and session = {
  s_id : string;
  s_engine : Sim.engine;
  s_scheduler : Libdn.Scheduler.t;  (* recorded; monolithic eval is lane-lockstep *)
  s_design : string;
  s_hash : string;
  s_lanes : int;  (* replicated broadcast lanes; >1 forces a private group *)
  mutable s_body : body;
  mutable s_cycle : int;  (* executed cycles (authoritative when evicted) *)
  mutable s_pending : int;  (* granted-but-unexecuted step credits *)
  mutable s_touch : int;  (* LRU stamp *)
  s_inputs : (string, int) Hashtbl.t;
      (* last value driven on each input pin.  [Sim.save_state] captures
         architectural state only — inputs are host stimulus — so every
         path that rebuilds a session on a fresh engine (detach, revive,
         restart resurrection) must replay these to keep eviction
         transparent. *)
  s_cycles_ctr : Telemetry.counter;  (* service.session.<id>.cycles *)
}

type parked =
  | P_wait of { p_sess : session; p_deadline : float }
  | P_create of { p_opts : string list; p_design : string; p_deadline : float }

(* One probe subscription: after every progress pass the session's
   current probe values are diffed against the last pushed frame and
   the changes streamed as a [watch] push once the cycle reaches
   [w_next].  [w_last = [||]] marks a resync — the next frame carries
   every probe (the first frame after [watch], and after a drop). *)
type watch = {
  w_id : int;
  w_sid : string;
  w_probes : string array;
  w_every : int;  (* minimum target cycles between frames *)
  mutable w_last : int array;
  mutable w_next : int;  (* cycle the next frame is due at *)
  mutable w_sent : int;  (* cycle of the last pushed frame *)
}

(* One lifecycle-journal entry ([fireaxe-events-1]). *)
type event = {
  e_seq : int;
  e_time : float;
  e_kind : string;
  e_sid : string;
  e_cycle : int;
  e_detail : string;
}

type conn = {
  k_fd : Unix.file_descr;
  k_rd : Wire.reader;
  mutable k_hello : bool;
  mutable k_v2 : bool;  (* said hello fireaxe-service-2: tagged frames, may subscribe *)
  mutable k_parked : parked option;
  mutable k_dead : bool;
  mutable k_watches : watch list;
  mutable k_events : bool;  (* subscribed to the lifecycle journal *)
  k_pushq : (string option * string) Queue.t;
      (* (session of a watch frame — drop accounting — or None for an
         event frame, untagged push payload), bounded by [max_pushq] *)
}

(* Plain tallies so [stats] works with telemetry disabled; mirrored into
   the config's sink when one is live. *)
type tallies = {
  mutable t_created : int;
  mutable t_rejected : int;
  mutable t_queued : int;
  mutable t_evicted : int;
  mutable t_resumed : int;
  mutable t_killed : int;
  mutable t_packed : int;
  mutable t_detached : int;
  mutable t_cycles : int;
  mutable t_cache_hits : int;
  mutable t_cache_misses : int;
  mutable t_pushes : int;
  mutable t_push_dropped : int;
}

type t = {
  cfg : config;
  sessions : (string, session) Hashtbl.t;
  mutable groups : group list;
  cache : (string, cache_entry) Hashtbl.t;
  mutable conns : conn list;
  mutable next_sid : int;
  mutable next_gid : int;
  mutable next_wid : int;
  mutable touch_clock : int;
  mutable running : bool;
  started : float;
  ev_ring : event option array;  (* journal ring, indexed seq mod length *)
  mutable ev_seq : int;  (* next sequence number *)
  dropped_by : (string, int) Hashtbl.t;  (* per-session dropped pushes *)
  tl : tallies;
  m_created : Telemetry.counter;
  m_rejected : Telemetry.counter;
  m_evicted : Telemetry.counter;
  m_resumed : Telemetry.counter;
  m_killed : Telemetry.counter;
  m_packed : Telemetry.counter;
  m_detached : Telemetry.counter;
  m_cycles : Telemetry.counter;
  m_pushes : Telemetry.counter;
  m_push_dropped : Telemetry.counter;
  m_live : Telemetry.gauge;
  m_groups : Telemetry.gauge;
  m_subs : Telemetry.gauge;
}

let now () = Unix.gettimeofday ()

let touch sv sess =
  sv.touch_clock <- sv.touch_clock + 1;
  sess.s_touch <- sv.touch_clock

(* ------------------------------------------------------------------ *)
(* Push queues + lifecycle journal                                      *)
(* ------------------------------------------------------------------ *)

let max_pushq = 256
let ev_ring_len = 512

(* Drop-oldest backpressure: a subscriber that cannot keep up loses its
   oldest queued push (counted globally and per session), and any watch
   on the dropped frame's session is forced to resync so the stream
   stays a faithful delta chain. *)
let drop_oldest sv conn =
  match Queue.take_opt conn.k_pushq with
  | None -> ()
  | Some (sid, _) ->
    sv.tl.t_push_dropped <- sv.tl.t_push_dropped + 1;
    Telemetry.incr sv.m_push_dropped;
    (match sid with
    | None -> ()
    | Some sid ->
      Hashtbl.replace sv.dropped_by sid
        (1 + Option.value ~default:0 (Hashtbl.find_opt sv.dropped_by sid));
      List.iter (fun w -> if w.w_sid = sid then w.w_last <- [||]) conn.k_watches)

let enqueue_push sv conn ?sid payload =
  if conn.k_v2 && not conn.k_dead then begin
    Queue.add (sid, payload) conn.k_pushq;
    if Queue.length conn.k_pushq > max_pushq then drop_oldest sv conn
  end

let subscription_count sv =
  List.fold_left
    (fun acc c -> acc + List.length c.k_watches + (if c.k_events then 1 else 0))
    0 sv.conns

let event_json e =
  let module J = Telemetry.Json in
  J.Obj
    [
      ("schema", J.String Protocol.events_schema);
      ("seq", J.Int e.e_seq);
      ("time", J.Float e.e_time);
      ("kind", J.String e.e_kind);
      ("sid", J.String e.e_sid);
      ("cycle", J.Int e.e_cycle);
      ("detail", J.String e.e_detail);
    ]

let event_frame e =
  Wire.join_payload
    (Printf.sprintf "event %d" e.e_seq)
    (Telemetry.Json.to_string (event_json e))

(* Appends one entry to the journal ring and fans it out to every
   events subscriber.  The frames only leave with the next push flush,
   after the current request completes. *)
let journal sv ~kind ?(sid = "-") ?(cycle = -1) ?(detail = "") () =
  let e =
    {
      e_seq = sv.ev_seq;
      e_time = Unix.gettimeofday ();
      e_kind = kind;
      e_sid = sid;
      e_cycle = cycle;
      e_detail = detail;
    }
  in
  sv.ev_ring.(sv.ev_seq mod ev_ring_len) <- Some e;
  sv.ev_seq <- sv.ev_seq + 1;
  List.iter (fun conn -> if conn.k_events then enqueue_push sv conn (event_frame e)) sv.conns

(* ------------------------------------------------------------------ *)
(* Admission accounting                                                 *)
(* ------------------------------------------------------------------ *)

(* Incremental cost of one more tenant lane in a group whose one-copy
   estimate is [base]: mirrors [Resource.estimate_unit ~threads] — the
   combinational logic is shared (plus ~ffs/16 of thread-scheduling
   overhead), the architectural state is replicated. *)
let lane_cost (base : Resource.estimate) =
  { Resource.luts = base.ffs / 16; ffs = base.ffs; bram_bits = base.bram_bits; dsps = 0 }

let allocated_lanes g = Sim.lanes g.g_sim - List.length g.g_free

let scale_cost n (lc : Resource.estimate) =
  { Resource.luts = lc.luts * n; ffs = lc.ffs * n; bram_bits = lc.bram_bits * n; dsps = 0 }

let group_cost g = Resource.add g.g_base (scale_cost (allocated_lanes g - 1) g.g_lane_cost)

let committed sv = List.fold_left (fun acc g -> Resource.add acc (group_cost g)) Resource.zero sv.groups

let fits sv extra =
  Fpga.fits ~threshold:sv.cfg.fit_threshold sv.cfg.board (Resource.add (committed sv) extra)

(* ------------------------------------------------------------------ *)
(* Compile cache                                                        *)
(* ------------------------------------------------------------------ *)

let cache_get sv ~hash ~design =
  match Hashtbl.find_opt sv.cache hash with
  | Some ce ->
    sv.tl.t_cache_hits <- sv.tl.t_cache_hits + 1;
    ce
  | None ->
    sv.tl.t_cache_misses <- sv.tl.t_cache_misses + 1;
    let circuit = Firrtl.Text.parse design in
    let flat = Firrtl.Flatten.flatten circuit in
    let ce = { ce_flat = flat; ce_est = Resource.estimate_flat flat } in
    Hashtbl.replace sv.cache hash ce;
    ce

(* ------------------------------------------------------------------ *)
(* Group lifecycle                                                      *)
(* ------------------------------------------------------------------ *)

let new_group sv ~hash ~engine ~lanes ~packable ce =
  let sim =
    Sim.create ~engine ~telemetry:sv.cfg.telemetry ~lanes
      ~label:(Printf.sprintf "service.g%d" sv.next_gid)
      ce.ce_flat
  in
  let g =
    {
      g_id = sv.next_gid;
      g_hash = hash;
      g_engine = engine;
      g_sim = sim;
      g_base = ce.ce_est;
      g_lane_cost = lane_cost ce.ce_est;
      g_packable = packable;
      g_members = [];
      g_free = [];
      g_stepped = false;
      g_dirty = true;
    }
  in
  sv.next_gid <- sv.next_gid + 1;
  sv.groups <- g :: sv.groups;
  g

let destroy_group sv g = sv.groups <- List.filter (fun g' -> g' != g) sv.groups

(* Drops [lane] from [g]: an unstepped group resets it back into the
   free pool; a stepped group strands it (the lane keeps ticking,
   unobserved — lanes share one cycle counter, so it cannot be handed
   to a fresh tenant).  An emptied group is torn down entirely. *)
let remove_member sv g lane =
  g.g_members <- List.filter (fun (l, _) -> l <> lane) g.g_members;
  if g.g_members = [] then destroy_group sv g
  else if not g.g_stepped then begin
    Sim.reset_lane g.g_sim ~lane;
    g.g_free <- lane :: g.g_free
  end

(* ------------------------------------------------------------------ *)
(* Credit-drain barrier                                                 *)
(* ------------------------------------------------------------------ *)

(* Advances [g] by the minimum outstanding credit across its tenants,
   repeatedly, until some tenant is out of credits.  All lanes advance
   in lockstep (one vectorized pass per cycle); each tenant's inputs
   hold at their last-set values, exactly as they would in a private
   simulator stepped with untouched inputs. *)
let drain sv g =
  let rec go () =
    match g.g_members with
    | [] -> ()
    | ms ->
      let m = List.fold_left (fun acc (_, s) -> min acc s.s_pending) max_int ms in
      if m > 0 then begin
        for _ = 1 to m do
          Sim.step g.g_sim
        done;
        g.g_stepped <- true;
        g.g_free <- [];  (* no longer at cycle 0: nothing left to hand out *)
        g.g_dirty <- true;
        let c = Sim.cycle g.g_sim in
        List.iter
          (fun (_, s) ->
            s.s_pending <- s.s_pending - m;
            s.s_cycle <- c;
            Telemetry.add s.s_cycles_ctr m)
          ms;
        sv.tl.t_cycles <- sv.tl.t_cycles + (m * List.length ms);
        Telemetry.add sv.m_cycles (m * List.length ms);
        go ()
      end
  in
  go ()

let drain_all sv = List.iter (drain sv) sv.groups

(* Combinational values fresh for reading (probes, gets, peeked
   enables).  [eval_comb] covers every lane, so one pass serves all the
   group's tenants; idempotent, hence the dirty flag. *)
let ensure_fresh g =
  if g.g_dirty then begin
    Sim.eval_comb g.g_sim;
    g.g_dirty <- false
  end

(* ------------------------------------------------------------------ *)
(* Eviction / revival                                                   *)
(* ------------------------------------------------------------------ *)

let live_exn sess =
  match sess.s_body with
  | Live b -> b
  | Evicted _ -> failwith (Printf.sprintf "session %s is evicted" sess.s_id)

let is_parked_on sv sess =
  List.exists
    (fun c ->
      match c.k_parked with
      | Some (P_wait { p_sess; _ }) -> p_sess == sess
      | _ -> false)
    sv.conns

(* Bundle state payloads carry the driven input pins ahead of the
   architectural snapshot — one "inputs <name> <v> ..." header line,
   then the [Sim.state_to_string] text.  Without the header a resumed
   session would power back up with all pins at zero and silently
   diverge from its pre-eviction trajectory. *)
let encode_state sess st =
  let b = Buffer.create 256 in
  Buffer.add_string b "inputs";
  Hashtbl.iter (fun n v -> Buffer.add_string b (Printf.sprintf " %s %d" n v)) sess.s_inputs;
  Buffer.add_char b '\n';
  Buffer.add_string b (Sim.state_to_string st);
  Buffer.contents b

(* Returns (input pairs, architectural-state text); tolerates a
   headerless payload as "no inputs driven". *)
let decode_state raw =
  match String.index_opt raw '\n' with
  | Some i when i >= 6 && String.sub raw 0 6 = "inputs" ->
    let rec pairs = function
      | n :: v :: rest -> (n, Wire.int_word ~context:"bundle inputs" v) :: pairs rest
      | [] -> []
      | [ w ] -> failwith (Printf.sprintf "bundle inputs: dangling word %S" w)
    in
    ( pairs (List.tl (Wire.words (String.sub raw 0 i))),
      String.sub raw (i + 1) (String.length raw - i - 1) )
  | _ -> ([], raw)

(* Replays the session's driven pins onto a freshly built lane (after a
   [Sim.restore_state], which covers architectural state only). *)
let replay_inputs sess g lane =
  Hashtbl.iter (fun n v -> Sim.set_input ~lane g.g_sim n v) sess.s_inputs;
  g.g_dirty <- true

(* Writes [sess]'s architectural state into a session bundle and frees
   its engine.  Only private (sole-tenant, single-lane) idle sessions
   qualify; packed tenants are detached first by the callers that need
   them gone. *)
let evict_session sv sess =
  let dir =
    match sv.cfg.state_dir with
    | Some d -> d
    | None -> failwith "eviction requires the server to run with a state dir"
  in
  let b = live_exn sess in
  let state = encode_state sess (Sim.save_state ~lane:b.b_lane b.b_grp.g_sim) in
  let path =
    Bundle.save_session ~dir ~id:sess.s_id ~engine:(Sim.engine_name sess.s_engine)
      ~design:sess.s_design ~cycle:(Sim.cycle b.b_grp.g_sim) ~state
  in
  sess.s_cycle <- Sim.cycle b.b_grp.g_sim;
  remove_member sv b.b_grp b.b_lane;
  sess.s_body <- Evicted path;
  sv.tl.t_evicted <- sv.tl.t_evicted + 1;
  Telemetry.incr sv.m_evicted;
  journal sv ~kind:"evict" ~sid:sess.s_id ~cycle:sess.s_cycle ();
  path

(* Idle private sessions, least-recently-touched first — the LRU
   candidates admission control may push out to make room. *)
let evictable sv ?keep () =
  Hashtbl.fold
    (fun _ s acc ->
      match s.s_body with
      | Evicted _ -> acc
      | Live b ->
        if
          s.s_pending = 0 && s.s_lanes = 1
          && List.length b.b_grp.g_members = 1
          && (match keep with Some g -> b.b_grp != g | None -> true)
          && not (is_parked_on sv s)
        then s :: acc
        else acc)
    sv.sessions []
  |> List.sort (fun a b -> compare a.s_touch b.s_touch)

(* Makes room for [extra] by evicting idle sessions LRU-first; returns
   whether the budget now fits.  No state dir means nothing to evict
   into, so the answer is just the fit check. *)
let make_room sv ?keep extra =
  if fits sv extra then true
  else if sv.cfg.state_dir = None then false
  else begin
    let rec go = function
      | [] -> fits sv extra
      | s :: rest ->
        ignore (evict_session sv s);
        if fits sv extra then true else go rest
    in
    go (evictable sv ?keep ())
  end

(* Transparent resume-on-touch: rebuilds an evicted session as a
   private group from its bundle.  The design text rides inside the
   bundle, so revival (and server-restart resurrection) never needs the
   client to re-ship the circuit. *)
let revive sv sess =
  match sess.s_body with
  | Live _ -> ()
  | Evicted path ->
    let ck = Bundle.load_session ~path in
    let ce = cache_get sv ~hash:ck.Bundle.sc_design_hash ~design:ck.Bundle.sc_design in
    if not (make_room sv ce.ce_est) then
      raise (Reject (Printf.sprintf "no capacity to resume session %s" sess.s_id));
    let g = new_group sv ~hash:sess.s_hash ~engine:sess.s_engine ~lanes:1 ~packable:false ce in
    let inputs, state = decode_state ck.Bundle.sc_state in
    Sim.restore_state g.g_sim (Sim.state_of_string state);
    Hashtbl.reset sess.s_inputs;
    List.iter (fun (n, v) -> Hashtbl.replace sess.s_inputs n v) inputs;
    replay_inputs sess g 0;
    g.g_members <- [ (0, sess) ];
    (* Restored state is not power-on state: the group is born
       non-joinable even when the bundle was cut at cycle 0. *)
    g.g_stepped <- true;
    sess.s_body <- Live { b_grp = g; b_lane = 0 };
    sess.s_cycle <- Sim.cycle g.g_sim;
    sv.tl.t_resumed <- sv.tl.t_resumed + 1;
    Telemetry.incr sv.m_resumed;
    journal sv ~kind:"resume" ~sid:sess.s_id ~cycle:sess.s_cycle ()

let ensure_live sv sess =
  revive sv sess;
  touch sv sess

(* ------------------------------------------------------------------ *)
(* Packing / detaching                                                  *)
(* ------------------------------------------------------------------ *)

let find_pack_target sv ~hash =
  List.find_opt
    (fun g -> g.g_packable && (not g.g_stepped) && g.g_hash = hash && g.g_engine = Sim.Bytecode)
    sv.groups

(* Pulls a packed tenant out into a private engine, carrying its lane
   state over bit-exactly (registers, memories, the shared cycle
   count).  Runs when the credit barrier has stalled it for longer than
   [pack_wait], and before evicting a packed tenant. *)
let detach sv sess =
  let b = live_exn sess in
  if List.length b.b_grp.g_members > 1 then begin
    let old = b.b_grp in
    let st = Sim.save_state ~lane:b.b_lane old.g_sim in
    remove_member sv old b.b_lane;
    let ce = cache_get sv ~hash:sess.s_hash ~design:sess.s_design in
    (* Best effort: a detach must not fail, so over-commit if even
       eviction cannot cover the private engine's cost. *)
    ignore (make_room sv ce.ce_est : bool);
    let g = new_group sv ~hash:sess.s_hash ~engine:sess.s_engine ~lanes:1 ~packable:false ce in
    Sim.restore_state g.g_sim st;
    replay_inputs sess g 0;
    g.g_members <- [ (0, sess) ];
    g.g_stepped <- true;
    b.b_grp <- g;
    b.b_lane <- 0;
    sv.tl.t_detached <- sv.tl.t_detached + 1;
    Telemetry.incr sv.m_detached;
    journal sv ~kind:"detach" ~sid:sess.s_id ~cycle:(Sim.cycle g.g_sim) ();
    drain sv old;
    drain sv g
  end

(* ------------------------------------------------------------------ *)
(* Session creation                                                     *)
(* ------------------------------------------------------------------ *)

let fresh_sid sv =
  let rec go () =
    let sid = Printf.sprintf "s%d" sv.next_sid in
    sv.next_sid <- sv.next_sid + 1;
    if Hashtbl.mem sv.sessions sid then go () else sid
  in
  go ()

type create_req = {
  cr_engine : Sim.engine;
  cr_scheduler : Libdn.Scheduler.t;
  cr_lanes : int;
  cr_pack : bool;
  cr_queue : bool;
}

let parse_create_opts opts =
  let req =
    ref
      {
        cr_engine = Sim.default_engine;
        cr_scheduler = Libdn.Scheduler.default;
        cr_lanes = 1;
        cr_pack = true;
        cr_queue = false;
      }
  in
  List.iter
    (fun opt ->
      match String.index_opt opt '=' with
      | None -> failwith (Printf.sprintf "create: malformed option %S (want key=value)" opt)
      | Some i ->
        let k = String.sub opt 0 i in
        let v = String.sub opt (i + 1) (String.length opt - i - 1) in
        let int () = Wire.int_word ~context:("create " ^ k) v in
        let flag () =
          match v with
          | "0" -> false
          | "1" -> true
          | _ -> failwith (Printf.sprintf "create: %s=%S (want 0 or 1)" k v)
        in
        (match k with
        | "engine" -> (
          match Sim.engine_of_string v with
          | Ok e -> req := { !req with cr_engine = e }
          | Error m -> failwith m)
        | "scheduler" -> (
          match Libdn.Scheduler.of_string v with
          | Ok s -> req := { !req with cr_scheduler = s }
          | Error m -> failwith m)
        | "lanes" ->
          let n = int () in
          if n < 1 then failwith "create: lanes must be >= 1";
          req := { !req with cr_lanes = n }
        | "pack" -> req := { !req with cr_pack = flag () }
        | "queue" -> req := { !req with cr_queue = flag () }
        | _ -> failwith (Printf.sprintf "create: unknown option %S" k)))
    opts;
  !req

(* Places and builds one session; raises [No_capacity] when admission
   fails even after LRU eviction (the caller queues or rejects). *)
let create_session sv req design =
  if design = "" || String.trim design = "" then failwith "create: empty design";
  if Hashtbl.length sv.sessions >= sv.cfg.max_sessions then
    raise
      (No_capacity (Printf.sprintf "session cap reached (%d sessions)" sv.cfg.max_sessions));
  if req.cr_lanes > 1 && req.cr_engine <> Sim.Bytecode then
    failwith "create: lanes > 1 requires engine=bytecode";
  let hash = Bundle.hash_text design in
  let ce = cache_get sv ~hash ~design in
  let pack_eligible =
    sv.cfg.pack && req.cr_pack && req.cr_engine = Sim.Bytecode && req.cr_lanes = 1
  in
  let sid = fresh_sid sv in
  let sess =
    {
      s_id = sid;
      s_engine = req.cr_engine;
      s_scheduler = req.cr_scheduler;
      s_design = design;
      s_hash = hash;
      s_lanes = req.cr_lanes;
      s_body = Evicted "";  (* placed below *)
      s_cycle = 0;
      s_pending = 0;
      s_touch = 0;
      s_inputs = Hashtbl.create 8;
      s_cycles_ctr = Telemetry.counter sv.cfg.telemetry ("service.session." ^ sid ^ ".cycles");
    }
  in
  let grp, lane =
    match (if pack_eligible then find_pack_target sv ~hash else None) with
    | Some g ->
      (* Joining an existing group: the design is already parsed AND
         compiled — the tenant is one more lane of the same program. *)
      let cost = if g.g_free = [] then g.g_lane_cost else Resource.zero in
      if not (make_room sv ~keep:g cost) then
        raise (No_capacity "over budget even after evicting idle sessions");
      let lane =
        match g.g_free with
        | l :: rest ->
          g.g_free <- rest;
          l
        | [] -> Sim.attach_lane g.g_sim
      in
      sv.tl.t_packed <- sv.tl.t_packed + 1;
      Telemetry.incr sv.m_packed;
      (g, lane)
    | None ->
      let cost = Resource.add ce.ce_est (scale_cost (req.cr_lanes - 1) (lane_cost ce.ce_est)) in
      if not (make_room sv cost) then
        raise (No_capacity "over budget even after evicting idle sessions");
      let g =
        new_group sv ~hash ~engine:req.cr_engine ~lanes:req.cr_lanes
          ~packable:pack_eligible ce
      in
      (g, 0)
  in
  grp.g_members <- (lane, sess) :: grp.g_members;
  grp.g_dirty <- true;
  sess.s_body <- Live { b_grp = grp; b_lane = lane };
  Hashtbl.replace sv.sessions sid sess;
  touch sv sess;
  sv.tl.t_created <- sv.tl.t_created + 1;
  Telemetry.incr sv.m_created;
  journal sv ~kind:"create" ~sid ~cycle:(Sim.cycle grp.g_sim)
    ~detail:(Sim.engine_name req.cr_engine) ();
  if List.length grp.g_members > 1 then
    journal sv ~kind:"pack" ~sid ~cycle:(Sim.cycle grp.g_sim)
      ~detail:(Printf.sprintf "group=%d lane=%d" grp.g_id lane) ();
  sess

(* ------------------------------------------------------------------ *)
(* Replies                                                              *)
(* ------------------------------------------------------------------ *)

(* A v2 connection gets every frame tagged (replies [tag_reply],
   pushes [tag_push]); a v1 connection keeps the untagged
   fireaxe-service-1 byte stream. *)
let send conn payload =
  if not conn.k_dead then
    try
      if conn.k_v2 then
        Wire.write_tagged ~label:"client" conn.k_fd ~tag:Wire.tag_reply payload
      else Wire.write_frame ~label:"client" conn.k_fd payload
    with Wire.Closed _ -> conn.k_dead <- true

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let reply_ok ?(blob = "") conn ws =
  send conn (Wire.join_payload (String.concat " " ("ok" :: ws)) blob)

let reply_err conn msg = send conn (Wire.join_payload ("error " ^ one_line msg) "")
let reply_rejected conn msg = send conn (Wire.join_payload ("rejected " ^ one_line msg) "")

(* ------------------------------------------------------------------ *)
(* Commands                                                             *)
(* ------------------------------------------------------------------ *)

let session_exn sv sid =
  match Hashtbl.find_opt sv.sessions sid with
  | Some s -> s
  | None -> failwith (Printf.sprintf "no such session: %s" sid)

let session_cycle sess =
  match sess.s_body with
  | Live b -> Sim.cycle b.b_grp.g_sim
  | Evicted _ -> sess.s_cycle

let cyc sess = string_of_int (session_cycle sess)

(* Drives [name] on the session's lane; a multi-lane (replicated)
   session broadcasts to all its lanes.  Multi-lane sessions are always
   sole tenants, so the broadcast cannot leak into a neighbor. *)
let do_set sess name v =
  let b = live_exn sess in
  if sess.s_lanes > 1 then Sim.set_input_all b.b_grp.g_sim name v
  else Sim.set_input ~lane:b.b_lane b.b_grp.g_sim name v;
  Hashtbl.replace sess.s_inputs name v;
  b.b_grp.g_dirty <- true

let do_get sess name =
  let b = live_exn sess in
  ensure_fresh b.b_grp;
  Sim.get ~lane:b.b_lane b.b_grp.g_sim name

let handle_step sv conn sess n ~park =
  if n < 0 then failwith "step: negative cycle count"
  else begin
    sess.s_pending <- sess.s_pending + n;
    (match sess.s_body with Live b -> drain sv b.b_grp | Evicted _ -> ());
    if (not park) || sess.s_pending = 0 then
      if park then reply_ok conn [ cyc sess ]
      else reply_ok conn [ cyc sess; string_of_int sess.s_pending ]
    else
      conn.k_parked <- Some (P_wait { p_sess = sess; p_deadline = now () +. sv.cfg.pack_wait })
  end

let handle_create sv conn opts design =
  let req = parse_create_opts opts in
  match create_session sv req design with
  | sess ->
    let b = live_exn sess in
    reply_ok conn
      [
        sess.s_id;
        cyc sess;
        (if List.length b.b_grp.g_members > 1 then "1" else "0");
        string_of_int b.b_grp.g_id;
        string_of_int (Sim.lanes b.b_grp.g_sim);
      ]
  | exception No_capacity msg ->
    if req.cr_queue then begin
      sv.tl.t_queued <- sv.tl.t_queued + 1;
      journal sv ~kind:"queue" ~detail:msg ();
      conn.k_parked <-
        Some (P_create { p_opts = opts; p_design = design; p_deadline = now () +. sv.cfg.queue_wait })
    end
    else begin
      sv.tl.t_rejected <- sv.tl.t_rejected + 1;
      Telemetry.incr sv.m_rejected;
      journal sv ~kind:"reject" ~detail:msg ();
      reply_rejected conn msg
    end

let delete_session_bundles sv sid =
  match sv.cfg.state_dir with
  | None -> ()
  | Some dir ->
    let rec rm path =
      match (Unix.lstat path).Unix.st_kind with
      | Unix.S_DIR ->
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
      | _ -> Unix.unlink path
      | exception Unix.Unix_error _ -> ()
    in
    rm (Filename.concat dir ("session-" ^ sid))

let handle_kill sv conn sid =
  let sess = session_exn sv sid in
  (match sess.s_body with
  | Live b -> remove_member sv b.b_grp b.b_lane
  | Evicted _ -> ());
  Hashtbl.remove sv.sessions sid;
  delete_session_bundles sv sid;
  (* Anyone parked on the victim gets an error, not silence. *)
  List.iter
    (fun c ->
      match c.k_parked with
      | Some (P_wait { p_sess; _ }) when p_sess == sess ->
        c.k_parked <- None;
        reply_err c (Printf.sprintf "session %s killed" sid)
      | _ -> ())
    sv.conns;
  sv.tl.t_killed <- sv.tl.t_killed + 1;
  Telemetry.incr sv.m_killed;
  journal sv ~kind:"kill" ~sid ();
  reply_ok conn []

let handle_list sv conn =
  let rows =
    Hashtbl.fold (fun _ s acc -> s :: acc) sv.sessions []
    |> List.sort (fun a b -> compare a.s_id b.s_id)
    |> List.map (fun s ->
           let status, grp, lane =
             match s.s_body with
             | Live b -> ("live", b.b_grp.g_id, b.b_lane)
             | Evicted _ -> ("evicted", -1, -1)
           in
           Protocol.row_to_line
             {
               Protocol.r_sid = s.s_id;
               r_status = status;
               r_cycle = session_cycle s;
               r_engine = Sim.engine_name s.s_engine;
               r_group = grp;
               r_lane = lane;
               r_pending = s.s_pending;
             })
  in
  reply_ok conn [ string_of_int (List.length rows) ] ~blob:(String.concat "\n" rows)

let est_json (e : Resource.estimate) =
  Telemetry.Json.Obj
    [
      ("luts", Telemetry.Json.Int e.luts);
      ("ffs", Telemetry.Json.Int e.ffs);
      ("bram_bits", Telemetry.Json.Int e.bram_bits);
      ("dsps", Telemetry.Json.Int e.dsps);
    ]

let handle_stats sv conn =
  let module J = Telemetry.Json in
  let live, evicted =
    Hashtbl.fold
      (fun _ s (l, e) -> match s.s_body with Live _ -> (l + 1, e) | Evicted _ -> (l, e + 1))
      sv.sessions (0, 0)
  in
  let sessions =
    Hashtbl.fold (fun _ s acc -> s :: acc) sv.sessions []
    |> List.sort (fun a b -> compare a.s_id b.s_id)
    |> List.map (fun s ->
           let status, grp, lane =
             match s.s_body with
             | Live b -> ("live", b.b_grp.g_id, b.b_lane)
             | Evicted _ -> ("evicted", -1, -1)
           in
           J.Obj
             [
               ("id", J.String s.s_id);
               ("status", J.String status);
               ("cycle", J.Int (session_cycle s));
               ("pending", J.Int s.s_pending);
               ("engine", J.String (Sim.engine_name s.s_engine));
               ("scheduler", J.String (Libdn.Scheduler.name s.s_scheduler));
               ("group", J.Int grp);
               ("lane", J.Int lane);
               ("lanes", J.Int s.s_lanes);
             ])
  in
  let groups =
    List.rev_map
      (fun g ->
        J.Obj
          [
            ("id", J.Int g.g_id);
            ("design_hash", J.String g.g_hash);
            ("engine", J.String (Sim.engine_name g.g_engine));
            ("lanes", J.Int (Sim.lanes g.g_sim));
            ("tenants", J.Int (List.length g.g_members));
            ("cycle", J.Int (Sim.cycle g.g_sim));
            ("stepped", J.Bool g.g_stepped);
            ( "program_hash",
              match Sim.bytecode_program_hash g.g_sim with
              | Some h -> J.String (Printf.sprintf "%016x" h)
              | None -> J.Null );
          ])
      sv.groups
  in
  let tl = sv.tl in
  let dropped_by =
    Hashtbl.fold (fun sid n acc -> (sid, J.Int n) :: acc) sv.dropped_by []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let doc =
    J.Obj
      [
        ("schema", J.String Protocol.stats_schema);
        ("protocol", J.String Protocol.schema);
        ("uptime_s", J.Float (now () -. sv.started));
        ("board", J.String sv.cfg.board.Fpga.board_name);
        ("sessions", J.Int (Hashtbl.length sv.sessions));
        ("subscriptions", J.Int (subscription_count sv));
        ("events_seq", J.Int sv.ev_seq);
        ("dropped_by_session", J.Obj dropped_by);
        ("live", J.Int live);
        ("evicted", J.Int evicted);
        ("groups", J.Int (List.length sv.groups));
        ("committed", est_json (committed sv));
        ( "budget",
          est_json
            {
              Resource.luts = sv.cfg.board.Fpga.luts;
              ffs = sv.cfg.board.Fpga.ffs;
              bram_bits = sv.cfg.board.Fpga.bram_bits;
              dsps = sv.cfg.board.Fpga.dsps;
            } );
        ( "counters",
          J.Obj
            [
              ("created", J.Int tl.t_created);
              ("rejected", J.Int tl.t_rejected);
              ("queued", J.Int tl.t_queued);
              ("evicted", J.Int tl.t_evicted);
              ("resumed", J.Int tl.t_resumed);
              ("killed", J.Int tl.t_killed);
              ("packed", J.Int tl.t_packed);
              ("detached", J.Int tl.t_detached);
              ("cycles", J.Int tl.t_cycles);
              ("cache_hits", J.Int tl.t_cache_hits);
              ("cache_misses", J.Int tl.t_cache_misses);
              ("pushes", J.Int tl.t_pushes);
              ("push_dropped", J.Int tl.t_push_dropped);
            ] );
        ("session_detail", J.List sessions);
        ("group_detail", J.List groups);
      ]
  in
  reply_ok conn [] ~blob:(J.to_string doc)

let handle sv conn payload =
  let line, blob = Wire.split_payload payload in
  let int w = Wire.int_word ~context:"request" w in
  match Wire.words line with
  | [ "hello"; s ] when s = Protocol.schema ->
    conn.k_hello <- true;
    conn.k_v2 <- true;  (* before the reply: the hello reply itself is tagged *)
    reply_ok conn [ Protocol.schema ]
  | [ "hello"; s ] when s = Protocol.schema_v1 ->
    conn.k_hello <- true;
    conn.k_v2 <- false;
    reply_ok conn [ Protocol.schema_v1 ]
  | "hello" :: rest ->
    reply_err conn
      (Printf.sprintf "schema mismatch: server speaks %s (or %s), client sent %S"
         Protocol.schema Protocol.schema_v1 (String.concat " " rest))
  | _ when not conn.k_hello ->
    reply_err conn (Printf.sprintf "expected: hello %s" Protocol.schema)
  | "create" :: opts -> handle_create sv conn opts blob
  | [ "step"; sid; n ] ->
    let sess = session_exn sv sid in
    ensure_live sv sess;
    handle_step sv conn sess (int n) ~park:true
  | [ "step_async"; sid; n ] ->
    let sess = session_exn sv sid in
    ensure_live sv sess;
    handle_step sv conn sess (int n) ~park:false
  | [ "wait"; sid ] ->
    let sess = session_exn sv sid in
    ensure_live sv sess;
    handle_step sv conn sess 0 ~park:true
  | [ "set"; sid; name; v ] ->
    let sess = session_exn sv sid in
    ensure_live sv sess;
    do_set sess name (int v);
    reply_ok conn []
  | [ "get"; sid; name ] ->
    let sess = session_exn sv sid in
    ensure_live sv sess;
    reply_ok conn [ string_of_int (do_get sess name) ]
  | "probe" :: sid :: names ->
    let sess = session_exn sv sid in
    ensure_live sv sess;
    reply_ok conn (List.map (fun n -> string_of_int (do_get sess n)) names)
  | [ "poke"; sid; mem; addr; v ] ->
    let sess = session_exn sv sid in
    ensure_live sv sess;
    let b = live_exn sess in
    Sim.poke_mem ~lane:b.b_lane b.b_grp.g_sim mem (int addr) (int v);
    b.b_grp.g_dirty <- true;
    reply_ok conn []
  | [ "peek"; sid; mem; addr ] ->
    let sess = session_exn sv sid in
    ensure_live sv sess;
    let b = live_exn sess in
    reply_ok conn [ string_of_int (Sim.peek_mem ~lane:b.b_lane b.b_grp.g_sim mem (int addr)) ]
  | [ "checkpoint"; sid ] ->
    let sess = session_exn sv sid in
    ensure_live sv sess;
    let dir =
      match sv.cfg.state_dir with
      | Some d -> d
      | None -> failwith "checkpoint requires the server to run with a state dir"
    in
    let b = live_exn sess in
    let state = encode_state sess (Sim.save_state ~lane:b.b_lane b.b_grp.g_sim) in
    let path =
      Bundle.save_session ~dir ~id:sess.s_id ~engine:(Sim.engine_name sess.s_engine)
        ~design:sess.s_design ~cycle:(Sim.cycle b.b_grp.g_sim) ~state
    in
    reply_ok conn [ cyc sess ] ~blob:path
  | [ "evict"; sid ] -> (
    let sess = session_exn sv sid in
    match sess.s_body with
    | Evicted _ -> reply_ok conn [ cyc sess ]
    | Live _ ->
      if sess.s_pending > 0 then failwith "evict: session has pending cycles"
      else if sess.s_lanes > 1 then failwith "evict: replicated multi-lane sessions are pinned"
      else if is_parked_on sv sess then failwith "evict: a client is waiting on this session"
      else begin
        detach sv sess;  (* no-op for sole tenants *)
        ignore (evict_session sv sess : string);
        reply_ok conn [ cyc sess ]
      end)
  | [ "resume"; sid ] ->
    let sess = session_exn sv sid in
    ensure_live sv sess;
    reply_ok conn [ cyc sess ]
  | [ "kill"; sid ] -> handle_kill sv conn sid
  | [ "list" ] -> handle_list sv conn
  | [ "stats" ] -> handle_stats sv conn
  | "watch" :: sid :: rest ->
    if not conn.k_v2 then failwith "watch requires fireaxe-service-2";
    let opts, probes = Protocol.split_options rest in
    let every =
      match List.assoc_opt "every" opts with Some v -> int v | None -> 1
    in
    if every < 1 then failwith "watch: every must be >= 1";
    if probes = [] then failwith "watch: no probes given";
    List.iter
      (fun (k, _) -> if k <> "every" then failwith (Printf.sprintf "watch: unknown option %S" k))
      opts;
    let sess = session_exn sv sid in
    ensure_live sv sess;
    (* Validate every probe now so a typo is an error reply, not a
       silently dead subscription. *)
    List.iter (fun p -> ignore (do_get sess p : int)) probes;
    let w =
      {
        w_id = sv.next_wid;
        w_sid = sess.s_id;
        w_probes = Array.of_list probes;
        w_every = every;
        w_last = [||];
        w_next = 0;
        w_sent = -1;
      }
    in
    sv.next_wid <- sv.next_wid + 1;
    conn.k_watches <- conn.k_watches @ [ w ];
    reply_ok conn [ string_of_int w.w_id ]
  | [ "unwatch"; wid ] ->
    if not conn.k_v2 then failwith "unwatch requires fireaxe-service-2";
    let wid = int wid in
    if not (List.exists (fun w -> w.w_id = wid) conn.k_watches) then
      failwith (Printf.sprintf "no such watch on this connection: %d" wid);
    conn.k_watches <- List.filter (fun w -> w.w_id <> wid) conn.k_watches;
    reply_ok conn []
  | "events" :: rest ->
    if not conn.k_v2 then failwith "events requires fireaxe-service-2";
    let opts, bare = Protocol.split_options rest in
    if bare <> [] then
      failwith (Printf.sprintf "events: unexpected word %S" (List.hd bare));
    let from =
      match List.assoc_opt "from" opts with Some v -> int v | None -> sv.ev_seq
    in
    List.iter
      (fun (k, _) -> if k <> "from" then failwith (Printf.sprintf "events: unknown option %S" k))
      opts;
    conn.k_events <- true;
    (* Replay what the journal ring still holds before going live; the
       reply's <next_seq> tells the client where the live stream will
       start, so it can detect what the ring had already forgotten. *)
    for seq = max 0 (max from (sv.ev_seq - ev_ring_len)) to sv.ev_seq - 1 do
      match sv.ev_ring.(seq mod ev_ring_len) with
      | Some e when e.e_seq = seq -> enqueue_push sv conn (event_frame e)
      | _ -> ()
    done;
    reply_ok conn [ string_of_int sv.ev_seq ]
  | [ "shutdown" ] ->
    journal sv ~kind:"shutdown" ();
    reply_ok conn [];
    sv.running <- false
  | ws -> failwith (Printf.sprintf "unknown request %S" (String.concat " " ws))

let safe_handle sv conn payload =
  try handle sv conn payload with
  | Reject msg ->
    sv.tl.t_rejected <- sv.tl.t_rejected + 1;
    Telemetry.incr sv.m_rejected;
    journal sv ~kind:"reject" ~detail:msg ();
    reply_rejected conn msg
  | Failure msg -> reply_err conn msg
  | Sim.Sim_error msg -> reply_err conn msg
  | Bundle.Bundle_error msg -> reply_err conn msg
  | Firrtl.Text.Parse_error msg -> reply_err conn ("parse: " ^ msg)
  | Firrtl.Ast.Ir_error msg -> reply_err conn ("circuit: " ^ msg)
  | Invalid_argument msg -> reply_err conn msg

(* ------------------------------------------------------------------ *)
(* Progress: the deferred-reply machinery                               *)
(* ------------------------------------------------------------------ *)

(* Generates due watch frames: for every live watched session whose
   cycle has reached the subscription's next boundary (or whose stream
   needs a resync), diff the probe values against the last pushed frame
   and queue the delta.  Watches on killed sessions are dropped;
   evicted sessions stay subscribed with a frozen cycle and resume
   streaming after resume-on-touch. *)
let push_watches sv =
  List.iter
    (fun conn ->
      if conn.k_v2 && not conn.k_dead then
        conn.k_watches <-
          List.filter
            (fun w ->
              match Hashtbl.find_opt sv.sessions w.w_sid with
              | None -> false
              | Some sess -> (
                match sess.s_body with
                | Evicted _ -> true
                | Live b -> (
                  let c = Sim.cycle b.b_grp.g_sim in
                  if w.w_last = [||] || (c >= w.w_next && c > w.w_sent) then begin
                    match
                      ensure_fresh b.b_grp;
                      Array.map (fun p -> Sim.get ~lane:b.b_lane b.b_grp.g_sim p) w.w_probes
                    with
                    | vals ->
                      let changes =
                        if w.w_last = [||] then
                          Array.to_list (Array.mapi (fun i v -> (i, v)) vals)
                        else begin
                          let acc = ref [] in
                          for i = Array.length vals - 1 downto 0 do
                            if vals.(i) <> w.w_last.(i) then acc := (i, vals.(i)) :: !acc
                          done;
                          !acc
                        end
                      in
                      enqueue_push sv conn ~sid:w.w_sid
                        (Wire.join_payload
                           (Printf.sprintf "watch %d %s" w.w_id w.w_sid)
                           (Debug.Wavestore.Codec.encode_delta ~cycle:c ~changes));
                      w.w_last <- vals;
                      w.w_sent <- c;
                      w.w_next <- c + w.w_every;
                      true
                    | exception _ -> false
                  end
                  else true)))
            conn.k_watches)
    sv.conns

(* Writes queued pushes out while the socket can take them without
   blocking the loop; what remains waits for the next pass. *)
let flush_pushes sv conn =
  if conn.k_v2 && not conn.k_dead then begin
    let writable () =
      match Unix.select [] [ conn.k_fd ] [] 0. with
      | _, _ :: _, _ -> true
      | _ -> false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    let continue = ref true in
    while !continue && not (Queue.is_empty conn.k_pushq) do
      if writable () then begin
        let _, payload = Queue.pop conn.k_pushq in
        try
          Wire.write_tagged ~label:"client" conn.k_fd ~tag:Wire.tag_push payload;
          sv.tl.t_pushes <- sv.tl.t_pushes + 1;
          Telemetry.incr sv.m_pushes
        with Wire.Closed _ ->
          conn.k_dead <- true;
          continue := false
      end
      else continue := false
    done
  end

let progress sv =
  drain_all sv;
  let t = now () in
  List.iter
    (fun conn ->
      if not conn.k_dead then
        match conn.k_parked with
        | None -> ()
        | Some (P_wait { p_sess; p_deadline }) ->
          if p_sess.s_pending = 0 then begin
            conn.k_parked <- None;
            reply_ok conn [ cyc p_sess ]
          end
          else if t >= p_deadline then begin
            (* The barrier has stalled this tenant too long: give it a
               private engine and finish its credits there. *)
            conn.k_parked <- None;
            (try
               detach sv p_sess;
               (match p_sess.s_body with Live b -> drain sv b.b_grp | Evicted _ -> ());
               if p_sess.s_pending = 0 then reply_ok conn [ cyc p_sess ]
               else reply_err conn "internal: credits undrained after detach"
             with e -> reply_err conn (Printexc.to_string e))
          end
        | Some (P_create { p_opts; p_design; p_deadline }) -> (
          (* Capacity may have freed (kill/evict/detach): retry. *)
          match
            let req = parse_create_opts p_opts in
            create_session sv req p_design
          with
          | sess ->
            conn.k_parked <- None;
            let b = live_exn sess in
            reply_ok conn
              [
                sess.s_id;
                cyc sess;
                (if List.length b.b_grp.g_members > 1 then "1" else "0");
                string_of_int b.b_grp.g_id;
                string_of_int (Sim.lanes b.b_grp.g_sim);
              ]
          | exception No_capacity msg ->
            if t >= p_deadline then begin
              conn.k_parked <- None;
              sv.tl.t_rejected <- sv.tl.t_rejected + 1;
              Telemetry.incr sv.m_rejected;
              journal sv ~kind:"reject" ~detail:(msg ^ " (queue expired)") ();
              reply_rejected conn (msg ^ " (queue expired)")
            end
          | exception e ->
            conn.k_parked <- None;
            reply_err conn (Printexc.to_string e)))
    sv.conns;
  push_watches sv;
  List.iter (flush_pushes sv) sv.conns;
  Telemetry.set sv.m_live
    (Hashtbl.fold
       (fun _ s acc -> match s.s_body with Live _ -> acc + 1 | Evicted _ -> acc)
       sv.sessions 0);
  Telemetry.set sv.m_groups (List.length sv.groups);
  Telemetry.set sv.m_subs (subscription_count sv)

(* The select timeout: tight when a parked deadline approaches or a
   subscriber still has queued pushes, lazy otherwise. *)
let loop_timeout sv =
  let t = now () in
  let base =
    if List.exists (fun c -> not (Queue.is_empty c.k_pushq)) sv.conns then 0.02
    else 0.25
  in
  List.fold_left
    (fun acc conn ->
      match conn.k_parked with
      | Some (P_wait { p_deadline; _ }) | Some (P_create { p_deadline; _ }) ->
        Float.min acc (Float.max 0.005 (p_deadline -. t))
      | None -> acc)
    base sv.conns

(* ------------------------------------------------------------------ *)
(* Event loop                                                           *)
(* ------------------------------------------------------------------ *)

let pump sv conn =
  let rec go () =
    if (not conn.k_dead) && sv.running then
      match Wire.try_read_frame conn.k_rd with
      | None -> ()
      | Some payload ->
        if conn.k_parked <> None then begin
          (* One outstanding request per connection is the contract;
             a pipelined frame means a broken client. *)
          reply_err conn "protocol: request while a reply is pending";
          conn.k_dead <- true
        end
        else begin
          safe_handle sv conn payload;
          go ()
        end
  in
  try go () with
  | Wire.Closed _ -> conn.k_dead <- true
  | Failure _ -> conn.k_dead <- true

(* A vanished client abandons its parked request; the session itself —
   and any credits already granted — survive for reconnection. *)
let prune_conns sv =
  let dead, alive = List.partition (fun c -> c.k_dead) sv.conns in
  List.iter (fun c -> try Unix.close c.k_fd with Unix.Unix_error _ -> ()) dead;
  sv.conns <- alive

(* Registers every session bundle under the state dir as an evicted
   session: a restarted server picks up exactly where eviction (or an
   explicit checkpoint) left its tenants. *)
let resurrect sv =
  match sv.cfg.state_dir with
  | None -> ()
  | Some dir ->
    List.iter
      (fun (id, _cycle, path) ->
        match Bundle.load_session ~path with
        | ck ->
          let engine =
            match Sim.engine_of_string ck.Bundle.sc_engine with
            | Ok e -> e
            | Error _ -> Sim.default_engine
          in
          let sess =
            {
              s_id = id;
              s_engine = engine;
              s_scheduler = Libdn.Scheduler.default;
              s_design = ck.Bundle.sc_design;
              s_hash = ck.Bundle.sc_design_hash;
              s_lanes = 1;
              s_body = Evicted path;
              s_cycle = ck.Bundle.sc_cycle;
              s_pending = 0;
              s_touch = 0;
              s_inputs = Hashtbl.create 8;
              s_cycles_ctr =
                Telemetry.counter sv.cfg.telemetry ("service.session." ^ id ^ ".cycles");
            }
          in
          Hashtbl.replace sv.sessions id sess
        | exception Bundle.Bundle_error _ -> ())
      (Bundle.session_list ~dir)

let run cfg =
  if Sys.unix then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sv =
    {
      cfg;
      sessions = Hashtbl.create 64;
      groups = [];
      cache = Hashtbl.create 16;
      conns = [];
      next_sid = 1;
      next_gid = 1;
      next_wid = 1;
      touch_clock = 0;
      running = true;
      started = now ();
      ev_ring = Array.make ev_ring_len None;
      ev_seq = 0;
      dropped_by = Hashtbl.create 7;
      tl =
        {
          t_created = 0;
          t_rejected = 0;
          t_queued = 0;
          t_evicted = 0;
          t_resumed = 0;
          t_killed = 0;
          t_packed = 0;
          t_detached = 0;
          t_cycles = 0;
          t_cache_hits = 0;
          t_cache_misses = 0;
          t_pushes = 0;
          t_push_dropped = 0;
        };
      m_created = Telemetry.counter cfg.telemetry "service.sessions.created";
      m_rejected = Telemetry.counter cfg.telemetry "service.sessions.rejected";
      m_evicted = Telemetry.counter cfg.telemetry "service.sessions.evicted";
      m_resumed = Telemetry.counter cfg.telemetry "service.sessions.resumed";
      m_killed = Telemetry.counter cfg.telemetry "service.sessions.killed";
      m_packed = Telemetry.counter cfg.telemetry "service.pack.attached";
      m_detached = Telemetry.counter cfg.telemetry "service.pack.detached";
      m_cycles = Telemetry.counter cfg.telemetry "service.cycles";
      m_pushes = Telemetry.counter cfg.telemetry "service.sub.pushed";
      m_push_dropped = Telemetry.counter cfg.telemetry "service.sub.dropped";
      m_live = Telemetry.gauge cfg.telemetry "service.sessions.live";
      m_groups = Telemetry.gauge cfg.telemetry "service.groups";
      m_subs = Telemetry.gauge cfg.telemetry "service.subscriptions";
    }
  in
  resurrect sv;
  let lsock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Unix.bind lsock (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen lsock 64;
  let finally () =
    List.iter (fun c -> try Unix.close c.k_fd with Unix.Unix_error _ -> ()) sv.conns;
    (try Unix.close lsock with Unix.Unix_error _ -> ());
    try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      while sv.running do
        let fds = lsock :: List.map (fun c -> c.k_fd) sv.conns in
        let readable, _, _ =
          try Unix.select fds [] [] (loop_timeout sv)
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        if List.memq lsock readable then begin
          match Unix.accept lsock with
          | fd, _ ->
            sv.conns <-
              sv.conns
              @ [
                  {
                    k_fd = fd;
                    k_rd = Wire.reader ~label:"client" fd;
                    k_hello = false;
                    k_v2 = false;
                    k_parked = None;
                    k_dead = false;
                    k_watches = [];
                    k_events = false;
                    k_pushq = Queue.create ();
                  };
                ]
          | exception Unix.Unix_error _ -> ()
        end;
        List.iter (fun conn -> if List.memq conn.k_fd readable then pump sv conn) sv.conns;
        progress sv;
        prune_conns sv
      done)
