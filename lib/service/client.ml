(* Blocking service client; see client.mli. *)

module Wire = Libdn.Wire

exception Service_error of string
exception Rejected of string

let () =
  Printexc.register_printer (function
    | Service_error m -> Some ("service error: " ^ m)
    | Rejected m -> Some ("service rejected: " ^ m)
    | _ -> None)

type t = {
  t_fd : Unix.file_descr;
  t_rd : Wire.reader;
  t_timeout : float option;
}

let int_word = Wire.int_word ~context:"service reply"

(* One round trip.  Raises [Service_error]/[Rejected] per the reply
   status; transport failures surface as [Wire.Closed]/[Wire.Timeout]. *)
let request t line ~blob =
  Wire.write_frame ~label:"service" t.t_fd (Wire.join_payload line blob);
  match Protocol.parse_reply (Wire.read_frame ?timeout:t.t_timeout t.t_rd) with
  | Protocol.Ok (ws, blob) -> (ws, blob)
  | Protocol.Error m -> raise (Service_error m)
  | Protocol.Rejected m -> raise (Rejected m)

let connect ?timeout ?(retry_for = 0.) ~socket_path () =
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec dial () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | () -> fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _)
      when Unix.gettimeofday () < deadline ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.02;
      dial ()
  in
  let fd = dial () in
  let t = { t_fd = fd; t_rd = Wire.reader ~label:"service" fd; t_timeout = timeout } in
  (match request t ("hello " ^ Protocol.schema) ~blob:"" with
  | [ s ], _ when s = Protocol.schema -> ()
  | ws, _ ->
    raise (Service_error (Printf.sprintf "bad handshake reply %S" (String.concat " " ws))));
  t

let close t = try Unix.close t.t_fd with Unix.Unix_error _ -> ()

type created = {
  c_sid : string;
  c_cycle : int;
  c_packed : bool;
  c_group : int;
  c_lanes : int;
}

let create ?(engine = "bytecode") ?(lanes = 1) ?(scheduler = "seq") ?(pack = true)
    ?(queue = false) t ~design =
  let flag b = if b then "1" else "0" in
  let line =
    Printf.sprintf "create engine=%s lanes=%d scheduler=%s pack=%s queue=%s" engine lanes
      scheduler (flag pack) (flag queue)
  in
  match request t line ~blob:design with
  | [ sid; cycle; packed; group; glanes ], _ ->
    {
      c_sid = sid;
      c_cycle = int_word cycle;
      c_packed = packed = "1";
      c_group = int_word group;
      c_lanes = int_word glanes;
    }
  | ws, _ ->
    raise (Service_error (Printf.sprintf "bad create reply %S" (String.concat " " ws)))

let one_int who = function
  | [ v ], _ -> int_word v
  | ws, _ -> raise (Service_error (Printf.sprintf "bad %s reply %S" who (String.concat " " ws)))

let step t ~sid n = one_int "step" (request t (Printf.sprintf "step %s %d" sid n) ~blob:"")

let step_async t ~sid n =
  match request t (Printf.sprintf "step_async %s %d" sid n) ~blob:"" with
  | [ cycle; pending ], _ -> (int_word cycle, int_word pending)
  | ws, _ ->
    raise (Service_error (Printf.sprintf "bad step_async reply %S" (String.concat " " ws)))

let wait t ~sid = one_int "wait" (request t ("wait " ^ sid) ~blob:"")

let set t ~sid name v =
  ignore (request t (Printf.sprintf "set %s %s %d" sid name v) ~blob:"")

let get t ~sid name = one_int "get" (request t (Printf.sprintf "get %s %s" sid name) ~blob:"")

let probe t ~sid names =
  let ws, _ = request t (String.concat " " ("probe" :: sid :: names)) ~blob:"" in
  if List.length ws <> List.length names then
    raise
      (Service_error
         (Printf.sprintf "probe: %d values for %d signals" (List.length ws)
            (List.length names)));
  List.map int_word ws

let poke_mem t ~sid mem addr v =
  ignore (request t (Printf.sprintf "poke %s %s %d %d" sid mem addr v) ~blob:"")

let peek_mem t ~sid mem addr =
  one_int "peek" (request t (Printf.sprintf "peek %s %s %d" sid mem addr) ~blob:"")

let checkpoint t ~sid =
  match request t ("checkpoint " ^ sid) ~blob:"" with
  | [ cycle ], path -> (int_word cycle, path)
  | ws, _ ->
    raise (Service_error (Printf.sprintf "bad checkpoint reply %S" (String.concat " " ws)))

let evict t ~sid = one_int "evict" (request t ("evict " ^ sid) ~blob:"")
let resume t ~sid = one_int "resume" (request t ("resume " ^ sid) ~blob:"")
let kill t ~sid = ignore (request t ("kill " ^ sid) ~blob:"")

let list t =
  match request t "list" ~blob:"" with
  | [ n ], blob ->
    let rows =
      String.split_on_char '\n' blob
      |> List.filter (fun l -> String.trim l <> "")
      |> List.map Protocol.row_of_line
    in
    if List.length rows <> int_word n then
      raise
        (Service_error
           (Printf.sprintf "list: %d rows announced, %d sent" (int_word n) (List.length rows)));
    rows
  | ws, _ -> raise (Service_error (Printf.sprintf "bad list reply %S" (String.concat " " ws)))

let stats t =
  let _, blob = request t "stats" ~blob:"" in
  match Telemetry.Json.parse blob with
  | Ok j -> j
  | Error m -> raise (Service_error ("stats: unparseable JSON: " ^ m))

let shutdown t = ignore (request t "shutdown" ~blob:"")
