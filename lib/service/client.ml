(* Blocking service client; see client.mli. *)

module Wire = Libdn.Wire

exception Service_error of string
exception Rejected of string

let () =
  Printexc.register_printer (function
    | Service_error m -> Some ("service error: " ^ m)
    | Rejected m -> Some ("service rejected: " ^ m)
    | _ -> None)

(* Client-side state of one watch subscription: probe names in server
   index order plus the reconstructed snapshot the deltas patch. *)
type sub = {
  sb_sid : string;
  sb_probes : string array;
  mutable sb_cycle : int;
  mutable sb_values : int array;  (* [||] until the first frame *)
}

type push =
  | Watch of {
      w_wid : int;
      w_sid : string;
      w_cycle : int;
      w_changes : (string * int) list;
      w_values : (string * int) list;  (* full snapshot after the delta *)
    }
  | Event of { e_seq : int; e_json : Telemetry.Json.t }

type t = {
  t_fd : Unix.file_descr;
  t_rd : Wire.reader;
  t_timeout : float option;
  t_subs : (int, sub) Hashtbl.t;
  t_pushes : push Queue.t;  (* decoded pushes not yet handed out *)
}

let int_word = Wire.int_word ~context:"service reply"

(* Decodes one push frame, patches the subscription snapshot, and
   queues the typed push for [next_push].  Frames for a wid we no
   longer track (a push racing our [unwatch]) are dropped. *)
let stash_push t payload =
  match Protocol.parse_push payload with
  | Protocol.Push_watch { pw_wid; pw_sid; pw_cycle; pw_changes } -> (
    match Hashtbl.find_opt t.t_subs pw_wid with
    | None -> ()
    | Some sub ->
      if Array.length sub.sb_values = 0 then
        sub.sb_values <- Array.make (Array.length sub.sb_probes) 0;
      List.iter
        (fun (i, v) ->
          if i < 0 || i >= Array.length sub.sb_probes then
            raise
              (Service_error
                 (Printf.sprintf "watch %d: probe index %d out of range" pw_wid i));
          sub.sb_values.(i) <- v)
        pw_changes;
      sub.sb_cycle <- pw_cycle;
      let name i = sub.sb_probes.(i) in
      Queue.add
        (Watch
           {
             w_wid = pw_wid;
             w_sid = pw_sid;
             w_cycle = pw_cycle;
             w_changes = List.map (fun (i, v) -> (name i, v)) pw_changes;
             w_values = Array.to_list (Array.mapi (fun i v -> (name i, v)) sub.sb_values);
           })
        t.t_pushes)
  | Protocol.Push_event { pe_seq; pe_json } ->
    let json =
      match Telemetry.Json.parse pe_json with
      | Ok j -> j
      | Error m -> raise (Service_error ("event push: unparseable JSON: " ^ m))
    in
    Queue.add (Event { e_seq = pe_seq; e_json = json }) t.t_pushes

(* Reads frames until the awaited reply, stashing any pushes that
   arrive in between.  An untagged frame (first byte is no tag) is a
   fireaxe-service-1 server's reply, accepted as-is for interop. *)
let read_reply ?timeout t =
  let rec go () =
    let payload = Wire.read_frame ?timeout t.t_rd in
    if payload = "" then raise (Service_error "empty frame from server")
    else
      match payload.[0] with
      | c when c = Wire.tag_push ->
        stash_push t (snd (Wire.untag_frame payload));
        go ()
      | c when c = Wire.tag_reply -> snd (Wire.untag_frame payload)
      | _ -> payload
  in
  go ()

(* One round trip.  Raises [Service_error]/[Rejected] per the reply
   status; transport failures surface as [Wire.Closed]/[Wire.Timeout]. *)
let request t line ~blob =
  Wire.write_frame ~label:"service" t.t_fd (Wire.join_payload line blob);
  match Protocol.parse_reply (read_reply ?timeout:t.t_timeout t) with
  | Protocol.Ok (ws, blob) -> (ws, blob)
  | Protocol.Error m -> raise (Service_error m)
  | Protocol.Rejected m -> raise (Rejected m)

let connect ?timeout ?(retry_for = 0.) ~socket_path () =
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec dial () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | () -> fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _)
      when Unix.gettimeofday () < deadline ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.02;
      dial ()
  in
  let fd = dial () in
  let t =
    {
      t_fd = fd;
      t_rd = Wire.reader ~label:"service" fd;
      t_timeout = timeout;
      t_subs = Hashtbl.create 7;
      t_pushes = Queue.create ();
    }
  in
  (match request t ("hello " ^ Protocol.schema) ~blob:"" with
  | [ s ], _ when s = Protocol.schema -> ()
  | ws, _ ->
    raise (Service_error (Printf.sprintf "bad handshake reply %S" (String.concat " " ws))));
  t

let close t = try Unix.close t.t_fd with Unix.Unix_error _ -> ()

type created = {
  c_sid : string;
  c_cycle : int;
  c_packed : bool;
  c_group : int;
  c_lanes : int;
}

let create ?(engine = "bytecode") ?(lanes = 1) ?(scheduler = "seq") ?(pack = true)
    ?(queue = false) t ~design =
  let flag b = if b then "1" else "0" in
  let line =
    Printf.sprintf "create engine=%s lanes=%d scheduler=%s pack=%s queue=%s" engine lanes
      scheduler (flag pack) (flag queue)
  in
  match request t line ~blob:design with
  | [ sid; cycle; packed; group; glanes ], _ ->
    {
      c_sid = sid;
      c_cycle = int_word cycle;
      c_packed = packed = "1";
      c_group = int_word group;
      c_lanes = int_word glanes;
    }
  | ws, _ ->
    raise (Service_error (Printf.sprintf "bad create reply %S" (String.concat " " ws)))

let one_int who = function
  | [ v ], _ -> int_word v
  | ws, _ -> raise (Service_error (Printf.sprintf "bad %s reply %S" who (String.concat " " ws)))

let step t ~sid n = one_int "step" (request t (Printf.sprintf "step %s %d" sid n) ~blob:"")

let step_async t ~sid n =
  match request t (Printf.sprintf "step_async %s %d" sid n) ~blob:"" with
  | [ cycle; pending ], _ -> (int_word cycle, int_word pending)
  | ws, _ ->
    raise (Service_error (Printf.sprintf "bad step_async reply %S" (String.concat " " ws)))

let wait t ~sid = one_int "wait" (request t ("wait " ^ sid) ~blob:"")

let set t ~sid name v =
  ignore (request t (Printf.sprintf "set %s %s %d" sid name v) ~blob:"")

let get t ~sid name = one_int "get" (request t (Printf.sprintf "get %s %s" sid name) ~blob:"")

let probe t ~sid names =
  let ws, _ = request t (String.concat " " ("probe" :: sid :: names)) ~blob:"" in
  if List.length ws <> List.length names then
    raise
      (Service_error
         (Printf.sprintf "probe: %d values for %d signals" (List.length ws)
            (List.length names)));
  List.map int_word ws

let poke_mem t ~sid mem addr v =
  ignore (request t (Printf.sprintf "poke %s %s %d %d" sid mem addr v) ~blob:"")

let peek_mem t ~sid mem addr =
  one_int "peek" (request t (Printf.sprintf "peek %s %s %d" sid mem addr) ~blob:"")

let checkpoint t ~sid =
  match request t ("checkpoint " ^ sid) ~blob:"" with
  | [ cycle ], path -> (int_word cycle, path)
  | ws, _ ->
    raise (Service_error (Printf.sprintf "bad checkpoint reply %S" (String.concat " " ws)))

let evict t ~sid = one_int "evict" (request t ("evict " ^ sid) ~blob:"")
let resume t ~sid = one_int "resume" (request t ("resume " ^ sid) ~blob:"")
let kill t ~sid = ignore (request t ("kill " ^ sid) ~blob:"")

let list t =
  match request t "list" ~blob:"" with
  | [ n ], blob ->
    let rows =
      String.split_on_char '\n' blob
      |> List.filter (fun l -> String.trim l <> "")
      |> List.map Protocol.row_of_line
    in
    if List.length rows <> int_word n then
      raise
        (Service_error
           (Printf.sprintf "list: %d rows announced, %d sent" (int_word n) (List.length rows)));
    rows
  | ws, _ -> raise (Service_error (Printf.sprintf "bad list reply %S" (String.concat " " ws)))

let stats t =
  let _, blob = request t "stats" ~blob:"" in
  match Telemetry.Json.parse blob with
  | Ok j -> j
  | Error m -> raise (Service_error ("stats: unparseable JSON: " ^ m))

let shutdown t = ignore (request t "shutdown" ~blob:"")

(* ------------------------------------------------------------------ *)
(* Subscriptions                                                       *)
(* ------------------------------------------------------------------ *)

let subscribe ?(every = 1) t ~sid ~probes =
  if probes = [] then invalid_arg "Client.subscribe: no probes";
  let line =
    String.concat " " ("watch" :: sid :: Printf.sprintf "every=%d" every :: probes)
  in
  match request t line ~blob:"" with
  | [ wid ], _ ->
    let wid = int_word wid in
    Hashtbl.replace t.t_subs wid
      { sb_sid = sid; sb_probes = Array.of_list probes; sb_cycle = -1; sb_values = [||] };
    wid
  | ws, _ ->
    raise (Service_error (Printf.sprintf "bad watch reply %S" (String.concat " " ws)))

let unsubscribe t ~wid =
  ignore (request t (Printf.sprintf "unwatch %d" wid) ~blob:"");
  Hashtbl.remove t.t_subs wid

let events ?from t =
  let line =
    match from with
    | Some n -> Printf.sprintf "events from=%d" n
    | None -> "events"
  in
  one_int "events" (request t line ~blob:"")

let next_push ?timeout t =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
  let rec go () =
    if not (Queue.is_empty t.t_pushes) then Some (Queue.pop t.t_pushes)
    else begin
      let left =
        match deadline with
        | None -> None
        | Some d -> Some (Float.max 0.0001 (d -. Unix.gettimeofday ()))
      in
      match Wire.read_frame ?timeout:left t.t_rd with
      | exception Wire.Timeout _ -> None
      | payload ->
        if payload = "" then raise (Service_error "empty frame from server")
        else if payload.[0] = Wire.tag_push then begin
          stash_push t (snd (Wire.untag_frame payload));
          go ()
        end
        else
          raise
            (Service_error
               (Printf.sprintf "unexpected reply frame while idle: %S" payload))
    end
  in
  go ()
