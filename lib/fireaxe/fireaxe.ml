(* FireAxe: partitioned FPGA-accelerated simulation of large-scale RTL
   designs — the library's public entry point.

   The typical flow mirrors the paper:

   {ol
   {- build a target circuit ({!Firrtl.Builder}, or the generators in
      [Socgen]);}
   {- pick a partitioning {!Spec.config} — mode (exact/fast) and module
      selection (explicit instance paths or NoC router indices);}
   {- {!compile} it with FireRipper into a {!Fireripper.Plan.t}; inspect
      the {!report} for boundary widths and chain lengths;}
   {- {!instantiate} the plan as an executable LI-BDN network and run
      it; or {!estimate_rate} its simulation performance on a modeled
      host platform ({!Platform});}
   {- {!validate} a design end to end: monolithic vs exact-mode (always
      cycle-identical) vs fast-mode (bounded error), as in Table II.}} *)

module Spec = Fireripper.Spec
module Plan = Fireripper.Plan
module Compile = Fireripper.Compile
module Runtime = Fireripper.Runtime
module Report = Fireripper.Report
module Hw = Fireripper.Hw
module Auto = Fireripper.Auto
module Counters = Fireripper.Counters
module Tracer = Fireripper.Tracer
module Clockdiv = Goldengate.Clockdiv
module Resilience = Resilience
module Debug = Debug

(** Compiles a monolithic circuit into a partition plan. *)
let compile = Compile.compile

(** Quick feedback about a plan: units, interface widths, chain lengths,
    crossings per cycle. *)
let report plan = Report.build plan

(** The domain-placement policy of an instantiation: [Platform.Place]
    re-exported so callers can say [Fireaxe.Place.Auto]. *)
module Place = Platform.Place

(* The placement assignment for [plan] under [policy], weighted by a
   previous run's [profile] when it recorded one (else the static
   resource estimate).  [None] policy = spread, the historical
   one-domain-per-partition mapping. *)
let placement_groups ?profile ?placement plan =
  match placement with
  | None -> None
  | Some policy -> Platform.Place.groups ?profile ~policy plan

let instantiate ?fame5 ?scheduler ?batch_cycles ?spin_budget ?placement
    ?telemetry ?profile ?engine ?lanes plan =
  let groups = placement_groups ?profile ?placement plan in
  Runtime.instantiate ?fame5 ?scheduler ?batch_cycles ?spin_budget ?groups
    ?telemetry ?profile ?engine ?lanes plan

(** Instantiates [plan] with [remote_units] hosted in worker processes
    and wraps the handle in a crash-recovering supervisor: durable
    checkpoints under [checkpoint_dir] every [every] cycles, dead
    workers respawned under [policy], optional seeded [chaos].  Drive
    it with {!Resilience.Supervisor.run}; {!Resilience.Supervisor.close}
    when done. *)
let supervise ?scheduler ?batch_cycles ?spin_budget ?placement ?read_timeout
    ?telemetry ?profile ?engine ?lanes ?checkpoint_dir ?every ?policy ?chaos
    ?on_event ~worker ~remote_units plan =
  let groups = placement_groups ?profile ?placement plan in
  let handle, _conns =
    Runtime.instantiate_remote ?scheduler ?batch_cycles ?spin_budget ?groups
      ?read_timeout ?telemetry ?profile ?engine ?lanes ~worker ~remote_units
      plan
  in
  Resilience.Supervisor.create ?checkpoint_dir ?every ?policy ?chaos ?on_event
    ~worker handle

(* ------------------------------------------------------------------ *)
(* Running to a condition                                              *)
(* ------------------------------------------------------------------ *)

(** Steps a monolithic simulation until [finished] (register predicate)
    holds; returns the cycle count. *)
let run_monolithic_until circuit ~setup ~finished ~max_cycles =
  let sim = Rtlsim.Sim.of_circuit circuit in
  setup ~poke:(fun ~mem addr v -> Rtlsim.Sim.poke_mem sim mem addr v);
  Rtlsim.Sim.run_until sim ~max_cycles (fun s -> finished ~peek:(Rtlsim.Sim.get s))

(** Runs a partitioned simulation cycle by cycle until [finished] holds
    on the partitioned state; returns the cycle count.  [peek] resolves
    flattened register names in whichever unit holds them. *)
let run_partitioned_until handle ~setup ~finished ~max_cycles =
  setup ~poke:(fun ~mem addr v ->
      let u = Runtime.locate handle mem in
      Rtlsim.Sim.poke_mem (Runtime.sim_of handle u) mem addr v);
  let peek name =
    let u = Runtime.locate handle name in
    Rtlsim.Sim.get (Runtime.sim_of handle u) name
  in
  let rec go c =
    if c > max_cycles then
      failwith "run_partitioned_until: max cycles exceeded"
    else begin
      Runtime.run handle ~cycles:c;
      if finished ~peek then c else go (c + 1)
    end
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Validation (the Table II methodology)                               *)
(* ------------------------------------------------------------------ *)

type validation = {
  v_name : string;
  v_monolithic_cycles : int;
  v_exact_cycles : int;
  v_fast_cycles : int;
  v_exact_error_pct : float;
  v_fast_error_pct : float;
  v_divergence : Debug.Capture.divergence option;
      (** first divergent (cycle, signal) between the monolithic and
          exact-partitioned runs, when [probes] were given *)
}

let error_pct ~reference cycles =
  100. *. Float.abs (float_of_int (cycles - reference)) /. float_of_int reference

(** Runs the same workload monolithically and exact-partitioned side by
    side for [cycles] target cycles, capturing [probes] on both, and
    returns the first divergent (cycle, signal) — [None] certifies the
    partitioning cycle-exact over the watched signals.  [mode] defaults
    to exact; pass [Spec.Fast] to measure where the injected boundary
    latency first becomes architecturally visible. *)
let wave_diff ?(scheduler = Libdn.Scheduler.default) ?(mode = Spec.Exact) ?engine
    ~circuit ~selection ?(setup = fun ~poke:_ -> ()) ~probes ~cycles () =
  let mono = Rtlsim.Sim.of_circuit ?engine (circuit ()) in
  setup ~poke:(fun ~mem addr v -> Rtlsim.Sim.poke_mem mono mem addr v);
  let config = { Spec.default_config with Spec.mode; selection } in
  let plan = compile ~config (circuit ()) in
  let handle = instantiate ~scheduler ?engine plan in
  setup ~poke:(fun ~mem addr v ->
      let u = Runtime.locate handle mem in
      Rtlsim.Sim.poke_mem (Runtime.sim_of handle u) mem addr v);
  let ca = Debug.Capture.of_sim mono ~probes in
  let cb = Debug.Capture.of_handle ~channels:false handle ~probes in
  for c = 1 to cycles do
    Rtlsim.Sim.step mono;
    Runtime.run handle ~cycles:c;
    Debug.Capture.sample ca ~cycle:c;
    Debug.Capture.sample cb ~cycle:c
  done;
  Debug.Capture.diff ca cb

(** Runs the same workload monolithically, exact-partitioned and
    fast-partitioned, and reports cycle counts and error rates.
    [circuit] is re-generated per run so simulations are independent.
    When [probes] are given, a side-by-side {!wave_diff} of the
    monolithic and exact runs localizes any divergence. *)
let validate ?(scheduler = Libdn.Scheduler.default) ?batch_cycles ?spin_budget
    ?placement ?engine ?lanes ?profile ?(probes = []) ?wave_out ~name ~circuit
    ~selection ?(setup = fun ~poke:_ -> ()) ~finished ?(max_cycles = 1_000_000)
    () =
  let mono =
    run_monolithic_until (circuit ()) ~setup ~finished ~max_cycles
  in
  (match wave_out with
  | None -> ()
  | Some path ->
    (* The golden reference trace of the validated workload, replayed
       monolithically over [probes] into the compact binary store. *)
    if probes = [] then invalid_arg "Fireaxe.validate: wave_out requires probes";
    let sim = Rtlsim.Sim.of_circuit (circuit ()) in
    setup ~poke:(fun ~mem addr v -> Rtlsim.Sim.poke_mem sim mem addr v);
    let cap = Debug.Capture.of_sim sim ~probes in
    for c = 1 to mono do
      Rtlsim.Sim.step sim;
      Debug.Capture.sample cap ~cycle:c
    done;
    Debug.Capture.save_wave cap ~path);
  let partitioned mode =
    let config = { Spec.default_config with Spec.mode; selection } in
    let plan = compile ~config (circuit ()) in
    let handle =
      instantiate ~scheduler ?batch_cycles ?spin_budget ?placement ?engine
        ?lanes ?profile plan
    in
    run_partitioned_until handle ~setup ~finished ~max_cycles
  in
  let exact = partitioned Spec.Exact in
  let fast = partitioned Spec.Fast in
  let divergence =
    if probes = [] then None
    else wave_diff ~scheduler ~circuit ~selection ~setup ~probes ~cycles:mono ()
  in
  {
    v_name = name;
    v_monolithic_cycles = mono;
    v_exact_cycles = exact;
    v_fast_cycles = fast;
    v_exact_error_pct = error_pct ~reference:mono exact;
    v_fast_error_pct = error_pct ~reference:mono fast;
    v_divergence = divergence;
  }

(* ------------------------------------------------------------------ *)
(* Divergence hunting                                                  *)
(* ------------------------------------------------------------------ *)

type divergence = {
  d_cycle : int;
  d_signal : string;
  d_golden : int;
  d_partitioned : int;
}

(** Finds the first cycle at which any of [signals] differs between a
    golden monolithic simulation and a partitioned run — the §V-A
    debugging workflow.  The scan advances in [stride]-cycle windows,
    checkpointing the partitioned network and snapshotting the golden
    simulation at each window start; when a window ends divergent, both
    are rolled back and replayed cycle by cycle to pinpoint the first
    bad cycle and signal.  Returns [None] if no divergence appears
    within [max_cycles]. *)
let find_divergence ~golden ~handle ~signals ?(stride = 500) ~max_cycles () =
  (* One batched reader per side: the partitioned probes resolve into
     whichever unit holds them — a local simulator or a remote worker
     (one [sample] round trip per worker). *)
  let pb = Debug.Capture.resolve handle signals in
  let golden_read () =
    Array.of_list (List.map (Rtlsim.Sim.get golden) signals)
  in
  let differs () = golden_read () <> pb.Debug.Capture.pb_read () in
  let run_both ~upto =
    while Rtlsim.Sim.cycle golden < upto do
      Rtlsim.Sim.step golden
    done;
    Runtime.run handle ~cycles:upto
  in
  let rec window start =
    if start >= max_cycles then None
    else begin
      let upto = min max_cycles (start + stride) in
      let golden_state = Rtlsim.Sim.save_state golden in
      let restore_handle = Runtime.checkpoint handle in
      run_both ~upto;
      if not (differs ()) then window upto
      else begin
        (* Roll back and replay this window one cycle at a time,
           capturing every watched signal on both sides; the capture
           diff pinpoints the first divergent (cycle, signal).
           [restore_state] restores the cycle counter along with the
           architectural state, so the replay resumes right at the
           window start. *)
        Rtlsim.Sim.restore_state golden golden_state;
        restore_handle ();
        let ca = Debug.Capture.of_sim golden ~probes:signals in
        let cb = Debug.Capture.of_probes pb in
        let rec fine c =
          if c > upto then None
          else begin
            run_both ~upto:c;
            Debug.Capture.sample ca ~cycle:c;
            Debug.Capture.sample cb ~cycle:c;
            match Debug.Capture.diff ca cb with
            | Some dv ->
              Some
                {
                  d_cycle = dv.Debug.Capture.dv_cycle;
                  d_signal = dv.Debug.Capture.dv_signal;
                  d_golden = dv.Debug.Capture.dv_a;
                  d_partitioned = dv.Debug.Capture.dv_b;
                }
            | None -> fine (c + 1)
          end
        in
        fine (Rtlsim.Sim.cycle golden + 1)
      end
    end
  in
  window 0

(* ------------------------------------------------------------------ *)
(* Scheduler cross-checking                                            *)
(* ------------------------------------------------------------------ *)

(** Instantiates [plan] twice — once per scheduler — runs both for
    [cycles] target cycles, and compares every unit's full architectural
    state (registers, memories, cycle counter).  Returns the names of
    mismatching units: [[]] certifies that the parallel scheduler is
    cycle-identical to the sequential reference on this plan. *)
let crosscheck_schedulers ?(cycles = 100) ?batch_cycles ?placement plan =
  let snapshot scheduler =
    let handle = instantiate ~scheduler ?batch_cycles ?placement plan in
    Runtime.run handle ~cycles;
    Array.map
      (fun (u : Plan.unit_part) ->
        ( u.Plan.u_name,
          Rtlsim.Sim.state_to_string
            (Rtlsim.Sim.save_state (Runtime.sim_of handle u.Plan.u_index)) ))
      plan.Plan.p_units
  in
  let seq = snapshot Libdn.Scheduler.Sequential in
  let par = snapshot Libdn.Scheduler.Parallel in
  Array.to_list seq
  |> List.filteri (fun i (_, state) -> state <> snd par.(i))
  |> List.map fst

(* ------------------------------------------------------------------ *)
(* Automated partitioning (§VIII-B)                                    *)
(* ------------------------------------------------------------------ *)

(** Automatically assigns the main module's instances to [n_fpgas]
    partitions using the RTL-level LUT estimator and wire-width
    connectivity, then compiles the resulting plan.  Returns the plan
    together with the assignment (per-bin instances, loads, cut width). *)
let auto_partition ?(mode = Spec.Exact) ?(board = Platform.Fpga.u250) ?(threshold = 0.85)
    ~n_fpgas circuit =
  let estimator =
    {
      Fireripper.Auto.est_luts =
        (fun c module_name ->
          let sub =
            Firrtl.Hierarchy.prune { c with Firrtl.Ast.main = module_name }
          in
          (Platform.Resource.estimate_circuit sub).Platform.Resource.luts);
      Fireripper.Auto.est_capacity =
        int_of_float (threshold *. float_of_int board.Platform.Fpga.luts);
    }
  in
  let assignment = Fireripper.Auto.assign ~estimator ~n_fpgas circuit in
  let config =
    {
      Spec.default_config with
      Spec.mode;
      Spec.selection = Fireripper.Auto.to_selection assignment;
    }
  in
  (Compile.compile ~config circuit, assignment)

(* ------------------------------------------------------------------ *)
(* Platform estimates                                                  *)
(* ------------------------------------------------------------------ *)

(** Estimated simulation rate (target Hz) of a plan on the modeled host
    platform. *)
let estimate_rate ?(freq_mhz = 30.) ?(threads = fun _ -> 1)
    ?(transport = Platform.Transport.Qsfp) plan =
  Platform.Perf.rate
    (Platform.Perf.of_plan
       ~freq_mhz:(fun _ -> freq_mhz)
       ~threads
       ~transport:(fun ~src:_ ~dst:_ -> transport)
       plan)

(** Per-unit FPGA resource utilization of a plan on [board].
    [threads unit] declares FAME-5 thread counts (shared logic). *)
let utilization ?(board = Platform.Fpga.u250) ?(threads = fun _ -> 1) plan =
  Array.to_list plan.Plan.p_units
  |> List.map (fun (u : Plan.unit_part) ->
         let est = Platform.Resource.estimate_unit ~threads:(threads u.Plan.u_index) u in
         ( u.Plan.u_name,
           est,
           Platform.Fpga.utilization board est,
           Platform.Fpga.fits board est ))
