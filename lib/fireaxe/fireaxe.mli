(** FireAxe: partitioned FPGA-accelerated simulation of large-scale RTL
    designs — the library's public entry point.

    Typical flow: build a circuit (the [Firrtl] builder or [Socgen]
    generators), {!compile} a partitioning with FireRipper, inspect the
    {!report}, then either {!instantiate} and run the LI-BDN network,
    price it with {!estimate_rate}, or {!validate} end to end (the
    Table II methodology). *)

module Spec = Fireripper.Spec
module Plan = Fireripper.Plan
module Compile = Fireripper.Compile
module Runtime = Fireripper.Runtime
module Report = Fireripper.Report
module Hw = Fireripper.Hw
module Auto = Fireripper.Auto

(** AutoCounter-style periodic statistics sampling from a running
    partitioned simulation. *)
module Counters = Fireripper.Counters

(** TracerV-style committed-instruction tracing, monolithic or
    partitioned. *)
module Tracer = Fireripper.Tracer

(** Multi-clock support: enable-gate a module to a slower clock domain
    before partitioning. *)
module Clockdiv = Goldengate.Clockdiv

(** Durable checkpoints, restart policies, crash-recovering
    supervision, and deterministic fault injection. *)
module Resilience = Resilience

(** Partition-aware waveform capture ({!Debug.Capture}) and the
    post-mortem flight recorder ({!Debug.Flight}). *)
module Debug = Debug

(** Static load-balanced domain placement ({!Platform.Place}
    re-exported): [Place.Auto] bin-packs partitions onto the available
    host domains by profiled or estimated load; [Place.Spread] keeps
    the historical one-domain-per-partition mapping. *)
module Place = Platform.Place

val compile : ?config:Spec.config -> Firrtl.Ast.circuit -> Plan.t
val report : Plan.t -> Report.t

(** See {!Fireripper.Runtime.instantiate}.  [lanes] gives every
    non-FAME-5 unit engine that many execution lanes (N identical
    copies advanced in lockstep; bytecode engine only).

    [batch_cycles] caps cycle-batched token exchange — the software
    analogue of the paper's fast-mode crossing amortization (1 =
    per-cycle, the default; bit-exact either way by LI-BDN
    determinism).  [spin_budget] tunes the parallel scheduler's
    spin-then-park idle policy (0 = never spin).  [placement] picks the
    partition-to-domain assignment; [Place.Auto] weighs units by
    [profile]'s load model when it recorded one (a previous run's
    measured truth), else by the static resource estimate. *)
val instantiate :
  ?fame5:bool ->
  ?scheduler:Libdn.Scheduler.t ->
  ?batch_cycles:int ->
  ?spin_budget:int ->
  ?placement:Place.policy ->
  ?telemetry:Telemetry.t ->
  ?profile:Telemetry.Profile.t ->
  ?engine:Rtlsim.Sim.engine ->
  ?lanes:int ->
  Plan.t ->
  Runtime.handle

(** Instantiates [plan] with [remote_units] hosted in worker processes
    (spawned from the [worker] binary) and wraps the handle in a
    crash-recovering supervisor: durable checkpoint bundles under
    [checkpoint_dir] every [every] target cycles, dead workers
    respawned under [policy] and rolled back from the last bundle,
    optional seeded [chaos] fault injection.  Drive it with
    {!Resilience.Supervisor.run}; {!Resilience.Supervisor.close} the
    workers when done. *)
val supervise :
  ?scheduler:Libdn.Scheduler.t ->
  ?batch_cycles:int ->
  ?spin_budget:int ->
  ?placement:Place.policy ->
  ?read_timeout:float ->
  ?telemetry:Telemetry.t ->
  ?profile:Telemetry.Profile.t ->
  ?engine:Rtlsim.Sim.engine ->
  ?lanes:int ->
  ?checkpoint_dir:string ->
  ?every:int ->
  ?policy:Resilience.Policy.t ->
  ?chaos:Resilience.Chaos.t ->
  ?on_event:(Resilience.Supervisor.event -> unit) ->
  worker:string ->
  remote_units:int list ->
  Plan.t ->
  Resilience.Supervisor.t

(** Steps a monolithic simulation to [finished]; returns the cycle. *)
val run_monolithic_until :
  Firrtl.Ast.circuit ->
  setup:(poke:(mem:string -> int -> int -> unit) -> unit) ->
  finished:(peek:(string -> int) -> bool) ->
  max_cycles:int ->
  int

(** Runs a partitioned simulation cycle by cycle to [finished]. *)
val run_partitioned_until :
  Runtime.handle ->
  setup:(poke:(mem:string -> int -> int -> unit) -> unit) ->
  finished:(peek:(string -> int) -> bool) ->
  max_cycles:int ->
  int

type validation = {
  v_name : string;
  v_monolithic_cycles : int;
  v_exact_cycles : int;
  v_fast_cycles : int;
  v_exact_error_pct : float;
  v_fast_error_pct : float;
  v_divergence : Debug.Capture.divergence option;
      (** first divergent (cycle, signal) between the monolithic and
          exact-partitioned runs, when [probes] were given *)
}

(** Runs the same workload monolithically and exact-partitioned side by
    side for [cycles] target cycles, capturing [probes] on both, and
    returns the first divergent (cycle, signal) — [None] certifies the
    partitioning cycle-exact over the watched signals.  [mode] defaults
    to exact; pass [Spec.Fast] to measure where the injected boundary
    latency first becomes architecturally visible. *)
val wave_diff :
  ?scheduler:Libdn.Scheduler.t ->
  ?mode:Spec.mode ->
  ?engine:Rtlsim.Sim.engine ->
  circuit:(unit -> Firrtl.Ast.circuit) ->
  selection:Spec.selection ->
  ?setup:(poke:(mem:string -> int -> int -> unit) -> unit) ->
  probes:string list ->
  cycles:int ->
  unit ->
  Debug.Capture.divergence option

(** Runs the same workload monolithically, exact-partitioned and
    fast-partitioned (Table II): exact is always cycle-identical.
    [scheduler] picks the execution policy of the partitioned runs;
    [engine] their evaluation engine and [lanes] its lane count (the
    partitioned runs then advance N broadcast-identical copies in
    lockstep — a vectorization smoke test on top of the validation);
    [profile] threads a hot-path profiling sink into the partitioned
    runs (both exact and fast accumulate into it).
    When [probes] are given, a side-by-side {!wave_diff} of the
    monolithic and exact runs localizes any divergence into
    [v_divergence].  [wave_out] (requires [probes]) additionally writes
    the golden monolithic trace of the workload to that path in the
    compact {!Debug.Wavestore} binary format. *)
val validate :
  ?scheduler:Libdn.Scheduler.t ->
  ?batch_cycles:int ->
  ?spin_budget:int ->
  ?placement:Place.policy ->
  ?engine:Rtlsim.Sim.engine ->
  ?lanes:int ->
  ?profile:Telemetry.Profile.t ->
  ?probes:string list ->
  ?wave_out:string ->
  name:string ->
  circuit:(unit -> Firrtl.Ast.circuit) ->
  selection:Spec.selection ->
  ?setup:(poke:(mem:string -> int -> int -> unit) -> unit) ->
  finished:(peek:(string -> int) -> bool) ->
  ?max_cycles:int ->
  unit ->
  validation

type divergence = {
  d_cycle : int;
  d_signal : string;
  d_golden : int;
  d_partitioned : int;
}

(** Finds the first cycle at which any of [signals] differs between a
    golden monolithic simulation and a partitioned run, striding in
    checkpointed windows and rolling back to pinpoint the exact cycle
    (the §V-A debugging workflow). *)
val find_divergence :
  golden:Rtlsim.Sim.t ->
  handle:Runtime.handle ->
  signals:string list ->
  ?stride:int ->
  max_cycles:int ->
  unit ->
  divergence option

(** Instantiates [plan] under both schedulers, runs [cycles] target
    cycles each, and compares every unit's architectural state
    (registers, memories, cycle counter).  Returns the names of
    mismatching units — [[]] certifies scheduler equivalence.
    [batch_cycles]/[placement] apply to both runs, so a batched,
    fused-domain parallel run is checked against the batched sequential
    reference. *)
val crosscheck_schedulers :
  ?cycles:int ->
  ?batch_cycles:int ->
  ?placement:Place.policy ->
  Plan.t ->
  string list

(** Automated partitioning (§VIII-B): greedy instance assignment onto
    [n_fpgas] by size and connectivity, then compilation. *)
val auto_partition :
  ?mode:Spec.mode ->
  ?board:Platform.Fpga.board ->
  ?threshold:float ->
  n_fpgas:int ->
  Firrtl.Ast.circuit ->
  Plan.t * Fireripper.Auto.assignment

(** Estimated simulation rate (target Hz) on the modeled platform. *)
val estimate_rate :
  ?freq_mhz:float ->
  ?threads:(int -> int) ->
  ?transport:Platform.Transport.kind ->
  Plan.t ->
  float

(** Per-unit (name, estimate, utilization, fits) on [board]. *)
val utilization :
  ?board:Platform.Fpga.board ->
  ?threads:(int -> int) ->
  Plan.t ->
  (string * Platform.Resource.estimate * Platform.Fpga.utilization * bool) list
