(** Instantiates a partition plan as an executable LI-BDN network, with
    optional FAME-5 threading of duplicate-module wrapper units. *)

type handle = {
  h_plan : Plan.t;
  h_net : Libdn.Network.t;
  h_scheduler : Libdn.Scheduler.t;
  h_batch_cycles : int;
      (** cap on cycle-batched token exchange (1 = per-cycle) *)
  h_spin_budget : int option;  (** spin-then-park tuning (0 = never spin) *)
  h_engines : Libdn.Engine.t array;
  h_sims : Rtlsim.Sim.t option array;
  h_fame5 : Goldengate.Fame5.t option array;
  h_remote : Libdn.Remote_engine.conn option array;
      (** live worker connections of remote-hosted units *)
}

(** FAME-5 eligibility of a wrapper unit: only instances of one module,
    connected by pure punched-port feedthroughs.  Returns the instance
    names and their module. *)
val fame5_eligible : Plan.unit_part -> (string list * string) option

(** Builds the network; [fame5] threads eligible wrapper units;
    [scheduler] picks the execution policy for [run]/[run_until]
    ({!Libdn.Scheduler.Sequential} by default); [telemetry] (default
    {!Telemetry.null}, free on the hot path) makes every layer record
    into the given sink; [profile] (default {!Telemetry.Profile.null},
    same discipline) threads a hot-path profiling sink into each unit's
    engine and the network/scheduler layers; [engine] selects every
    unit simulator's
    evaluation engine ({!Rtlsim.Sim.default_engine} otherwise);
    [lanes] gives every non-FAME-5 unit engine that many lanes —
    N identical copies of the partitioned design advanced in lockstep,
    inputs broadcast to all lanes (bytecode engine only).  FAME-5
    units ignore [lanes]: their lane count is their thread count.

    [batch_cycles] caps cycle-batched token exchange (1 = per-cycle,
    the default; bit-exact either way by LI-BDN determinism);
    [spin_budget] tunes the parallel scheduler's spin-then-park idle
    policy (0 = never spin); [groups] applies a domain-placement
    assignment (one slot per unit — see [Platform.Place]) fusing
    partitions onto shared domains. *)
val instantiate :
  ?fame5:bool ->
  ?scheduler:Libdn.Scheduler.t ->
  ?batch_cycles:int ->
  ?spin_budget:int ->
  ?groups:int array ->
  ?telemetry:Telemetry.t ->
  ?profile:Telemetry.Profile.t ->
  ?engine:Rtlsim.Sim.engine ->
  ?lanes:int ->
  Plan.t ->
  handle

(** Builds the network with the listed units hosted in their own worker
    processes (the software analogue of separate FPGAs), spawned from
    the [worker] binary.  Returns the live connections in
    [remote_units] order; close them when done.  Remote units have no
    local simulator ([sim_of]/[locate] skip them) — use the
    connection's poke/peek instead.  Snapshots DO cover remote units,
    through the worker pipe protocol.  [read_timeout] bounds every
    worker reply wait in seconds (a wedged worker then surfaces as
    {!Libdn.Remote_engine.Worker_died} instead of hanging).  [lanes]
    applies to local units directly and to remote units through the
    worker's command line (replayed on respawn). *)
val instantiate_remote :
  ?scheduler:Libdn.Scheduler.t ->
  ?batch_cycles:int ->
  ?spin_budget:int ->
  ?groups:int array ->
  ?read_timeout:float ->
  ?telemetry:Telemetry.t ->
  ?profile:Telemetry.Profile.t ->
  ?engine:Rtlsim.Sim.engine ->
  ?lanes:int ->
  worker:string ->
  remote_units:int list ->
  Plan.t ->
  handle * (int * Libdn.Remote_engine.conn) list

(** The live worker connection of a remote-hosted unit, if any. *)
val conn_of : handle -> int -> Libdn.Remote_engine.conn option

(** All live worker connections, in unit order. *)
val remote_conns : handle -> (int * Libdn.Remote_engine.conn) list

(** Respawns the (dead) worker hosting remote unit [k] behind its
    existing connection — the network's engine closures keep working.
    The fresh process starts from reset state; restore it from a
    durable checkpoint.  Raises [Invalid_argument] if unit [k] is not
    remote-hosted. *)
val respawn_remote : handle -> int -> worker:string -> unit

(** The execution policy this handle runs under. *)
val scheduler : handle -> Libdn.Scheduler.t

(** The cycle-batching cap this handle runs with (1 = per-cycle). *)
val batch_cycles : handle -> int

(** The sink every layer of this handle records into ({!Telemetry.null}
    when instantiated without one). *)
val telemetry : handle -> Telemetry.t

(** The profiling sink every layer of this handle records into
    ({!Telemetry.Profile.null} when instantiated without one). *)
val profile : handle -> Telemetry.Profile.t

(** Pulls each live remote worker's profile document over the pipe and
    attaches it to [profile h] as a remote slice, keyed by unit name.
    No-op for handles without profiled remote units. *)
val collect_remote_profiles : handle -> unit

val run : handle -> cycles:int -> unit
val run_until : handle -> max_cycles:int -> (handle -> bool) -> int
val engine : handle -> int -> Libdn.Engine.t
val set_drive : handle -> int -> (Libdn.Engine.t -> int -> unit) -> unit
val cycle : handle -> int -> int
val token_transfers : handle -> int

(** The FAME-5 context of a threaded unit, for per-thread state setup. *)
val fame5_of : handle -> int -> Goldengate.Fame5.t option

(** The backing RTL simulation of a non-threaded unit (program loading,
    state inspection).  Raises for FAME-5 units. *)
val sim_of : handle -> int -> Rtlsim.Sim.t

(** Which unit holds the (flattened) signal or memory [name]: local
    simulators first, then remote workers over the pipe protocol.
    [None] when no unit holds it. *)
val locate_opt : handle -> string -> int option

(** Like {!locate_opt}, raising [Invalid_argument] when absent. *)
val locate : handle -> string -> int

(** Captures the entire partitioned simulation; the thunk rolls back. *)
val checkpoint : handle -> unit -> unit

(** Unit [k]'s full architectural state as the standard
    {!Rtlsim.Sim.state_to_string} text — read locally for in-process
    units, over the worker pipe for remote ones.  Refuses
    FAME-5-threaded units. *)
val save_unit_state : handle -> int -> string

(** Restores a {!save_unit_state} text into unit [k], locally or over
    the worker pipe.  Raises [Rtlsim.Sim.Sim_error] when the state does
    not fit. *)
val restore_unit_state : handle -> int -> string -> unit

(** The in-flight network state (channel queue contents, fired flags,
    per-partition target cycles) as a text blob — the network piece of
    a durable checkpoint bundle. *)
val network_state_to_string : handle -> string

(** Restores a {!network_state_to_string} blob into the handle's
    network.  Raises [Rtlsim.Sim.Sim_error] on malformed input. *)
val restore_network_state : handle -> string -> unit

(** Serializes the whole partitioned simulation (unit architectural
    state + in-flight network tokens) as text, so a long run can be
    snapshotted to disk and resumed in a fresh process: instantiate the
    same plan, then {!restore_from_string}.  Remote units are included,
    read over the worker pipe protocol.  Refuses FAME-5-threaded
    handles. *)
val save_to_string : handle -> string

(** Restores a {!save_to_string} snapshot into a handle instantiated
    from the same plan (remote units restored over the worker pipe).
    Raises [Rtlsim.Sim.Sim_error] on malformed or mismatched
    snapshots. *)
val restore_from_string : handle -> string -> unit

(** {!save_to_string} / {!restore_from_string} against a file. *)
val save : handle -> path:string -> unit

val load : handle -> path:string -> unit

(** Synthesized [assert$] wires across all (unthreaded) units, as
    (unit, flattened name). *)
val assertions : handle -> (int * string) list

(** Assertion wires currently violated, across all units. *)
val assertions_violated : handle -> string list

(** Runs up to [max_cycles] further target cycles, polling assertions
    each cycle: [Ok cycles_run] or [Error (cycle, violated)] at the
    first violating cycle. *)
val run_checked : handle -> max_cycles:int -> (int, int * string list) result
