(* Instantiates a partition plan as an executable LI-BDN network.

   Each plan unit becomes one network partition backed by either a plain
   RTL simulation engine or — when the unit is a pure wrapper around N
   instances of one module and [fame5] is requested — a FAME-5
   multithreaded engine sharing one combinational evaluator across N
   register banks (the optimization of Section VI-B). *)

open Firrtl

type handle = {
  h_plan : Plan.t;
  h_net : Libdn.Network.t;
  h_scheduler : Libdn.Scheduler.t;  (** execution policy for [run]/[run_until] *)
  h_batch_cycles : int;
      (** cap on cycle-batched token exchange (1 = per-cycle) *)
  h_spin_budget : int option;  (** spin-then-park tuning (0 = never spin) *)
  h_engines : Libdn.Engine.t array;  (** indexed by plan unit *)
  h_sims : Rtlsim.Sim.t option array;  (** backing sims of non-FAME-5 units *)
  h_fame5 : Goldengate.Fame5.t option array;
  h_remote : Libdn.Remote_engine.conn option array;
      (** live worker connections of remote-hosted units *)
}

(* A wrapper is FAME-5 eligible when it contains only instances of a
   single module, and every statement is a pure feedthrough between a
   punched port [inst#p] and the matching instance port [inst.p]. *)
let fame5_eligible (u : Plan.unit_part) =
  let main = Ast.main_module u.Plan.u_circuit in
  let insts = Hierarchy.instances main in
  match insts with
  | [] | [ _ ] -> None
  | (_, m0) :: rest when List.for_all (fun (_, m) -> m = m0) rest ->
    let pure_feedthrough s =
      match s with
      | Ast.Connect { dst; src = Ast.Ref r } -> (
        match (Ast.split_instance_ref dst, Ast.split_instance_ref r) with
        | Some (i, p), None -> r = i ^ Hierarchy.sep ^ p
        | None, Some (i, p) -> dst = i ^ Hierarchy.sep ^ p
        | _ -> false)
      | _ -> false
    in
    let no_local_comps =
      List.for_all
        (fun c -> match c with Ast.Inst _ -> true | _ -> false)
        main.Ast.comps
    in
    if no_local_comps && List.for_all pure_feedthrough main.Ast.stmts then
      Some (List.map fst insts, m0)
    else None
  | _ -> None

let zero_token (spec : Libdn.Channel.spec) =
  Array.make (List.length spec.Libdn.Channel.ports) 0

(* Wires [engines] (one per plan unit, in order) into an LI-BDN
   network: FAME-1 wrap, channel connections, fast-mode seed tokens. *)
let build_network ?(telemetry = Telemetry.null)
    ?(profile = Telemetry.Profile.null) (plan : Plan.t) engines =
  let pairs = Plan.channel_pairs plan in
  let net = Libdn.Network.create ~telemetry ~profile () in
  (* Partitions are added in unit order so network index = unit index. *)
  Array.iteri
    (fun k engine ->
      let ins =
        List.filter_map
          (fun cp -> if cp.Plan.cp_dst_unit = k then Some cp.Plan.cp_in else None)
          pairs
      in
      let outs =
        List.filter_map
          (fun cp -> if cp.Plan.cp_src_unit = k then Some cp.Plan.cp_out else None)
          pairs
      in
      let w = Goldengate.Fame1.wrap_engine ~engine ~ins ~outs in
      let idx =
        Goldengate.Fame1.add_to_network net ~name:plan.Plan.p_units.(k).Plan.u_name w
      in
      assert (idx = k))
    engines;
  List.iter
    (fun cp ->
      Libdn.Network.connect net
        ~src:(cp.Plan.cp_src_unit, cp.Plan.cp_out.Libdn.Channel.name)
        ~dst:(cp.Plan.cp_dst_unit, cp.Plan.cp_in.Libdn.Channel.name);
      match plan.Plan.p_mode with
      | Spec.Fast ->
        Libdn.Network.seed net ~part:cp.Plan.cp_dst_unit
          ~chan:cp.Plan.cp_in.Libdn.Channel.name (zero_token cp.Plan.cp_in)
      | Spec.Exact -> ())
    pairs;
  net

(** Builds the network.  [fame5] requests multithreading of eligible
    wrapper units (duplicate-module partitions); [scheduler] picks the
    execution policy ({!Libdn.Scheduler.Sequential} by default);
    [telemetry] (default {!Telemetry.null}) makes every layer of the
    resulting simulation record into the given sink; [profile]
    (default {!Telemetry.Profile.null}) likewise threads a hot-path
    profiling sink into each unit's engine and the network/scheduler
    layers.  [lanes] gives
    every non-FAME-5 unit engine that many lanes (N identical copies of
    the partitioned design advanced in lockstep; inputs broadcast to
    all lanes).  FAME-5 units ignore it — their lane count is their
    thread count.

    [batch_cycles] caps cycle-batched token exchange (1 = per-cycle,
    the default; bit-exact either way); [spin_budget] tunes the
    parallel scheduler's spin-then-park idle policy (0 = never spin);
    [groups] applies a domain-placement assignment (one slot per unit —
    see [Platform.Place]) fusing partitions onto shared domains. *)
let instantiate ?(fame5 = false) ?(scheduler = Libdn.Scheduler.default)
    ?(batch_cycles = Libdn.Scheduler.default_batch_cycles) ?spin_budget ?groups
    ?(telemetry = Telemetry.null) ?(profile = Telemetry.Profile.null) ?engine
    ?lanes (plan : Plan.t) =
  let n = Plan.n_units plan in
  let engines = Array.make n None in
  let sims = Array.make n None in
  let fame5s = Array.make n None in
  Array.iter
    (fun (u : Plan.unit_part) ->
      let engine =
        match if fame5 then fame5_eligible u else None with
        | Some (insts, tile_module) ->
          let tile_circuit =
            { u.Plan.u_circuit with Ast.main = tile_module; cname = tile_module }
          in
          let tile_flat = Flatten.flatten (Hierarchy.prune tile_circuit) in
          let f5 = Goldengate.Fame5.create ?engine ~flat:tile_flat ~insts () in
          fame5s.(u.Plan.u_index) <- Some f5;
          Goldengate.Fame5.engine f5
        | None ->
          let sim =
            Rtlsim.Sim.create ?engine ?lanes ~profile ~label:u.Plan.u_name
              (Lazy.force u.Plan.u_flat)
          in
          sims.(u.Plan.u_index) <- Some sim;
          Libdn.Engine.of_sim sim
      in
      engines.(u.Plan.u_index) <- Some engine)
    plan.Plan.p_units;
  let engines = Array.map Option.get engines in
  let net = build_network ~telemetry ~profile plan engines in
  Option.iter (Libdn.Network.set_groups net) groups;
  {
    h_plan = plan;
    h_net = net;
    h_scheduler = scheduler;
    h_batch_cycles = batch_cycles;
    h_spin_budget = spin_budget;
    h_engines = engines;
    h_sims = sims;
    h_fame5 = fame5s;
    h_remote = Array.make n None;
  }

(* Serializes unit [k]'s flattened circuit to a fresh temp .fir file,
   hands the path to [f], and removes the file afterwards. *)
let with_unit_fir (plan : Plan.t) k f =
  let flat = Lazy.force plan.Plan.p_units.(k).Plan.u_flat in
  let circuit =
    { Firrtl.Ast.cname = flat.Firrtl.Ast.name; main = flat.Firrtl.Ast.name; modules = [ flat ] }
  in
  let path = Filename.temp_file "fireaxe_unit" ".fir" in
  Firrtl.Text.save circuit ~path;
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(** Builds the network with the units in [remote_units] hosted in their
    own worker PROCESSES (the software analogue of separate FPGAs);
    everything else stays in-process.  Returns the handle and the live
    connections, in [remote_units] order — [Libdn.Remote_engine.close]
    them when done.  Remote units have no local simulator, so [sim_of]
    and [locate] skip them; use the connection's poke/peek instead
    (snapshots DO cover them, through the worker pipe protocol).
    [read_timeout] bounds every worker reply wait in seconds. *)
let instantiate_remote ?(scheduler = Libdn.Scheduler.default)
    ?(batch_cycles = Libdn.Scheduler.default_batch_cycles) ?spin_budget ?groups
    ?read_timeout ?(telemetry = Telemetry.null)
    ?(profile = Telemetry.Profile.null) ?engine ?lanes ~worker ~remote_units
    (plan : Plan.t) =
  let n = Plan.n_units plan in
  let engines = Array.make n None in
  let sims = Array.make n None in
  let fame5s = Array.make n None in
  let conns = ref [] in
  Array.iter
    (fun (u : Plan.unit_part) ->
      let engine =
        if List.mem u.Plan.u_index remote_units then begin
          let conn =
            with_unit_fir plan u.Plan.u_index (fun path ->
                Libdn.Remote_engine.spawn ~label:u.Plan.u_name ?read_timeout ~telemetry
                  ~profile ?engine ?lanes ~worker ~fir_path:path ())
          in
          conns := (u.Plan.u_index, conn) :: !conns;
          Libdn.Remote_engine.engine conn
        end
        else begin
          let sim =
            Rtlsim.Sim.create ?engine ?lanes ~profile ~label:u.Plan.u_name
              (Lazy.force u.Plan.u_flat)
          in
          sims.(u.Plan.u_index) <- Some sim;
          Libdn.Engine.of_sim sim
        end
      in
      engines.(u.Plan.u_index) <- Some engine)
    plan.Plan.p_units;
  let engines = Array.map Option.get engines in
  let net = build_network ~telemetry ~profile plan engines in
  Option.iter (Libdn.Network.set_groups net) groups;
  let remote = Array.make n None in
  List.iter (fun (k, conn) -> remote.(k) <- Some conn) !conns;
  ( {
      h_plan = plan;
      h_net = net;
      h_scheduler = scheduler;
      h_batch_cycles = batch_cycles;
      h_spin_budget = spin_budget;
      h_engines = engines;
      h_sims = sims;
      h_fame5 = fame5s;
      h_remote = remote;
    },
    List.rev !conns )

(** The live worker connection of a remote-hosted unit, if any. *)
let conn_of h k = h.h_remote.(k)

(** All live worker connections, in unit order. *)
let remote_conns h =
  Array.to_list h.h_remote
  |> List.mapi (fun k c -> Option.map (fun c -> (k, c)) c)
  |> List.filter_map Fun.id

(** Respawns the (dead) worker hosting remote unit [k] behind its
    existing connection — the network's engine closures keep working.
    The fresh process starts from reset state; restore it from a
    durable checkpoint. *)
let respawn_remote h k ~worker =
  match h.h_remote.(k) with
  | None -> invalid_arg (Printf.sprintf "respawn_remote: unit %d is not remote" k)
  | Some conn ->
    with_unit_fir h.h_plan k (fun path ->
        Libdn.Remote_engine.reconnect conn ~worker ~fir_path:path)

let scheduler h = h.h_scheduler
let batch_cycles h = h.h_batch_cycles

(** The sink every layer of this handle records into ({!Telemetry.null}
    when instantiated without one). *)
let telemetry h = Libdn.Network.telemetry h.h_net

(** The profiling sink every layer of this handle records into
    ({!Telemetry.Profile.null} when instantiated without one). *)
let profile h = Libdn.Network.profile h.h_net

(** Pulls each live remote worker's profile document over the pipe and
    attaches it to [profile h] as a remote slice (one per worker, keyed
    by unit name).  No-op for handles without profiled remote units. *)
let collect_remote_profiles h =
  List.iter
    (fun (k, conn) ->
      match Libdn.Remote_engine.fetch_profile conn with
      | Some j ->
        Telemetry.Profile.add_slice (profile h)
          ~label:h.h_plan.Plan.p_units.(k).Plan.u_name j
      | None -> ())
    (remote_conns h)

let run h ~cycles =
  Libdn.Scheduler.run ~scheduler:h.h_scheduler ~batch_cycles:h.h_batch_cycles
    ?spin_budget:h.h_spin_budget h.h_net ~cycles

let run_until h ~max_cycles pred =
  Libdn.Scheduler.run_until ~scheduler:h.h_scheduler
    ~batch_cycles:h.h_batch_cycles ?spin_budget:h.h_spin_budget h.h_net
    ~max_cycles
    (fun _ -> pred h)

let engine h k = h.h_engines.(k)

let set_drive h k f = Libdn.Network.set_drive h.h_net k f

let cycle h k = Libdn.Network.cycle_of h.h_net k

let token_transfers h = Libdn.Network.token_transfers h.h_net

(** The FAME-5 context of a threaded unit, for per-thread state setup. *)
let fame5_of h k = h.h_fame5.(k)

(** Captures the entire partitioned simulation (all units' architectural
    state plus in-flight tokens); the returned thunk rolls it back. *)
let checkpoint h = Libdn.Network.checkpoint h.h_net

(** The backing RTL simulation of a non-threaded unit — used to load
    program images into partitioned memories and to inspect state. *)
let sim_of h k =
  match h.h_sims.(k) with
  | Some sim -> sim
  | None -> invalid_arg "sim_of: unit is FAME-5 threaded; use fame5_of"

(** Which unit ended up holding the (flattened) signal or memory [name],
    searching local simulators first, then remote workers over the pipe
    protocol.  [None] when no unit holds it. *)
let locate_opt h name =
  let local k =
    match h.h_sims.(k) with
    | Some sim ->
      Hashtbl.mem sim.Rtlsim.Sim.slots name || Hashtbl.mem sim.Rtlsim.Sim.mems name
    | None -> false
  in
  let remote k =
    match h.h_remote.(k) with
    | Some conn -> Libdn.Remote_engine.has conn name
    | None -> false
  in
  let n = Array.length h.h_sims in
  let rec find pred k = if k >= n then None else if pred k then Some k else find pred (k + 1) in
  match find local 0 with Some _ as s -> s | None -> find remote 0

(** Like {!locate_opt}, raising [Invalid_argument] when absent. *)
let locate h name =
  match locate_opt h name with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "locate: %s not found in any unit" name)

(* ------------------------------------------------------------------ *)
(* Disk snapshots                                                      *)
(* ------------------------------------------------------------------ *)

(** Unit [k]'s full architectural state as the standard simulator-state
    text — read locally for in-process units, over the worker pipe for
    remote ones.  FAME-5-threaded units are refused (bank state lives
    behind the engine abstraction). *)
let save_unit_state h k =
  match (h.h_sims.(k), h.h_remote.(k), h.h_fame5.(k)) with
  | _, _, Some _ ->
    invalid_arg
      (Printf.sprintf "save_unit_state: unit %d is FAME-5 threaded; snapshot unthreaded" k)
  | Some sim, _, None -> Rtlsim.Sim.state_to_string (Rtlsim.Sim.save_state sim)
  | None, Some conn, None -> Libdn.Remote_engine.save_state conn
  | None, None, None ->
    invalid_arg (Printf.sprintf "save_unit_state: unit %d has no simulator state" k)

(** Restores a {!save_unit_state} text into unit [k], locally or over
    the worker pipe. *)
let restore_unit_state h k text =
  match (h.h_sims.(k), h.h_remote.(k)) with
  | Some sim, _ -> Rtlsim.Sim.restore_state sim (Rtlsim.Sim.state_of_string text)
  | None, Some conn -> Libdn.Remote_engine.load_state conn text
  | None, None ->
    raise
      (Rtlsim.Sim.Sim_error
         (Printf.sprintf "snapshot: unit %d has no simulator to restore into" k))

(* The network's in-flight state (queues, fired flags, cycles) as text
   lines — the serializable counterpart of [Libdn.Network.snapshot]. *)
let network_state_to_buffer buf (sn : Libdn.Network.snapshot) =
  Buffer.add_string buf
    (Printf.sprintf "network %d %d\n"
       (Array.length sn.Libdn.Network.sn_parts)
       sn.Libdn.Network.sn_transfers);
  Array.iter
    (fun (queues, fired, cycle) ->
      Buffer.add_string buf
        (Printf.sprintf "part %d %d %d\n" cycle (Array.length queues) (Array.length fired));
      Array.iter
        (fun toks ->
          Buffer.add_string buf (Printf.sprintf "chan %d\n" (List.length toks));
          List.iter
            (fun tok ->
              Buffer.add_string buf (Printf.sprintf "tok %d" (Array.length tok));
              Array.iter
                (fun v ->
                  Buffer.add_char buf ' ';
                  Buffer.add_string buf (string_of_int v))
                tok;
              Buffer.add_char buf '\n')
            toks)
        queues;
      Buffer.add_string buf "fired";
      Array.iter (fun f -> Buffer.add_string buf (if f then " 1" else " 0")) fired;
      Buffer.add_char buf '\n')
    sn.Libdn.Network.sn_parts

(** The in-flight network state (channel queues, fired flags, target
    cycles) as a text blob — one of the pieces of a durable checkpoint
    bundle. *)
let network_state_to_string h =
  let buf = Buffer.create 4096 in
  network_state_to_buffer buf (Libdn.Network.snapshot h.h_net);
  Buffer.contents buf

(* Serializes the whole partitioned simulation — every unit's
   architectural state plus the network's in-flight tokens — as a text
   blob, so a long run can be snapshotted to disk and resumed in a fresh
   process (instantiate the same plan, then [restore_from_string]).
   Remote units are included, read over the worker pipe protocol.
   FAME-5-threaded handles are refused: bank state lives behind the
   engine abstraction. *)
let save_to_string h =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "fireaxe-snapshot 1\n";
  Buffer.add_string buf (Printf.sprintf "units %d\n" (Array.length h.h_sims));
  Array.iteri
    (fun i _ ->
      Buffer.add_string buf (Printf.sprintf "unit %d\n" i);
      Buffer.add_string buf (save_unit_state h i);
      Buffer.add_string buf "endunit\n")
    h.h_sims;
  network_state_to_buffer buf (Libdn.Network.snapshot h.h_net);
  Buffer.contents buf

let snapshot_fail fmt =
  Printf.ksprintf (fun m -> raise (Rtlsim.Sim.Sim_error ("snapshot: " ^ m))) fmt

(* A line cursor over non-blank snapshot lines. *)
let line_cursor text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
    |> Array.of_list
  in
  let pos = ref 0 in
  fun () ->
    if !pos >= Array.length lines then snapshot_fail "truncated snapshot"
    else begin
      let l = lines.(!pos) in
      incr pos;
      l
    end

(* Parses the network section (starting at the "network ..." line) from
   a line cursor back into a [Libdn.Network.snapshot]. *)
let parse_network_section next =
  let words l = Rtlsim.Sim.snapshot_words l in
  let int_of = Rtlsim.Sim.snapshot_int in
  let n_parts, transfers =
    match words (next ()) with
    | [ "network"; n; t ] -> (int_of n, int_of t)
    | _ -> snapshot_fail "bad network line"
  in
  let parts =
    Array.init n_parts (fun _ ->
        let cycle, n_ins, n_outs =
          match words (next ()) with
          | [ "part"; c; ni; no ] -> (int_of c, int_of ni, int_of no)
          | _ -> snapshot_fail "bad part line"
        in
        let queues =
          Array.init n_ins (fun _ ->
              let n_toks =
                match words (next ()) with
                | [ "chan"; n ] -> int_of n
                | _ -> snapshot_fail "bad chan line"
              in
              List.init n_toks (fun _ ->
                  match words (next ()) with
                  | "tok" :: len :: values ->
                    let tok = Array.of_list (List.map int_of values) in
                    if Array.length tok <> int_of len then
                      snapshot_fail "token declares %s values, has %d" len
                        (Array.length tok);
                    tok
                  | _ -> snapshot_fail "bad tok line"))
        in
        let fired =
          match words (next ()) with
          | "fired" :: flags ->
            let flags = Array.of_list (List.map (fun f -> int_of f <> 0) flags) in
            if Array.length flags <> n_outs then
              snapshot_fail "part declares %d outputs, fired line has %d" n_outs
                (Array.length flags);
            flags
          | _ -> snapshot_fail "bad fired line"
        in
        (queues, fired, cycle))
  in
  { Libdn.Network.sn_parts = parts; sn_transfers = transfers }

(** Restores a {!network_state_to_string} blob into the handle's
    network — queue contents, fired flags, per-partition cycles. *)
let restore_network_state h text =
  Libdn.Network.restore h.h_net (parse_network_section (line_cursor text))

let restore_from_string h text =
  let next = line_cursor text in
  let words l = Rtlsim.Sim.snapshot_words l in
  let int_of = Rtlsim.Sim.snapshot_int in
  (match words (next ()) with
  | [ "fireaxe-snapshot"; "1" ] -> ()
  | _ -> snapshot_fail "bad header");
  let n_units =
    match words (next ()) with
    | [ "units"; n ] -> int_of n
    | _ -> snapshot_fail "bad units line"
  in
  if n_units <> Array.length h.h_sims then
    snapshot_fail "snapshot has %d units, handle has %d" n_units (Array.length h.h_sims);
  for i = 0 to n_units - 1 do
    (match words (next ()) with
    | [ "unit"; k ] when int_of k = i -> ()
    | _ -> snapshot_fail "expected unit %d" i);
    let body = Buffer.create 4096 in
    let rec collect () =
      let l = next () in
      if String.trim l <> "endunit" then begin
        Buffer.add_string body l;
        Buffer.add_char body '\n';
        collect ()
      end
    in
    collect ();
    restore_unit_state h i (Buffer.contents body)
  done;
  Libdn.Network.restore h.h_net (parse_network_section next)

(** Writes {!save_to_string} to [path]. *)
let save h ~path =
  let oc = open_out path in
  output_string oc (save_to_string h);
  close_out oc

(** Restores a snapshot file into a freshly instantiated handle of the
    same plan. *)
let load h ~path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  restore_from_string h text

(* ------------------------------------------------------------------ *)
(* Synthesized assertions                                              *)
(* ------------------------------------------------------------------ *)

(* Assertion wires live inside unit simulators like any other logic;
   the host polls them across all units (FAME-5 units are skipped: bank
   state is checked through their own engines). *)
let assertions h =
  Array.to_list h.h_sims
  |> List.concat_map (function
       | Some sim ->
         List.map (fun s -> (locate h s, s)) (Rtlsim.Assertions.signals sim)
       | None -> [])

let assertions_violated h =
  Array.to_list h.h_sims
  |> List.concat_map (function
       | Some sim -> Rtlsim.Assertions.violated sim
       | None -> [])

(** Runs to [max_cycles] target cycles, polling assertions each cycle:
    [Ok cycles_run] or [Error (cycle, violated)]. *)
let run_checked h ~max_cycles =
  let from = Libdn.Network.cycle_of h.h_net 0 in
  let rec go cyc =
    match assertions_violated h with
    | _ :: _ as bad -> Error (cyc, bad)
    | [] ->
      if cyc >= max_cycles then Ok cyc
      else begin
        run h ~cycles:(from + cyc + 1);
        go (cyc + 1)
      end
  in
  go 0
