(* FAME-1 transform (Golden Gate): wraps a target design in an LI-BDN.

   Given a flat target module and a channelization of its boundary ports,
   this module produces everything the LI-BDN network needs to host the
   target: an execution engine, input channel specs, and output channel
   specs annotated with the input channels each one combinationally
   depends on (the per-output-channel FSM firing condition of Fig. 1). *)

open Firrtl

type wrapped = {
  w_engine : Libdn.Engine.t;
  w_ins : Libdn.Channel.spec list;
  w_outs : (Libdn.Channel.spec * string list) list;
      (** each output channel with the names of input channels it waits
          for before firing *)
}

(** Computes output-channel dependencies: an output channel waits for
    every input channel containing a port in the combinational fan-in of
    any of its ports.  Ports in no input channel are external inputs
    (driven by the host testbench each cycle) and impose no token wait. *)
let channel_deps ~(engine : Libdn.Engine.t) ~(ins : Libdn.Channel.spec list)
    (out : Libdn.Channel.spec) =
  let in_of_port = Hashtbl.create 16 in
  List.iter
    (fun (spec : Libdn.Channel.spec) ->
      List.iter (fun (p, _) -> Hashtbl.replace in_of_port p spec.name) spec.ports)
    ins;
  List.concat_map
    (fun (p, _) ->
      List.filter_map (Hashtbl.find_opt in_of_port) (engine.output_comb_deps p))
    out.Libdn.Channel.ports
  |> List.sort_uniq compare

let wrap_engine ~engine ~ins ~outs =
  {
    w_engine = engine;
    w_ins = ins;
    w_outs = List.map (fun out -> (out, channel_deps ~engine ~ins out)) outs;
  }

(** Wraps a flat target module with the given channelization. *)
let wrap ?engine ~flat ~ins ~outs () =
  wrap_engine ~engine:(Libdn.Engine.of_flat ?engine flat) ~ins ~outs

(** Adds a wrapped target to a network as a new partition. *)
let add_to_network net ~name w =
  Libdn.Network.add_partition net ~name ~engine:w.w_engine ~ins:w.w_ins ~outs:w.w_outs

(** Convenience: one channel per port (the maximally split channelization
    used by exact-mode examples and tests). *)
let channel_per_port (ports : Ast.port list) =
  List.map
    (fun (p : Ast.port) ->
      { Libdn.Channel.name = p.pname; ports = [ (p.pname, p.pwidth) ] })
    ports
