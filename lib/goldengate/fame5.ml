(* FAME-5 transform (Golden Gate): simulator-level multithreading of
   duplicate module instances.

   Given N instances of the same target module, FAME-5 shares the
   combinational logic while replicating the sequential state N times; a
   scheduler selects which state bank a host step updates.  Here the
   shared combinational logic is the single compiled RTL simulation and
   the banks are register/memory snapshots; one target cycle costs N
   host evaluations of the shared logic, which is exactly the
   performance trade the platform model charges for (Section VI-B).

   The resulting engine exposes the union interface of the N instances:
   port [p] of thread [k] appears as ["<inst_k>#p"], matching the port
   names FireRipper's grouping pass punches through partition
   wrappers. *)

open Firrtl

type t = {
  sim : Rtlsim.Sim.t;
  insts : string array;  (** thread name per bank *)
  banks : Rtlsim.Sim.state array;
  in_latch : (string, int) Hashtbl.t array;  (** tile port -> value *)
  out_latch : (string, int) Hashtbl.t array;
  out_port_names : string list;
  mutable loaded : int;  (** bank currently resident in [sim], -1 if none *)
}

let sep = "#"

(* Thread names may themselves contain the separator (they can be
   hierarchy-promoted instance names), so match the longest thread-name
   prefix rather than splitting at the first separator. *)
let bank_of t name =
  let best = ref None in
  Array.iteri
    (fun k inst ->
      let pre = inst ^ sep in
      let lp = String.length pre in
      if
        String.length name > lp
        && String.sub name 0 lp = pre
        && (match !best with
           | Some (_, l) -> lp > l
           | None -> true)
      then best := Some (k, lp))
    t.insts;
  match !best with
  | Some (k, lp) -> (k, String.sub name lp (String.length name - lp))
  | None -> Rtlsim.Sim.sim_error "fame5: port %s matches no thread prefix" name

let load_bank t k =
  if t.loaded <> k then begin
    if t.loaded >= 0 then t.banks.(t.loaded) <- Rtlsim.Sim.save_state t.sim;
    Rtlsim.Sim.restore_state t.sim t.banks.(k);
    t.loaded <- k
  end

let apply_inputs t k = Hashtbl.iter (Rtlsim.Sim.set_input t.sim) t.in_latch.(k)

let capture_outputs t k ports =
  List.iter (fun p -> Hashtbl.replace t.out_latch.(k) p (Rtlsim.Sim.get t.sim p)) ports

let create ?engine ~flat ~insts () =
  let sim = Rtlsim.Sim.create ?engine flat in
  let n = List.length insts in
  {
    sim;
    insts = Array.of_list insts;
    banks = Array.init n (fun _ -> Rtlsim.Sim.save_state sim);
    in_latch = Array.init n (fun _ -> Hashtbl.create 16);
    out_latch = Array.init n (fun _ -> Hashtbl.create 16);
    out_port_names =
      List.filter_map
        (fun (p : Ast.port) -> if p.pdir = Output then Some p.pname else None)
        flat.Ast.ports;
    loaded = -1;
  }

(** Runs [f] on the simulation with thread [k]'s state resident — e.g.
    to load a per-thread program image into a memory. *)
let with_bank t k f =
  load_bank t k;
  f t.sim

let threads t = Array.length t.insts

(** The exposed boundary ports: ["<inst>#port"] for every thread. *)
let ports t flat_ports =
  Array.to_list t.insts
  |> List.concat_map (fun inst ->
         List.map
           (fun (p : Ast.port) ->
             { p with Ast.pname = inst ^ sep ^ p.Ast.pname })
           flat_ports)

let engine t : Libdn.Engine.t =
  let analysis = t.sim.Rtlsim.Sim.analysis in
  let set_input name v =
    let k, port = bank_of t name in
    Hashtbl.replace t.in_latch.(k) port v
  in
  let get name =
    let k, port = bank_of t name in
    match Hashtbl.find_opt t.out_latch.(k) port with
    | Some v -> v
    | None -> Rtlsim.Sim.sim_error "fame5: output %s not captured yet" name
  in
  (* The per-target-cycle scheduler: evaluate and step each bank in
     turn.  eval_comb is deferred into step_seq because a full
     evaluation is only meaningful with a bank resident. *)
  let step_seq () =
    for k = 0 to threads t - 1 do
      load_bank t k;
      apply_inputs t k;
      Rtlsim.Sim.eval_comb t.sim;
      capture_outputs t k t.out_port_names;
      Rtlsim.Sim.step_seq t.sim
    done
  in
  let make_cone_eval names =
    (* Group requested signals by thread; compile one cone per thread. *)
    let by_bank = Hashtbl.create 4 in
    List.iter
      (fun name ->
        let k, port = bank_of t name in
        Hashtbl.replace by_bank k (port :: Option.value ~default:[] (Hashtbl.find_opt by_bank k)))
      names;
    let cones =
      Hashtbl.fold
        (fun k ports acc -> (k, ports, Rtlsim.Sim.make_cone_eval t.sim ports) :: acc)
        by_bank []
    in
    fun () ->
      List.iter
        (fun (k, ports, cone) ->
          load_bank t k;
          apply_inputs t k;
          cone ();
          capture_outputs t k ports)
        cones
  in
  let output_comb_deps name =
    let k, port = bank_of t name in
    Firrtl.Analysis.comb_inputs analysis port
    |> List.map (fun dep -> t.insts.(k) ^ sep ^ dep)
  in
  let checkpoint () =
    (* Park the resident bank so every bank array is current, then copy
       everything. *)
    if t.loaded >= 0 then begin
      t.banks.(t.loaded) <- Rtlsim.Sim.save_state t.sim;
      t.loaded <- -1
    end;
    let banks = Array.copy t.banks in
    let copy_latches arr = Array.map Hashtbl.copy arr in
    let ins = copy_latches t.in_latch and outs = copy_latches t.out_latch in
    fun () ->
      if t.loaded >= 0 then t.loaded <- -1;
      Array.blit banks 0 t.banks 0 (Array.length banks);
      Array.iteri
        (fun k h ->
          Hashtbl.reset t.in_latch.(k);
          Hashtbl.iter (Hashtbl.replace t.in_latch.(k)) h)
        ins;
      Array.iteri
        (fun k h ->
          Hashtbl.reset t.out_latch.(k);
          Hashtbl.iter (Hashtbl.replace t.out_latch.(k)) h)
        outs
  in
  {
    Libdn.Engine.set_input;
    get;
    eval_comb = (fun () -> ());
    step_seq;
    make_cone_eval;
    output_comb_deps;
    checkpoint;
  }
