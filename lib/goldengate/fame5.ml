(* FAME-5 transform (Golden Gate): simulator-level multithreading of
   duplicate module instances.

   Given N instances of the same target module, FAME-5 shares the
   combinational logic while replicating the sequential state N times; a
   scheduler selects which state bank a host step updates.  Here the
   shared logic is the single compiled RTL simulation and the banks are
   the engine's execution lanes: with the bytecode engine the N threads
   ARE the N lanes of one compiled program ([Rtlsim.Sim.create ~lanes]),
   advanced in lockstep by one vectorized evaluation pass per target
   cycle.  The closure engine is single-lane, so it falls back to the
   original bank-swapping scheme — register/memory snapshots swapped
   into the one simulation, N sequential evaluations per target cycle.
   Either way one target cycle costs N threads' worth of evaluation,
   which is exactly the performance trade the platform model charges
   for (Section VI-B); the laned form just pays it at vectorized rates.

   The resulting engine exposes the union interface of the N instances:
   port [p] of thread [k] appears as ["<inst_k>#p"], matching the port
   names FireRipper's grouping pass punches through partition
   wrappers. *)

open Firrtl

type mode =
  | Laned  (** thread [k] is engine lane [k] of the one simulation *)
  | Banked of {
      banks : Rtlsim.Sim.state array;
      mutable loaded : int;  (** bank resident in the sim, -1 if none *)
    }

type t = {
  sim : Rtlsim.Sim.t;
  insts : string array;  (** thread name per bank *)
  in_latch : (string, int) Hashtbl.t array;  (** tile port -> value *)
  out_latch : (string, int) Hashtbl.t array;
  out_port_names : string list;
  mode : mode;
}

let sep = "#"

(* Thread names may themselves contain the separator (they can be
   hierarchy-promoted instance names), so match the longest thread-name
   prefix rather than splitting at the first separator. *)
let bank_of t name =
  let best = ref None in
  Array.iteri
    (fun k inst ->
      let pre = inst ^ sep in
      let lp = String.length pre in
      if
        String.length name > lp
        && String.sub name 0 lp = pre
        && (match !best with
           | Some (_, l) -> lp > l
           | None -> true)
      then best := Some (k, lp))
    t.insts;
  match !best with
  | Some (k, lp) -> (k, String.sub name lp (String.length name - lp))
  | None -> Rtlsim.Sim.sim_error "fame5: port %s matches no thread prefix" name

(* The lane holding thread [k]'s state, materializing it first in the
   banked fallback (swap the resident snapshot out, [k]'s in). *)
let resident t k =
  match t.mode with
  | Laned -> k
  | Banked b ->
    if b.loaded <> k then begin
      if b.loaded >= 0 then b.banks.(b.loaded) <- Rtlsim.Sim.save_state t.sim;
      Rtlsim.Sim.restore_state t.sim b.banks.(k);
      b.loaded <- k
    end;
    0

let apply_inputs t k lane =
  Hashtbl.iter (Rtlsim.Sim.set_input ~lane t.sim) t.in_latch.(k)

let capture_outputs t k lane ports =
  List.iter
    (fun p -> Hashtbl.replace t.out_latch.(k) p (Rtlsim.Sim.get ~lane t.sim p))
    ports

let create ?engine ~flat ~insts () =
  let engine = Option.value engine ~default:Rtlsim.Sim.default_engine in
  let n = List.length insts in
  let sim, mode =
    match engine with
    | Rtlsim.Sim.Bytecode ->
      (* Threads map 1:1 onto engine lanes: one compiled program, one
         vectorized pass per target cycle. *)
      (Rtlsim.Sim.create ~engine ~lanes:n flat, Laned)
    | Rtlsim.Sim.Closure ->
      let sim = Rtlsim.Sim.create ~engine flat in
      ( sim,
        Banked
          { banks = Array.init n (fun _ -> Rtlsim.Sim.save_state sim); loaded = -1 } )
  in
  {
    sim;
    insts = Array.of_list insts;
    in_latch = Array.init n (fun _ -> Hashtbl.create 16);
    out_latch = Array.init n (fun _ -> Hashtbl.create 16);
    out_port_names =
      List.filter_map
        (fun (p : Ast.port) -> if p.pdir = Output then Some p.pname else None)
        flat.Ast.ports;
    mode;
  }

(** Whether threads are engine lanes (bytecode) rather than swapped
    state banks (closure fallback). *)
let laned t =
  match t.mode with
  | Laned -> true
  | Banked _ -> false

(** Runs [f sim lane] with thread [k]'s state resident on [lane] — e.g.
    to load a per-thread program image into a memory via
    [Rtlsim.Sim.poke_mem ~lane]. *)
let with_bank t k f =
  let lane = resident t k in
  f t.sim lane

let threads t = Array.length t.insts

(** The exposed boundary ports: ["<inst>#port"] for every thread. *)
let ports t flat_ports =
  Array.to_list t.insts
  |> List.concat_map (fun inst ->
         List.map
           (fun (p : Ast.port) ->
             { p with Ast.pname = inst ^ sep ^ p.Ast.pname })
           flat_ports)

let engine t : Libdn.Engine.t =
  let analysis = t.sim.Rtlsim.Sim.analysis in
  let set_input name v =
    let k, port = bank_of t name in
    Hashtbl.replace t.in_latch.(k) port v
  in
  let get name =
    let k, port = bank_of t name in
    match Hashtbl.find_opt t.out_latch.(k) port with
    | Some v -> v
    | None -> Rtlsim.Sim.sim_error "fame5: output %s not captured yet" name
  in
  (* The per-target-cycle scheduler.  eval_comb is deferred into
     step_seq because a full evaluation is only meaningful once every
     thread's inputs are applied (laned) or with a bank resident
     (banked fallback). *)
  let step_seq () =
    match t.mode with
    | Laned ->
      (* All lanes advance from one vectorized pass: latch every
         thread's inputs, evaluate once, harvest every thread's
         outputs, commit once. *)
      for k = 0 to threads t - 1 do
        apply_inputs t k k
      done;
      Rtlsim.Sim.eval_comb t.sim;
      for k = 0 to threads t - 1 do
        capture_outputs t k k t.out_port_names
      done;
      Rtlsim.Sim.step_seq t.sim
    | Banked _ ->
      for k = 0 to threads t - 1 do
        let lane = resident t k in
        apply_inputs t k lane;
        Rtlsim.Sim.eval_comb t.sim;
        capture_outputs t k lane t.out_port_names;
        Rtlsim.Sim.step_seq t.sim
      done
  in
  let make_cone_eval names =
    (* Group requested signals by thread; compile one cone per thread
       (over that thread's lane when laned). *)
    let by_bank = Hashtbl.create 4 in
    List.iter
      (fun name ->
        let k, port = bank_of t name in
        Hashtbl.replace by_bank k (port :: Option.value ~default:[] (Hashtbl.find_opt by_bank k)))
      names;
    match t.mode with
    | Laned ->
      let cones =
        Hashtbl.fold
          (fun k ports acc ->
            (k, ports, Rtlsim.Sim.make_cone_eval ~lane:k t.sim ports) :: acc)
          by_bank []
      in
      fun () ->
        List.iter
          (fun (k, ports, cone) ->
            apply_inputs t k k;
            cone ();
            capture_outputs t k k ports)
          cones
    | Banked _ ->
      let cones =
        Hashtbl.fold
          (fun k ports acc -> (k, ports, Rtlsim.Sim.make_cone_eval t.sim ports) :: acc)
          by_bank []
      in
      fun () ->
        List.iter
          (fun (k, ports, cone) ->
            let lane = resident t k in
            apply_inputs t k lane;
            cone ();
            capture_outputs t k lane ports)
          cones
  in
  let output_comb_deps name =
    let k, port = bank_of t name in
    Firrtl.Analysis.comb_inputs analysis port
    |> List.map (fun dep -> t.insts.(k) ^ sep ^ dep)
  in
  let copy_latches arr = Array.map Hashtbl.copy arr in
  let restore_latches saved live =
    Array.iteri
      (fun k h ->
        Hashtbl.reset live.(k);
        Hashtbl.iter (Hashtbl.replace live.(k)) h)
      saved
  in
  let checkpoint () =
    match t.mode with
    | Laned ->
      (* Every thread's state lives in its lane; one all-lane simulator
         checkpoint covers them. *)
      let rollback = Rtlsim.Sim.checkpoint t.sim in
      let ins = copy_latches t.in_latch and outs = copy_latches t.out_latch in
      fun () ->
        rollback ();
        restore_latches ins t.in_latch;
        restore_latches outs t.out_latch
    | Banked b ->
      (* Park the resident bank so every bank array is current, then
         copy everything. *)
      if b.loaded >= 0 then begin
        b.banks.(b.loaded) <- Rtlsim.Sim.save_state t.sim;
        b.loaded <- -1
      end;
      let banks = Array.copy b.banks in
      let ins = copy_latches t.in_latch and outs = copy_latches t.out_latch in
      fun () ->
        if b.loaded >= 0 then b.loaded <- -1;
        Array.blit banks 0 b.banks 0 (Array.length banks);
        restore_latches ins t.in_latch;
        restore_latches outs t.out_latch
  in
  {
    Libdn.Engine.set_input;
    get;
    get_ports = List.map get;
    eval_comb = (fun () -> ());
    step_seq;
    make_cone_eval;
    output_comb_deps;
    checkpoint;
  }
