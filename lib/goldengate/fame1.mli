(** FAME-1 transform (Golden Gate): wraps a target design in an LI-BDN.
    Given a flat target module and a channelization of its boundary
    ports, produces the execution engine and the channel specs — each
    output channel annotated with the input channels it combinationally
    waits for (the per-output-channel FSM of the paper's Fig. 1). *)

type wrapped = {
  w_engine : Libdn.Engine.t;
  w_ins : Libdn.Channel.spec list;
  w_outs : (Libdn.Channel.spec * string list) list;
}

(** Input channels (by name) that [out] must wait for, given the
    engine's port-level combinational dependencies. *)
val channel_deps :
  engine:Libdn.Engine.t ->
  ins:Libdn.Channel.spec list ->
  Libdn.Channel.spec ->
  string list

val wrap_engine :
  engine:Libdn.Engine.t ->
  ins:Libdn.Channel.spec list ->
  outs:Libdn.Channel.spec list ->
  wrapped

(** Wraps a flat target module with the given channelization. *)
val wrap :
  ?engine:Rtlsim.Sim.engine ->
  flat:Firrtl.Ast.module_def ->
  ins:Libdn.Channel.spec list ->
  outs:Libdn.Channel.spec list ->
  unit ->
  wrapped

(** Adds a wrapped target to a network as a new partition; returns its
    partition index. *)
val add_to_network : Libdn.Network.t -> name:string -> wrapped -> int

(** One channel per port: the maximally split channelization. *)
val channel_per_port : Firrtl.Ast.port list -> Libdn.Channel.spec list
