(** FAME-5 transform (Golden Gate): simulator-level multithreading of
    duplicate module instances — one shared combinational evaluator (the
    compiled RTL simulation) and one register/memory bank per thread.
    One target cycle costs N host evaluations, the trade the platform
    model charges for (paper §VI-B).

    The engine exposes thread [k]'s port [p] as ["<inst_k>#p"], matching
    the names FireRipper's grouping pass punches through wrappers. *)

type t

(** [create ~flat ~insts] builds the threaded context: one state bank
    per instance name in [insts].  [engine] selects the evaluation
    engine of the shared simulation. *)
val create :
  ?engine:Rtlsim.Sim.engine -> flat:Firrtl.Ast.module_def -> insts:string list -> unit -> t

(** Runs [f] with thread [k]'s state resident (e.g. to load a
    per-thread program image). *)
val with_bank : t -> int -> (Rtlsim.Sim.t -> 'a) -> 'a

val threads : t -> int

(** The exposed boundary ports for every thread. *)
val ports : t -> Firrtl.Ast.port list -> Firrtl.Ast.port list

(** The LI-BDN execution engine over all threads. *)
val engine : t -> Libdn.Engine.t
