(** FAME-5 transform (Golden Gate): simulator-level multithreading of
    duplicate module instances — one shared combinational evaluator (the
    compiled RTL simulation) and one state bank per thread.  With the
    bytecode engine the threads map 1:1 onto the engine's execution
    lanes (one vectorized evaluation pass advances every thread); the
    single-lane closure engine falls back to swapping register/memory
    snapshot banks through the one simulation.  One target cycle costs N
    threads' worth of evaluation, the trade the platform model charges
    for (paper §VI-B).

    The engine exposes thread [k]'s port [p] as ["<inst_k>#p"], matching
    the names FireRipper's grouping pass punches through wrappers. *)

type t

(** [create ~flat ~insts] builds the threaded context: one bank (engine
    lane, or snapshot for the closure fallback) per instance name in
    [insts].  [engine] selects the evaluation engine of the shared
    simulation ({!Rtlsim.Sim.default_engine} otherwise). *)
val create :
  ?engine:Rtlsim.Sim.engine -> flat:Firrtl.Ast.module_def -> insts:string list -> unit -> t

(** Whether threads are engine lanes (bytecode) rather than swapped
    state banks (closure fallback). *)
val laned : t -> bool

(** [with_bank t k f] runs [f sim lane] with thread [k]'s state resident
    on [lane] of [sim] — e.g. to load a per-thread program image with
    [Rtlsim.Sim.poke_mem ~lane], or read per-thread state with
    [Rtlsim.Sim.get ~lane]. *)
val with_bank : t -> int -> (Rtlsim.Sim.t -> int -> 'a) -> 'a

val threads : t -> int

(** The exposed boundary ports for every thread. *)
val ports : t -> Firrtl.Ast.port list -> Firrtl.Ast.port list

(** The LI-BDN execution engine over all threads. *)
val engine : t -> Libdn.Engine.t
