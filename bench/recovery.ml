(* Crash-recovery microbench: prices the resilience layer.

   Three measurements on the single-core Kite SoC (tile | rest
   partitioning), reported on stdout and as BENCH_recovery.json:

   - checkpoint I/O: mean wall-clock of a durable [Resilience.Bundle]
     save and of a restore into a fresh handle;
   - recovery latency: a supervised remote run with one injected
     SIGKILL, reporting the end-to-end wall-clock against an
     uninterrupted run of the same configuration plus the supervisor's
     own [resilience.recovery_us] histogram;
   - steady-state overhead: the same run at several checkpoint
     intervals (and with checkpointing disabled) — the disabled case
     prices the supervision wrapper itself, which must be ~free. *)

module FR = Fireripper
module R = Resilience

let worker =
  Filename.concat
    (Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name)) "bin")
    "fireaxe_worker.exe"

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (Unix.gettimeofday () -. t0, x)

let ms secs = secs *. 1000.

let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:8 ~reps:8 ~dst:60
let data = List.init 8 (fun i -> (32 + i, (i * 3) + 2))

let soc_plan () =
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "tile" ] ] }
  in
  FR.Compile.compile ~config (Socgen.Soc.single_core_soc ~mem_latency:1 ())

let load_soc h =
  let mu = FR.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (FR.Runtime.sim_of h mu) ~mem:"mem$mem" ~data program

let with_tmpdir f =
  let dir = Filename.temp_file "fireaxe_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ | Unix.Unix_error _ -> ()) (fun () -> f dir)

let json_fields = ref []
let field name v = json_fields := (name, v) :: !json_fields

(* ------------------------------------------------------------------ *)
(* Checkpoint I/O                                                      *)
(* ------------------------------------------------------------------ *)

let bench_checkpoint_io () =
  with_tmpdir (fun dir ->
      let plan = soc_plan () in
      let h = FR.Runtime.instantiate plan in
      load_soc h;
      FR.Runtime.run h ~cycles:500;
      let reps = 10 in
      let save_total = ref 0. in
      let last_path = ref "" in
      for _ = 1 to reps do
        let secs, path = time (fun () -> R.Bundle.save ~dir h) in
        save_total := !save_total +. secs;
        last_path := path
      done;
      let fresh = FR.Runtime.instantiate plan in
      let restore_total = ref 0. in
      for _ = 1 to reps do
        let secs, _ = time (fun () -> R.Bundle.restore ~path:!last_path fresh) in
        restore_total := !restore_total +. secs
      done;
      let save_ms = ms (!save_total /. float_of_int reps) in
      let restore_ms = ms (!restore_total /. float_of_int reps) in
      let bundle_bytes =
        Sys.readdir !last_path |> Array.to_list
        |> List.fold_left
             (fun acc f -> acc + (Unix.stat (Filename.concat !last_path f)).Unix.st_size)
             0
      in
      Printf.printf "checkpoint save   %8.2f ms   restore %8.2f ms   bundle %d bytes\n"
        save_ms restore_ms bundle_bytes;
      field "checkpoint_io"
        (Telemetry.Json.Obj
           [
             ("save_ms", Telemetry.Json.Float save_ms);
             ("restore_ms", Telemetry.Json.Float restore_ms);
             ("bundle_bytes", Telemetry.Json.Int bundle_bytes);
           ]))

(* ------------------------------------------------------------------ *)
(* Recovery latency                                                    *)
(* ------------------------------------------------------------------ *)

let supervised_run ~dir ~chaos ~cycles =
  let plan = soc_plan () in
  let tel = Telemetry.create () in
  let h, _conns =
    FR.Runtime.instantiate_remote ~telemetry:tel ~worker ~remote_units:[ 1 ] plan
  in
  load_soc h;
  let sv =
    R.Supervisor.create ~checkpoint_dir:dir ~every:200
      ~policy:{ R.Policy.default with R.Policy.backoff_ms = 1 }
      ?chaos ~worker h
  in
  let secs, () = time (fun () -> R.Supervisor.run sv ~cycles) in
  let restarts = R.Supervisor.restarts sv in
  R.Supervisor.close sv;
  (secs, restarts, tel)

let bench_recovery_latency () =
  let cycles = 1500 in
  let clean_secs, _, _ =
    with_tmpdir (fun dir -> supervised_run ~dir ~chaos:None ~cycles)
  in
  let faulted_secs, restarts, tel =
    with_tmpdir (fun dir ->
        supervised_run ~dir
          ~chaos:(Some (R.Chaos.plan ~seed:11 ~cycles ~n_victims:1 ()))
          ~cycles)
  in
  let recovery_hist =
    match List.assoc_opt "resilience.recovery_us" (Telemetry.hists tel) with
    | Some j -> j
    | None -> Telemetry.Json.Null
  in
  Printf.printf
    "recovery          %8.2f ms run clean, %8.2f ms with %d kill(s) (+%.2f ms)\n"
    (ms clean_secs) (ms faulted_secs) restarts
    (ms (faulted_secs -. clean_secs));
  field "recovery"
    (Telemetry.Json.Obj
       [
         ("cycles", Telemetry.Json.Int cycles);
         ("clean_ms", Telemetry.Json.Float (ms clean_secs));
         ("faulted_ms", Telemetry.Json.Float (ms faulted_secs));
         ("recovery_cost_ms", Telemetry.Json.Float (ms (faulted_secs -. clean_secs)));
         ("restarts", Telemetry.Json.Int restarts);
         ("recovery_us_hist", recovery_hist);
       ])

(* ------------------------------------------------------------------ *)
(* Steady-state overhead                                               *)
(* ------------------------------------------------------------------ *)

let bench_overhead () =
  let cycles = 3000 in
  let plan = soc_plan () in
  let plain () =
    let h = FR.Runtime.instantiate plan in
    load_soc h;
    fst (time (fun () -> FR.Runtime.run h ~cycles))
  in
  (* Warm up file caches / allocator before the measured runs. *)
  ignore (plain ());
  let base_secs = plain () in
  let supervised ?checkpoint_dir ~every () =
    let h = FR.Runtime.instantiate plan in
    load_soc h;
    let sv = R.Supervisor.create ?checkpoint_dir ~every ~worker h in
    fst (time (fun () -> R.Supervisor.run sv ~cycles))
  in
  let rows = ref [] in
  let row name secs =
    let overhead = (secs -. base_secs) /. base_secs *. 100. in
    Printf.printf "overhead %-10s %8.2f ms  (%+.1f%% vs plain run)\n" name (ms secs) overhead;
    rows :=
      Telemetry.Json.Obj
        [
          ("interval", Telemetry.Json.String name);
          ("ms", Telemetry.Json.Float (ms secs));
          ("overhead_pct", Telemetry.Json.Float overhead);
        ]
      :: !rows
  in
  Printf.printf "plain run         %8.2f ms (%d cycles, baseline)\n" (ms base_secs) cycles;
  row "disabled" (supervised ~every:500 ());
  with_tmpdir (fun dir -> row "every=1000" (supervised ~checkpoint_dir:dir ~every:1000 ()));
  with_tmpdir (fun dir -> row "every=500" (supervised ~checkpoint_dir:dir ~every:500 ()));
  with_tmpdir (fun dir -> row "every=250" (supervised ~checkpoint_dir:dir ~every:250 ()));
  with_tmpdir (fun dir -> row "every=100" (supervised ~checkpoint_dir:dir ~every:100 ()));
  field "steady_state"
    (Telemetry.Json.Obj
       [
         ("cycles", Telemetry.Json.Int cycles);
         ("baseline_ms", Telemetry.Json.Float (ms base_secs));
         ("intervals", Telemetry.Json.List (List.rev !rows));
       ])

let () =
  bench_checkpoint_io ();
  bench_recovery_latency ();
  bench_overhead ();
  let doc =
    Telemetry.Json.Obj
      (("schema", Telemetry.Json.String "fireaxe-bench-recovery-1") :: List.rev !json_fields)
  in
  let oc = open_out "BENCH_recovery.json" in
  output_string oc (Telemetry.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_recovery.json\n"
