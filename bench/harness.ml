(* Shared bench harness: the timing, warmup, design-construction and
   JSON-report scaffolding that every microbench in this directory was
   duplicating.  Each bench keeps its own measurement loop and row
   shape; what lives here is the machinery around it. *)

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* A few cycles touch every code path (and fault in compiled programs)
   before the clock starts. *)
let warmup ?(cycles = 16) step =
  for _ = 1 to cycles do
    step ()
  done

(* The benchmark NoC designs shared across benches: a ring of 8 routers
   and a 4x4 mesh, both with period-4 traffic generators. *)
let ring8 () = Socgen.Ring_noc.ring_soc ~n_tiles:8 ~period:4 ()
let mesh4x4 () = Socgen.Mesh_noc.mesh_soc ~width:4 ~height:4 ~period:4 ()

let noc_plan ~groups circuit =
  let config =
    {
      Fireripper.Spec.default_config with
      Fireripper.Spec.selection = Fireripper.Spec.Noc_routers groups;
    }
  in
  Fireripper.Compile.compile ~config circuit

(** Writes the machine-readable counterpart of a bench's stdout table:
    [{schema; <extra fields>; designs: [{...}]}].  [designs] rows are
    taken newest-first (the order benches accumulate them in) and
    written oldest-first. *)
let write_report ~schema ?(extra = []) ~designs ~path () =
  let doc =
    Telemetry.Json.Obj
      ([ ("schema", Telemetry.Json.String schema) ]
      @ extra
      @ [
          ( "designs",
            Telemetry.Json.List
              (List.rev_map (fun fields -> Telemetry.Json.Obj fields) designs) );
        ])
  in
  let oc = open_out path in
  output_string oc (Telemetry.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path
