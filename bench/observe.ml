(* Observability microbench: prices waveform capture and the flight
   recorder on the single-core Kite SoC (tile | rest partitioning).

   Four configurations over the same run, reported on stdout and as
   BENCH_observe.json:

   - off:      one [Runtime.run] call to the target cycle (baseline);
   - stepped:  the per-cycle driving loop capture needs, sampling
               nothing — prices the loop itself;
   - flight:   stepped + a 256-deep flight-recorder ring;
   - vcd:      stepped + full waveform capture of the probe signals
               and boundary channels, including the final render;
   - bwave:    the same full capture rendered into the compact indexed
               binary wavestore instead of VCD text — prices the
               --wave-out path that makes full-capture rows affordable.

   Each configuration instantiates a fresh handle so caches and channel
   queues start identical. *)

module FR = Fireripper
module D = Debug

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (Unix.gettimeofday () -. t0, x)

(* Best of [reps] runs: the overhead percentages divide small
   differences, so a single noisy measurement of the baseline would
   swing every row; minima are stable on shared runners. *)
let reps = 5

let best f =
  let r = ref (time f) in
  for _ = 2 to reps do
    let t, x = time f in
    if t < fst !r then r := (t, x)
  done;
  !r

let ms secs = secs *. 1000.

let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:8 ~reps:8 ~dst:60
let data = List.init 8 (fun i -> (32 + i, (i * 3) + 2))

let soc_plan () =
  let config =
    { FR.Spec.default_config with FR.Spec.selection = FR.Spec.Instances [ [ "tile" ] ] }
  in
  FR.Compile.compile ~config (Socgen.Soc.single_core_soc ~mem_latency:1 ())

let load_soc h =
  let mu = FR.Runtime.locate h "mem$mem" in
  Socgen.Soc.load_program (FR.Runtime.sim_of h mu) ~mem:"mem$mem" ~data program

let probes = [ "tile$core$pc"; "tile$core$retired_count"; "mem$state" ]
let cycles = 20_000

let fresh_handle () =
  let h = FR.Runtime.instantiate (soc_plan ()) in
  load_soc h;
  h

let stepped h per_cycle =
  for c = 1 to cycles do
    FR.Runtime.run h ~cycles:c;
    per_cycle c
  done

let () =
  (* Warm-up outside the measurements: plan compilation paths, minor
     heap growth. *)
  (let h = fresh_handle () in
   FR.Runtime.run h ~cycles:200);
  let base_secs, _ =
    best (fun () ->
        let h = fresh_handle () in
        FR.Runtime.run h ~cycles)
  in
  let stepped_secs, _ =
    best (fun () ->
        let h = fresh_handle () in
        stepped h (fun _ -> ()))
  in
  let flight_secs, _ =
    best (fun () ->
        let h = fresh_handle () in
        let fl = D.Flight.of_handle ~depth:256 ~probes h in
        stepped h (fun c -> D.Flight.record fl ~cycle:c))
  in
  let vcd_secs, vcd_bytes =
    best (fun () ->
        let h = fresh_handle () in
        let cap = D.Capture.of_handle h ~probes in
        stepped h (fun c -> D.Capture.sample cap ~cycle:c);
        String.length (D.Capture.contents cap))
  in
  (* The binary store holds probe signals only, so its capture skips
     the boundary-channel tracks the VCD row also pays for. *)
  let bwave_secs, bwave_bytes =
    best (fun () ->
        let h = fresh_handle () in
        let cap = D.Capture.of_handle ~channels:false h ~probes in
        stepped h (fun c -> D.Capture.sample cap ~cycle:c);
        String.length (D.Capture.wave_contents cap))
  in
  let rows = ref [] in
  let row name secs extra =
    let overhead = (secs -. base_secs) /. base_secs *. 100. in
    Printf.printf "%-8s %8.2f ms   %10.0f cycles/s   %+7.1f%% vs off\n" name (ms secs)
      (float_of_int cycles /. secs)
      overhead;
    rows :=
      Telemetry.Json.Obj
        (extra
        @ [
            ("config", Telemetry.Json.String name);
            ("ms", Telemetry.Json.Float (ms secs));
            ("cycles_per_s", Telemetry.Json.Float (float_of_int cycles /. secs));
            ("overhead_pct", Telemetry.Json.Float overhead);
          ])
      :: !rows
  in
  row "off" base_secs [];
  row "stepped" stepped_secs [];
  row "flight" flight_secs [ ("ring_depth", Telemetry.Json.Int 256) ];
  row "vcd" vcd_secs [ ("vcd_bytes", Telemetry.Json.Int vcd_bytes) ];
  row "bwave" bwave_secs [ ("wave_bytes", Telemetry.Json.Int bwave_bytes) ];
  let doc =
    Telemetry.Json.Obj
      [
        ("schema", Telemetry.Json.String "fireaxe-bench-observe-1");
        ("cycles", Telemetry.Json.Int cycles);
        ( "probes",
          Telemetry.Json.List (List.map (fun p -> Telemetry.Json.String p) probes) );
        ("configs", Telemetry.Json.List (List.rev !rows));
      ]
  in
  let oc = open_out "BENCH_observe.json" in
  output_string oc (Telemetry.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_observe.json\n"
