(* Standalone entry point for the evaluation-engine microbench, so the
   closure-vs-bytecode comparison can be run without the full figure
   suite. *)
let () = Eval.run ()
