(* Parallel-scheduler speedup microbench: the same multi-partition NoC
   designs run under the sequential and parallel schedulers, reporting
   wall-clock time, tokens/s and the seq/par ratio.

   LI-BDN determinism guarantees identical token streams either way, so
   this is a pure execution-policy comparison.  On a single-core host
   the ratio hovers around (or below) 1x — one domain per partition
   only pays off once [Domain.recommended_domain_count] admits real
   concurrency — which is why the host's domain count is printed with
   the results. *)

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let measure plan ~cycles scheduler =
  let h = Fireripper.Runtime.instantiate ~scheduler plan in
  let secs = time (fun () -> Fireripper.Runtime.run h ~cycles) in
  (secs, Fireripper.Runtime.token_transfers h)

let bench ~name ~cycles plan =
  Printf.printf "%-12s %d partitions, %d target cycles\n" name
    (Fireripper.Plan.n_units plan) cycles;
  let run scheduler =
    let secs, tokens = measure plan ~cycles scheduler in
    Printf.printf "  %-4s %8.3f s %12.0f tokens/s %10.0f cycles/s\n"
      (Libdn.Scheduler.name scheduler)
      secs
      (float_of_int tokens /. secs)
      (float_of_int cycles /. secs);
    secs
  in
  let seq = run Libdn.Scheduler.Sequential in
  let par = run Libdn.Scheduler.Parallel in
  Printf.printf "  speedup (seq/par wall-clock): %.2fx\n" (seq /. par)

let noc_plan ~groups circuit =
  let config =
    {
      Fireripper.Spec.default_config with
      Fireripper.Spec.selection = Fireripper.Spec.Noc_routers groups;
    }
  in
  Fireripper.Compile.compile ~config circuit

let run () =
  Printf.printf "\n== scheduler speedup (host domains: %d) ==\n"
    (Domain.recommended_domain_count ());
  (* Ring of 8 routers cut into 4 partitions of 2 (plus none left over:
     the reflector/tile wrapper is its own unit). *)
  bench ~name:"ring-8/4way" ~cycles:2_000
    (noc_plan
       ~groups:[ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ]; [ 6; 7 ] ]
       (Socgen.Ring_noc.ring_soc ~n_tiles:8 ~period:4 ()));
  (* 4x4 mesh cut into row bands (rows 0-2 extracted, row 3 stays with
     the tile wrapper). *)
  bench ~name:"mesh-4x4/4way" ~cycles:1_000
    (noc_plan
       ~groups:
         [
           Socgen.Mesh_noc.row_group ~width:4 0;
           Socgen.Mesh_noc.row_group ~width:4 1;
           Socgen.Mesh_noc.row_group ~width:4 2;
         ]
       (Socgen.Mesh_noc.mesh_soc ~width:4 ~height:4 ~period:4 ()))
