(* Parallel-scheduler speedup microbench: the same multi-partition NoC
   designs run under the sequential and parallel schedulers, reporting
   wall-clock time, tokens/s and the seq/par ratio.

   LI-BDN determinism guarantees identical token streams either way, so
   this is a pure execution-policy comparison.  On a single-core host
   the ratio hovers around (or below) 1x — one domain per partition
   only pays off once [Domain.recommended_domain_count] admits real
   concurrency — which is why the host's domain count is printed with
   the results.

   A second measurement per design forces one REAL domain per partition
   ([Libdn.Scheduler.set_host_domains]) and runs twice — once with the
   disabled {!Telemetry.Profile.null} sink, once with a live profile —
   so the report carries (a) a truthful per-partition
   run/exchange/spin/park/barrier stall breakdown (the cooperative
   single-core fallback structurally cannot produce one: every
   round-robin visit progresses, so its spin/park counters sit at
   zero), and (b) the profiler's enabled-vs-disabled overhead measured
   on the same execution path. *)

(* Each measurement runs with a live telemetry sink so the JSON report
   can break wall-clock down into per-partition run/idle/barrier time
   and per-channel stall attribution. *)
let measure ?profile plan ~cycles scheduler =
  let telemetry = Telemetry.create () in
  let h = Fireripper.Runtime.instantiate ~scheduler ~telemetry ?profile plan in
  let secs = Harness.time (fun () -> Fireripper.Runtime.run h ~cycles) in
  (secs, Fireripper.Runtime.token_transfers h, telemetry)

(* Total stalls attributed to each input channel
   ([net.<part>.in.<chan>.stalled], nonzero entries only). *)
let stalled_channels tel =
  List.filter_map
    (fun (name, v) ->
      if v > 0 && String.ends_with ~suffix:".stalled" name then
        Some (name, Telemetry.Json.Int v)
      else None)
    (Telemetry.counters tel)

(* Per-partition stall breakdown, lifted from the profile document so
   the bench reports exactly what [--profile] users will see: measured
   run/exchange/spin/park/barrier nanoseconds plus spin/park counts. *)
let stall_breakdown profile =
  let module J = Telemetry.Json in
  match Telemetry.Profile.to_json profile with
  | J.Obj fields -> (
    match List.assoc_opt "partitions" fields with
    | Some (J.List parts) ->
      List.filter_map
        (fun p ->
          match p with
          | J.Obj pf -> (
            match List.assoc_opt "name" pf with
            | Some (J.String name) ->
              let keep =
                List.filter
                  (fun (k, _) ->
                    List.mem k
                      [
                        "run_ns"; "exchange_ns"; "spin_ns"; "park_ns";
                        "barrier_ns"; "spins"; "parks";
                      ])
                  pf
              in
              Some (name, J.Obj keep)
            | _ -> None)
          | _ -> None)
        parts
      |> List.sort compare
    | _ -> [])
  | _ -> []

(* Collected per-design rows for the machine-readable report. *)
let report_rows : (string * Telemetry.Json.t) list list ref = ref []

let bench ~name ~cycles plan =
  Printf.printf "%-12s %d partitions, %d target cycles\n" name
    (Fireripper.Plan.n_units plan) cycles;
  let run ?profile ~tag scheduler =
    let secs, tokens, tel = measure ?profile plan ~cycles scheduler in
    Printf.printf "  %-9s %8.3f s %12.0f tokens/s %10.0f cycles/s\n" tag secs
      (float_of_int tokens /. secs)
      (float_of_int cycles /. secs);
    (secs, tokens, tel)
  in
  let seq_secs, seq_tokens, _ =
    run ~tag:"seq" Libdn.Scheduler.Sequential
  in
  let par_secs, par_tokens, _ = run ~tag:"par" Libdn.Scheduler.Parallel in
  Printf.printf "  speedup (seq/par wall-clock): %.2fx\n" (seq_secs /. par_secs);
  (* Real-domain section: force one domain per partition — even on a
     single-core host — so the profiled and unprofiled runs take the
     SAME execution path and their delta is the profiler's cost, not a
     cooperative-vs-domains policy change. *)
  let n_units = Fireripper.Plan.n_units plan in
  Libdn.Scheduler.set_host_domains n_units;
  let base_secs, _, _ = run ~tag:"domains" Libdn.Scheduler.Parallel in
  let profile = Telemetry.Profile.create () in
  let prof_secs, _, prof_tel =
    run ~profile ~tag:"profiled" Libdn.Scheduler.Parallel
  in
  Libdn.Scheduler.set_host_domains 0;
  let overhead_pct = 100. *. (prof_secs -. base_secs) /. base_secs in
  Printf.printf "  profile overhead (enabled vs disabled, real domains): %.1f%%\n"
    overhead_pct;
  let sched_row secs tokens =
    Telemetry.Json.Obj
      [
        ("secs", Telemetry.Json.Float secs);
        ("tokens", Telemetry.Json.Int tokens);
        ("tokens_per_s", Telemetry.Json.Float (float_of_int tokens /. secs));
        ("cycles_per_s", Telemetry.Json.Float (float_of_int cycles /. secs));
      ]
  in
  report_rows :=
    [
      ("name", Telemetry.Json.String name);
      ("partitions", Telemetry.Json.Int (Fireripper.Plan.n_units plan));
      ("cycles", Telemetry.Json.Int cycles);
      ("seq", sched_row seq_secs seq_tokens);
      ("par", sched_row par_secs par_tokens);
      ("speedup", Telemetry.Json.Float (seq_secs /. par_secs));
      ( "par_domains",
        Telemetry.Json.Obj
          [
            ("secs", Telemetry.Json.Float base_secs);
            ("cycles_per_s", Telemetry.Json.Float (float_of_int cycles /. base_secs));
          ] );
      ( "par_profiled",
        Telemetry.Json.Obj
          [
            ("secs", Telemetry.Json.Float prof_secs);
            ("cycles_per_s", Telemetry.Json.Float (float_of_int cycles /. prof_secs));
          ] );
      ("profile_overhead_pct", Telemetry.Json.Float overhead_pct);
      ("stall_breakdown", Telemetry.Json.Obj (stall_breakdown profile));
      ("stalled_channels", Telemetry.Json.Obj (stalled_channels prof_tel));
    ]
    :: !report_rows

let run () =
  Printf.printf "\n== scheduler speedup (host domains: %d) ==\n"
    (Domain.recommended_domain_count ());
  (* Ring of 8 routers cut into 4 partitions of 2 (plus none left over:
     the reflector/tile wrapper is its own unit). *)
  bench ~name:"ring-8/4way" ~cycles:2_000
    (Harness.noc_plan
       ~groups:[ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ]; [ 6; 7 ] ]
       (Harness.ring8 ()));
  (* 4x4 mesh cut into row bands (rows 0-2 extracted, row 3 stays with
     the tile wrapper). *)
  bench ~name:"mesh-4x4/4way" ~cycles:1_000
    (Harness.noc_plan
       ~groups:
         [
           Socgen.Mesh_noc.row_group ~width:4 0;
           Socgen.Mesh_noc.row_group ~width:4 1;
           Socgen.Mesh_noc.row_group ~width:4 2;
         ]
       (Harness.mesh4x4 ()));
  Harness.write_report ~schema:"fireaxe-bench-speedup-1"
    ~extra:
      [ ("host_domains", Telemetry.Json.Int (Domain.recommended_domain_count ())) ]
    ~designs:!report_rows ~path:"BENCH_speedup.json" ()
