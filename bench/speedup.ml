(* Parallel-scheduler speedup microbench: the same multi-partition NoC
   designs run under the sequential and parallel schedulers, reporting
   wall-clock time, tokens/s and the seq/par ratio — per-cycle and with
   cycle-batched token exchange ([batch_cycles]).

   LI-BDN determinism guarantees identical token streams either way, so
   this is a pure execution-policy comparison.  On a single-core host
   the ratio hovers around (or below) 1x — one domain per partition
   only pays off once [Domain.recommended_domain_count] admits real
   concurrency — which is why every row records the PHYSICAL host
   domain count next to the EFFECTIVE one the run used, and marks rows
   that took the cooperative single-core fallback instead of spawning
   domains.  A reader (or the CI gate) can then tell a real scaling
   measurement from a placeholder taken on a starved runner.

   The scaling section sweeps forced host-domain counts 1/2/4/8: each
   point bin-packs the partitions onto that many domains with the
   [Platform.Place] placement pass (profiled-or-estimated load weights,
   LPT) and runs the parallel scheduler with batched exchange — the
   curve FireAxe's Figure-style speedup plots want.

   A second measurement per design forces one REAL domain per partition
   ([Libdn.Scheduler.set_host_domains]) and runs twice — once with the
   disabled {!Telemetry.Profile.null} sink, once with a live profile —
   so the report carries (a) a truthful per-partition
   run/exchange/spin/park/barrier stall breakdown (the cooperative
   single-core fallback structurally cannot produce one: every
   round-robin visit progresses, so its spin/park counters sit at
   zero), and (b) the profiler's enabled-vs-disabled overhead measured
   on the same execution path.  A discarded warmup run on that same
   path precedes the pair, so the first measured run no longer pays the
   one-off domain-spawn and page-fault cost that used to show up as a
   spurious NEGATIVE profiler overhead. *)

(* Each measurement runs with a live telemetry sink so the JSON report
   can break wall-clock down into per-partition run/idle/barrier time
   and per-channel stall attribution. *)
let measure ?profile ?(batch_cycles = 1) ?groups plan ~cycles scheduler =
  let telemetry = Telemetry.create () in
  let h =
    Fireripper.Runtime.instantiate ~scheduler ~batch_cycles ?groups ~telemetry
      ?profile plan
  in
  let secs = Harness.time (fun () -> Fireripper.Runtime.run h ~cycles) in
  (secs, Fireripper.Runtime.token_transfers h, telemetry)

(* The batched-exchange cap the par_batched and scaling rows run with:
   deep enough to amortize crossings on decoupled partitions, small
   enough that the adaptive controller converges within the bench. *)
let bench_batch_cycles = 16

(* Total stalls attributed to each input channel
   ([net.<part>.in.<chan>.stalled], nonzero entries only). *)
let stalled_channels tel =
  List.filter_map
    (fun (name, v) ->
      if v > 0 && String.ends_with ~suffix:".stalled" name then
        Some (name, Telemetry.Json.Int v)
      else None)
    (Telemetry.counters tel)

(* Per-partition stall breakdown, lifted from the profile document so
   the bench reports exactly what [--profile] users will see: measured
   run/exchange/spin/park/barrier nanoseconds plus spin/park counts. *)
let stall_breakdown profile =
  let module J = Telemetry.Json in
  match Telemetry.Profile.to_json profile with
  | J.Obj fields -> (
    match List.assoc_opt "partitions" fields with
    | Some (J.List parts) ->
      List.filter_map
        (fun p ->
          match p with
          | J.Obj pf -> (
            match List.assoc_opt "name" pf with
            | Some (J.String name) ->
              let keep =
                List.filter
                  (fun (k, _) ->
                    List.mem k
                      [
                        "run_ns"; "exchange_ns"; "spin_ns"; "park_ns";
                        "barrier_ns"; "spins"; "parks";
                      ])
                  pf
              in
              Some (name, J.Obj keep)
            | _ -> None)
          | _ -> None)
        parts
      |> List.sort compare
    | _ -> [])
  | _ -> []

(* How many domains a parallel run at [forced] host domains actually
   uses for [plan], and whether it is the cooperative fallback: 1
   domain below the spawn threshold, one per placement group when the
   placement pass fused partitions, one per partition otherwise. *)
let effective_domains plan ~forced ~groups =
  if forced <= 1 then (1, true)
  else
    match groups with
    | Some g -> (Array.fold_left max 0 g + 1, false)
    | None -> (Fireripper.Plan.n_units plan, false)

(* One point of the domain-scaling curve: force [forced] host domains,
   bin-pack the partitions onto them (Place Auto — load-weighted LPT),
   and run the parallel scheduler with batched exchange. *)
let scaling_point plan ~cycles ~seq_secs forced =
  Libdn.Scheduler.set_host_domains forced;
  let groups =
    Platform.Place.groups ~domains:forced ~policy:Platform.Place.Auto plan
  in
  let eff, cooperative = effective_domains plan ~forced ~groups in
  let secs, _, _ =
    measure ?groups ~batch_cycles:bench_batch_cycles plan ~cycles
      Libdn.Scheduler.Parallel
  in
  Libdn.Scheduler.set_host_domains 0;
  Printf.printf
    "  scale d=%d (effective %d%s) %8.3f s %10.0f cycles/s  %.2fx vs seq\n"
    forced eff
    (if cooperative then ", cooperative" else "")
    secs
    (float_of_int cycles /. secs)
    (seq_secs /. secs);
  Telemetry.Json.Obj
    [
      ("name", Telemetry.Json.String (Printf.sprintf "domains=%d" forced));
      ("forced_domains", Telemetry.Json.Int forced);
      ("effective_domains", Telemetry.Json.Int eff);
      ("cooperative_fallback", Telemetry.Json.Bool cooperative);
      ("batch_cycles", Telemetry.Json.Int bench_batch_cycles);
      ("secs", Telemetry.Json.Float secs);
      ("cycles_per_s", Telemetry.Json.Float (float_of_int cycles /. secs));
      ("speedup", Telemetry.Json.Float (seq_secs /. secs));
    ]

(* Collected per-design rows for the machine-readable report. *)
let report_rows : (string * Telemetry.Json.t) list list ref = ref []

let bench ~name ~cycles plan =
  let physical = Domain.recommended_domain_count () in
  Printf.printf "%-12s %d partitions, %d target cycles\n" name
    (Fireripper.Plan.n_units plan) cycles;
  let run ?profile ?batch_cycles ~tag scheduler =
    let secs, tokens, tel = measure ?profile ?batch_cycles plan ~cycles scheduler in
    Printf.printf "  %-9s %8.3f s %12.0f tokens/s %10.0f cycles/s\n" tag secs
      (float_of_int tokens /. secs)
      (float_of_int cycles /. secs);
    (secs, tokens, tel)
  in
  let seq_secs, seq_tokens, _ =
    run ~tag:"seq" Libdn.Scheduler.Sequential
  in
  let par_secs, par_tokens, _ = run ~tag:"par" Libdn.Scheduler.Parallel in
  Printf.printf "  speedup (seq/par wall-clock): %.2fx\n" (seq_secs /. par_secs);
  (* The same parallel run with cycle-batched exchange: up to
     [bench_batch_cycles] target cycles of tokens per channel transfer,
     adaptive below the cap.  Bit-exact with the per-cycle rows by
     LI-BDN determinism — the delta is pure synchronization cost. *)
  let parb_secs, parb_tokens, _ =
    run ~batch_cycles:bench_batch_cycles
      ~tag:(Printf.sprintf "par/K=%d" bench_batch_cycles)
      Libdn.Scheduler.Parallel
  in
  Printf.printf "  speedup (seq/par batched):    %.2fx\n" (seq_secs /. parb_secs);
  (* Domain-scaling curve: 1/2/4/8 forced host domains, load-balanced
     placement, batched exchange. *)
  let scaling =
    List.map (scaling_point plan ~cycles ~seq_secs) [ 1; 2; 4; 8 ]
  in
  (* Real-domain section: force one domain per partition — even on a
     single-core host — so the profiled and unprofiled runs take the
     SAME execution path and their delta is the profiler's cost, not a
     cooperative-vs-domains policy change.  The discarded warmup run
     eats the one-off spawn/fault cost first. *)
  let n_units = Fireripper.Plan.n_units plan in
  Libdn.Scheduler.set_host_domains n_units;
  ignore (measure plan ~cycles Libdn.Scheduler.Parallel);
  let base_secs, _, _ = run ~tag:"domains" Libdn.Scheduler.Parallel in
  let profile = Telemetry.Profile.create () in
  let prof_secs, _, prof_tel =
    run ~profile ~tag:"profiled" Libdn.Scheduler.Parallel
  in
  Libdn.Scheduler.set_host_domains 0;
  let overhead_pct = 100. *. (prof_secs -. base_secs) /. base_secs in
  Printf.printf "  profile overhead (enabled vs disabled, real domains): %.1f%%\n"
    overhead_pct;
  let sched_row secs tokens =
    Telemetry.Json.Obj
      [
        ("secs", Telemetry.Json.Float secs);
        ("tokens", Telemetry.Json.Int tokens);
        ("tokens_per_s", Telemetry.Json.Float (float_of_int tokens /. secs));
        ("cycles_per_s", Telemetry.Json.Float (float_of_int cycles /. secs));
      ]
  in
  report_rows :=
    [
      ("name", Telemetry.Json.String name);
      ("partitions", Telemetry.Json.Int (Fireripper.Plan.n_units plan));
      ("cycles", Telemetry.Json.Int cycles);
      ("physical_domains", Telemetry.Json.Int physical);
      ( "cooperative_fallback",
        (* Whether the headline seq/par rows above ran cooperatively
           (single-domain host): their "speedup" then measures scheduler
           bookkeeping, not parallelism. *)
        Telemetry.Json.Bool (physical <= 1) );
      ("seq", sched_row seq_secs seq_tokens);
      ("par", sched_row par_secs par_tokens);
      ("speedup", Telemetry.Json.Float (seq_secs /. par_secs));
      ("par_batched", sched_row parb_secs parb_tokens);
      ("batch_cycles", Telemetry.Json.Int bench_batch_cycles);
      ("speedup_batched", Telemetry.Json.Float (seq_secs /. parb_secs));
      ("scaling", Telemetry.Json.List scaling);
      ( "par_domains",
        Telemetry.Json.Obj
          [
            ("secs", Telemetry.Json.Float base_secs);
            ("cycles_per_s", Telemetry.Json.Float (float_of_int cycles /. base_secs));
          ] );
      ( "par_profiled",
        Telemetry.Json.Obj
          [
            ("secs", Telemetry.Json.Float prof_secs);
            ("cycles_per_s", Telemetry.Json.Float (float_of_int cycles /. prof_secs));
          ] );
      ("profile_overhead_pct", Telemetry.Json.Float overhead_pct);
      ("stall_breakdown", Telemetry.Json.Obj (stall_breakdown profile));
      ("stalled_channels", Telemetry.Json.Obj (stalled_channels prof_tel));
    ]
    :: !report_rows

let run () =
  Printf.printf "\n== scheduler speedup (host domains: %d) ==\n"
    (Domain.recommended_domain_count ());
  (* Ring of 8 routers cut into 4 partitions of 2 (plus none left over:
     the reflector/tile wrapper is its own unit). *)
  bench ~name:"ring-8/4way" ~cycles:2_000
    (Harness.noc_plan
       ~groups:[ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ]; [ 6; 7 ] ]
       (Harness.ring8 ()));
  (* 4x4 mesh cut into row bands (rows 0-2 extracted, row 3 stays with
     the tile wrapper). *)
  bench ~name:"mesh-4x4/4way" ~cycles:1_000
    (Harness.noc_plan
       ~groups:
         [
           Socgen.Mesh_noc.row_group ~width:4 0;
           Socgen.Mesh_noc.row_group ~width:4 1;
           Socgen.Mesh_noc.row_group ~width:4 2;
         ]
       (Harness.mesh4x4 ()));
  Harness.write_report ~schema:"fireaxe-bench-speedup-1"
    ~extra:
      [ ("host_domains", Telemetry.Json.Int (Domain.recommended_domain_count ())) ]
    ~designs:!report_rows ~path:"BENCH_speedup.json" ()
