(* Parallel-scheduler speedup microbench: the same multi-partition NoC
   designs run under the sequential and parallel schedulers, reporting
   wall-clock time, tokens/s and the seq/par ratio.

   LI-BDN determinism guarantees identical token streams either way, so
   this is a pure execution-policy comparison.  On a single-core host
   the ratio hovers around (or below) 1x — one domain per partition
   only pays off once [Domain.recommended_domain_count] admits real
   concurrency — which is why the host's domain count is printed with
   the results. *)

(* Each measurement runs with a live telemetry sink so the JSON report
   can break wall-clock down into per-partition run/idle/barrier time
   and per-channel stall attribution (the breakdown is only populated
   under the parallel scheduler). *)
let measure plan ~cycles scheduler =
  let telemetry = Telemetry.create () in
  let h = Fireripper.Runtime.instantiate ~scheduler ~telemetry plan in
  let secs = Harness.time (fun () -> Fireripper.Runtime.run h ~cycles) in
  (secs, Fireripper.Runtime.token_transfers h, telemetry)

(* Per-partition run/idle/barrier nanoseconds, keyed from the
   [sched.par.<part>.<kind>_ns] counters. *)
let stall_breakdown tel =
  let tail s pre = String.sub s (String.length pre) (String.length s - String.length pre) in
  let parts = Hashtbl.create 8 in
  List.iter
    (fun (name, v) ->
      let pre = "sched.par." in
      if String.length name > String.length pre && String.starts_with ~prefix:pre name
      then begin
        let rest = tail name pre in
        match String.rindex_opt rest '.' with
        | Some i ->
          let part = String.sub rest 0 i in
          let kind = String.sub rest (i + 1) (String.length rest - i - 1) in
          let cur =
            match Hashtbl.find_opt parts part with Some l -> l | None -> []
          in
          Hashtbl.replace parts part ((kind, Telemetry.Json.Int v) :: cur)
        | None -> ()
      end)
    (Telemetry.counters tel);
  Hashtbl.fold (fun part fields acc -> (part, Telemetry.Json.Obj (List.rev fields)) :: acc) parts []
  |> List.sort compare

(* Total stalls attributed to each input channel
   ([net.<part>.in.<chan>.stalled], nonzero entries only). *)
let stalled_channels tel =
  List.filter_map
    (fun (name, v) ->
      if v > 0 && String.ends_with ~suffix:".stalled" name then
        Some (name, Telemetry.Json.Int v)
      else None)
    (Telemetry.counters tel)

(* Collected per-design rows for the machine-readable report. *)
let report_rows : (string * Telemetry.Json.t) list list ref = ref []

let bench ~name ~cycles plan =
  Printf.printf "%-12s %d partitions, %d target cycles\n" name
    (Fireripper.Plan.n_units plan) cycles;
  let run scheduler =
    let secs, tokens, tel = measure plan ~cycles scheduler in
    Printf.printf "  %-4s %8.3f s %12.0f tokens/s %10.0f cycles/s\n"
      (Libdn.Scheduler.name scheduler)
      secs
      (float_of_int tokens /. secs)
      (float_of_int cycles /. secs);
    (secs, tokens, tel)
  in
  let seq_secs, seq_tokens, _ = run Libdn.Scheduler.Sequential in
  let par_secs, par_tokens, par_tel = run Libdn.Scheduler.Parallel in
  Printf.printf "  speedup (seq/par wall-clock): %.2fx\n" (seq_secs /. par_secs);
  let sched_row secs tokens =
    Telemetry.Json.Obj
      [
        ("secs", Telemetry.Json.Float secs);
        ("tokens", Telemetry.Json.Int tokens);
        ("tokens_per_s", Telemetry.Json.Float (float_of_int tokens /. secs));
        ("cycles_per_s", Telemetry.Json.Float (float_of_int cycles /. secs));
      ]
  in
  report_rows :=
    [
      ("name", Telemetry.Json.String name);
      ("partitions", Telemetry.Json.Int (Fireripper.Plan.n_units plan));
      ("cycles", Telemetry.Json.Int cycles);
      ("seq", sched_row seq_secs seq_tokens);
      ("par", sched_row par_secs par_tokens);
      ("speedup", Telemetry.Json.Float (seq_secs /. par_secs));
      ("stall_breakdown", Telemetry.Json.Obj (stall_breakdown par_tel));
      ("stalled_channels", Telemetry.Json.Obj (stalled_channels par_tel));
    ]
    :: !report_rows

let run () =
  Printf.printf "\n== scheduler speedup (host domains: %d) ==\n"
    (Domain.recommended_domain_count ());
  (* Ring of 8 routers cut into 4 partitions of 2 (plus none left over:
     the reflector/tile wrapper is its own unit). *)
  bench ~name:"ring-8/4way" ~cycles:2_000
    (Harness.noc_plan
       ~groups:[ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ]; [ 6; 7 ] ]
       (Harness.ring8 ()));
  (* 4x4 mesh cut into row bands (rows 0-2 extracted, row 3 stays with
     the tile wrapper). *)
  bench ~name:"mesh-4x4/4way" ~cycles:1_000
    (Harness.noc_plan
       ~groups:
         [
           Socgen.Mesh_noc.row_group ~width:4 0;
           Socgen.Mesh_noc.row_group ~width:4 1;
           Socgen.Mesh_noc.row_group ~width:4 2;
         ]
       (Harness.mesh4x4 ()));
  Harness.write_report ~schema:"fireaxe-bench-speedup-1"
    ~extra:
      [ ("host_domains", Telemetry.Json.Int (Domain.recommended_domain_count ())) ]
    ~designs:!report_rows ~path:"BENCH_speedup.json" ()
