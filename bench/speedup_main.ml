(* Standalone entry point for the scheduler-speedup microbench, so the
   seq-vs-par comparison can be run without the full figure suite. *)
let () = Speedup.run ()
