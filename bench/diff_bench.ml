(* diff_bench: CI perf-regression gate over the bench JSON reports.

     diff_bench BASELINE.json FRESH.json [--tolerance PCT]

   Walks both documents, pairs up every throughput-like numeric metric
   (tokens/s, cycles/s, aggregate lane rates, speedup ratios) by its
   path — list elements are keyed by their "name" member so reordering
   a design row does not shift every comparison — and fails (exit 1)
   when any fresh value regresses more than the tolerance band below
   its committed baseline (default 25%, wide enough for shared-runner
   noise; higher-is-better is assumed for every gated metric).

   Metrics present on only one side are reported but never fatal:
   adding a bench extends the fresh report before the baseline is
   regenerated, and that must not gate unrelated changes. *)

let metric_keys =
  [
    "tokens_per_s"; "cycles_per_s"; "vec_agg_cycles_per_s";
    "solo_agg_cycles_per_s"; "off_cycles_per_s"; "on_cycles_per_s"; "speedup";
    "speedup_batched"; "sessions_per_s"; "packed_agg_cycles_per_s";
    "independent_agg_cycles_per_s";
  ]

(* Flattens a document into (path, value) rows for the gated metrics. *)
let collect json =
  let module J = Telemetry.Json in
  let rows = ref [] in
  let label_of fields i =
    match List.assoc_opt "name" fields with
    | Some (J.String n) -> n
    | _ -> (
      match List.assoc_opt "config" fields with
      | Some (J.String n) -> n
      | _ -> string_of_int i)
  in
  let rec walk path j =
    match j with
    | J.Obj fields ->
      List.iter
        (fun (k, v) ->
          let p = if path = "" then k else path ^ "." ^ k in
          match v with
          | J.Int n when List.mem k metric_keys -> rows := (p, float_of_int n) :: !rows
          | J.Float f when List.mem k metric_keys -> rows := (p, f) :: !rows
          | _ -> walk p v)
        fields
    | J.List items ->
      List.iteri
        (fun i item ->
          let label =
            match item with J.Obj fields -> label_of fields i | _ -> string_of_int i
          in
          walk (Printf.sprintf "%s[%s]" path label) item)
        items
    | _ -> ()
  in
  walk "" json;
  List.rev !rows

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match Telemetry.Json.parse text with
  | Ok j -> j
  | Error m ->
    Printf.eprintf "diff_bench: %s: %s\n" path m;
    exit 2

let () =
  let args = Array.to_list Sys.argv in
  let tolerance = ref 25.0 in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t >= 0. ->
        tolerance := t;
        parse rest
      | _ ->
        Printf.eprintf "diff_bench: bad tolerance %S\n" v;
        exit 2)
    | f :: rest ->
      files := f :: !files;
      parse rest
  in
  parse (List.tl args);
  match List.rev !files with
  | [ baseline_path; fresh_path ] ->
    let baseline = collect (load baseline_path) in
    let fresh = collect (load fresh_path) in
    let regressions = ref 0 in
    let compared = ref 0 in
    List.iter
      (fun (path, base) ->
        match List.assoc_opt path fresh with
        | None -> Printf.printf "  (gone)     %-60s baseline %12.1f\n" path base
        | Some now ->
          incr compared;
          let delta_pct =
            if base = 0. then 0. else 100. *. (now -. base) /. base
          in
          if delta_pct < -.(!tolerance) then begin
            incr regressions;
            Printf.printf "  REGRESSED  %-60s %12.1f -> %12.1f (%+.1f%%)\n" path
              base now delta_pct
          end
          else if abs_float delta_pct > !tolerance then
            Printf.printf "  improved   %-60s %12.1f -> %12.1f (%+.1f%%)\n" path
              base now delta_pct)
      baseline;
    List.iter
      (fun (path, now) ->
        if List.assoc_opt path baseline = None then
          Printf.printf "  (new)      %-60s fresh    %12.1f\n" path now)
      fresh;
    Printf.printf
      "diff_bench: %d metrics compared against %s (tolerance %.0f%%), %d regressed\n"
      !compared baseline_path !tolerance !regressions;
    if !regressions > 0 then exit 1
  | _ ->
    prerr_endline "usage: diff_bench BASELINE.json FRESH.json [--tolerance PCT]";
    exit 2
