(* Simulation-service microbench: prices the session server end to end,
   over its real socket protocol.

   Two measurements, reported on stdout and as BENCH_service.json:

   - session churn: create/kill round trips per second against a warm
     server, plus the cold-vs-warm create split — the first create of a
     design pays FIRRTL parse + flatten + estimate + engine compile,
     every later create of the same text rides the bind-time compile
     cache;

   - tenant packing: N same-design sessions stepped as lanes of ONE
     vectorized bytecode engine (create with pack=1, fill the credit
     barrier with step_async, collect with wait) against the same N
     sessions as private engines (pack=0, blocking steps), both in
     aggregate cycles/s.  The packed/independent ratio is the headline
     [speedup] the CI gate holds. *)

let with_tmpdir f =
  let dir = Filename.temp_file "fireaxe_svc_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

let ms secs = secs *. 1000.

let with_server dir f =
  let socket_path = Filename.concat dir "svc.sock" in
  let cfg = Service.Server.default_config ~socket_path in
  let d = Domain.spawn (fun () -> Service.Server.run cfg) in
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = Service.Client.connect ~retry_for:2. ~socket_path () in
         Service.Client.shutdown c;
         Service.Client.close c
       with _ -> ());
      Domain.join d)
    (fun () ->
      let c = Service.Client.connect ~retry_for:5. ~socket_path () in
      Fun.protect ~finally:(fun () -> Service.Client.close c) (fun () -> f c))

(* ------------------------------------------------------------------ *)
(* Session churn                                                       *)
(* ------------------------------------------------------------------ *)

let bench_churn c =
  let text = Firrtl.Text.emit (Harness.ring8 ()) in
  let create () =
    Harness.time (fun () ->
        let r = Service.Client.create c ~design:text in
        Service.Client.kill c ~sid:r.Service.Client.c_sid)
  in
  let cold_secs = create () in
  let pairs = 24 in
  let warm_secs = Harness.time (fun () -> for _ = 1 to pairs do ignore (create ()) done) in
  let warm_each = warm_secs /. float_of_int pairs in
  let rate = float_of_int pairs /. warm_secs in
  Printf.printf "churn    cold create+kill %8.2f ms   warm %8.2f ms   %8.1f sessions/s\n"
    (ms cold_secs) (ms warm_each) rate;
  ( "churn",
    Telemetry.Json.Obj
      [
        ("name", Telemetry.Json.String "ring-8");
        ("pairs", Telemetry.Json.Int pairs);
        ("create_cold_ms", Telemetry.Json.Float (ms cold_secs));
        ("create_warm_ms", Telemetry.Json.Float (ms warm_each));
        ("cold_vs_warm", Telemetry.Json.Float (cold_secs /. warm_each));
        ("sessions_per_s", Telemetry.Json.Float rate);
      ] )

(* ------------------------------------------------------------------ *)
(* Tenant packing                                                      *)
(* ------------------------------------------------------------------ *)

let bench_packing c =
  let tenants = 8 and cycles = 2_000 in
  let text = Firrtl.Text.emit (Harness.mesh4x4 ()) in
  let batch ~pack =
    let sids =
      Array.init tenants (fun _ ->
          (Service.Client.create ~pack c ~design:text).Service.Client.c_sid)
    in
    Fun.protect
      ~finally:(fun () -> Array.iter (fun sid -> Service.Client.kill c ~sid) sids)
      (fun () ->
        (* Fault everything in (compiled programs, value images) before
           the clock starts, mirroring the engine benches.  The packed
           batch must warm up the way it runs — async grants filling the
           credit barrier; a blocking [step] would park at the barrier
           until [pack_wait] expired and the server detached the tenant
           into a private engine, silently unpacking the whole batch. *)
        let run n =
          if pack then begin
            Array.iter (fun sid -> ignore (Service.Client.step_async c ~sid n)) sids;
            Array.iter (fun sid -> ignore (Service.Client.wait c ~sid)) sids
          end
          else Array.iter (fun sid -> ignore (Service.Client.step c ~sid n)) sids
        in
        run 16;
        Harness.time (fun () -> run cycles))
  in
  let indep_secs = batch ~pack:false in
  let packed_secs = batch ~pack:true in
  let agg secs = float_of_int (tenants * cycles) /. secs in
  let speedup = indep_secs /. packed_secs in
  Printf.printf
    "packing  %d tenants x %d cycles   independent %8.3f s %10.0f cyc/s   packed %8.3f s %10.0f cyc/s   %.2fx\n"
    tenants cycles indep_secs (agg indep_secs) packed_secs (agg packed_secs) speedup;
  ( "packing",
    Telemetry.Json.Obj
      [
        ("name", Telemetry.Json.String "mesh-4x4");
        ("tenants", Telemetry.Json.Int tenants);
        ("cycles", Telemetry.Json.Int cycles);
        ("independent_secs", Telemetry.Json.Float indep_secs);
        ("independent_agg_cycles_per_s", Telemetry.Json.Float (agg indep_secs));
        ("packed_secs", Telemetry.Json.Float packed_secs);
        ("packed_agg_cycles_per_s", Telemetry.Json.Float (agg packed_secs));
        ("speedup", Telemetry.Json.Float speedup);
      ] )

let () =
  Printf.printf "== simulation service (socket protocol end to end) ==\n";
  with_tmpdir (fun dir ->
      with_server dir (fun c ->
          let churn = bench_churn c in
          let packing = bench_packing c in
          (* The server's own counters close the loop: the churn creates
             must be cache hits, the packed batch must report packing. *)
          let stats = Service.Client.stats c in
          let counter k =
            Telemetry.Json.(member "counters" stats |> Option.map (member k) |> Option.join)
            |> Option.value ~default:Telemetry.Json.Null
          in
          Harness.write_report ~schema:"fireaxe-bench-service-1"
            ~extra:
              [
                churn;
                packing;
                ( "server_counters",
                  Telemetry.Json.Obj
                    [
                      ("cache_hits", counter "cache_hits");
                      ("cache_misses", counter "cache_misses");
                      ("packed", counter "packed");
                    ] );
              ]
            ~designs:[] ~path:"BENCH_service.json" ()))
