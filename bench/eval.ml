(* Evaluation-engine microbench: the same monolithic designs stepped
   under the closure engine, the compiled bytecode engine, and the
   deliberately naive fixpoint sweep, reporting cycles/s for each.

   All three produce bit-identical values (the engine crosscheck tests
   assert it), so this is a pure evaluation-strategy comparison: how
   much the flat instruction streams buy over per-assignment closures,
   and how much levelization buys over sweeping to a fixpoint.

   A second sweep measures vectorization: one N-lane bytecode sim
   (one instruction stream, N value images in lockstep) against N
   sequential single-lane sims, in aggregate cycles/s. *)

(* One evaluation strategy: a fresh simulator plus the per-cycle body
   it is driven with. *)
type strategy = { st_name : string; st_make : unit -> Rtlsim.Sim.t * (unit -> unit) }

let strategies flat =
  let engined engine =
    let sim = Rtlsim.Sim.create ~engine flat in
    (sim, fun () -> Rtlsim.Sim.step sim)
  in
  [
    { st_name = "closure"; st_make = (fun () -> engined Rtlsim.Sim.Closure) };
    { st_name = "bytecode"; st_make = (fun () -> engined Rtlsim.Sim.Bytecode) };
    {
      st_name = "fixpoint";
      st_make =
        (fun () ->
          (* The closure engine swept in reverse declaration order until
             no value changes — the ablation baseline for levelization. *)
          let sim = Rtlsim.Sim.create ~engine:Rtlsim.Sim.Closure flat in
          ( sim,
            fun () ->
              Rtlsim.Sim.eval_comb_fixpoint sim;
              Rtlsim.Sim.step_seq sim ));
    };
  ]

let report_rows : (string * Telemetry.Json.t) list list ref = ref []

let bench ~name ~cycles circuit =
  let flat = Firrtl.Flatten.flatten circuit in
  Printf.printf "%-12s %d target cycles\n" name cycles;
  let rows =
    List.map
      (fun st ->
        let _, step = st.st_make () in
        Harness.warmup step;
        let secs = Harness.time (fun () -> for _ = 1 to cycles do step () done) in
        let rate = float_of_int cycles /. secs in
        Printf.printf "  %-9s %8.3f s %12.0f cycles/s\n" st.st_name secs rate;
        (st.st_name, secs, rate))
      (strategies flat)
  in
  let rate_of n = List.find_map (fun (s, _, r) -> if s = n then Some r else None) rows in
  (match (rate_of "bytecode", rate_of "closure") with
  | Some b, Some c -> Printf.printf "  bytecode/closure: %.2fx\n" (b /. c)
  | _ -> ());
  report_rows :=
    ([
       ("name", Telemetry.Json.String name);
       ("cycles", Telemetry.Json.Int cycles);
     ]
    @ List.map
        (fun (st, secs, rate) ->
          ( st,
            Telemetry.Json.Obj
              [
                ("secs", Telemetry.Json.Float secs);
                ("cycles_per_s", Telemetry.Json.Float rate);
              ] ))
        rows
    @ [
        ( "bytecode_vs_closure",
          Telemetry.Json.Float
            (match (rate_of "bytecode", rate_of "closure") with
            | Some b, Some c -> b /. c
            | _ -> 0.) );
      ])
    :: !report_rows

(* ------------------------------------------------------------------ *)
(* Lane sweep                                                          *)
(* ------------------------------------------------------------------ *)

let lane_rows : Telemetry.Json.t list ref = ref []

(* For each lane count N: wall-clock of N sequential fresh single-lane
   bytecode sims stepping [cycles] each, against ONE N-lane sim
   stepping [cycles] — both deliver N*cycles simulated cycles, so the
   honest comparison is aggregate cycles/s.  Construction and warmup
   stay outside the clock on both sides. *)
let bench_lanes ~name ~cycles circuit =
  let flat = Firrtl.Flatten.flatten circuit in
  Printf.printf "%-12s lane sweep, %d target cycles per lane\n" name cycles;
  let sweep =
    List.map
      (fun n ->
        let solos =
          Array.init n (fun _ -> Rtlsim.Sim.create ~engine:Rtlsim.Sim.Bytecode flat)
        in
        Array.iter (fun s -> Harness.warmup (fun () -> Rtlsim.Sim.step s)) solos;
        let solo_secs =
          Harness.time (fun () ->
              Array.iter
                (fun s -> for _ = 1 to cycles do Rtlsim.Sim.step s done)
                solos)
        in
        let vec = Rtlsim.Sim.create ~engine:Rtlsim.Sim.Bytecode ~lanes:n flat in
        Harness.warmup (fun () -> Rtlsim.Sim.step vec);
        let vec_secs =
          Harness.time (fun () -> for _ = 1 to cycles do Rtlsim.Sim.step vec done)
        in
        let agg secs = float_of_int (n * cycles) /. secs in
        let speedup = solo_secs /. vec_secs in
        Printf.printf
          "  %d lane%s  solo %8.3f s %12.0f cyc/s   vec %8.3f s %12.0f cyc/s   %5.2fx\n"
          n
          (if n = 1 then " " else "s")
          solo_secs (agg solo_secs) vec_secs (agg vec_secs) speedup;
        Telemetry.Json.Obj
          [
            ("lanes", Telemetry.Json.Int n);
            ("solo_secs", Telemetry.Json.Float solo_secs);
            ("solo_agg_cycles_per_s", Telemetry.Json.Float (agg solo_secs));
            ("vec_secs", Telemetry.Json.Float vec_secs);
            ("vec_agg_cycles_per_s", Telemetry.Json.Float (agg vec_secs));
            ("speedup", Telemetry.Json.Float speedup);
          ])
      [ 1; 2; 4; 8 ]
  in
  lane_rows :=
    Telemetry.Json.Obj
      [
        ("name", Telemetry.Json.String name);
        ("cycles", Telemetry.Json.Int cycles);
        ("sweep", Telemetry.Json.List sweep);
      ]
    :: !lane_rows

(* ------------------------------------------------------------------ *)
(* Engine profiling overhead                                           *)
(* ------------------------------------------------------------------ *)

(* The same monolithic bytecode sim stepped with the disabled
   {!Telemetry.Profile.null} sink and with a live profile: the delta is
   the cost of the per-pass counters and clock reads on the engine hot
   path.  The live run also reports the retired opcode-class totals the
   profile attributes (static histogram x passes, so they are exact). *)
let profile_overhead ~name ~cycles circuit =
  let flat = Firrtl.Flatten.flatten circuit in
  let time profile =
    let sim = Rtlsim.Sim.create ~engine:Rtlsim.Sim.Bytecode ~profile flat in
    let step () = Rtlsim.Sim.step sim in
    Harness.warmup step;
    Harness.time (fun () -> for _ = 1 to cycles do step () done)
  in
  let off_secs = time Telemetry.Profile.null in
  let profile = Telemetry.Profile.create () in
  let on_secs = time profile in
  let overhead_pct = 100. *. (on_secs -. off_secs) /. off_secs in
  let retired =
    match Telemetry.Profile.to_json profile with
    | Telemetry.Json.Obj fields -> (
      match List.assoc_opt "opcode_classes" fields with
      | Some (Telemetry.Json.Obj classes) ->
        List.fold_left
          (fun acc (_, v) ->
            match v with Telemetry.Json.Int n -> acc + n | _ -> acc)
          0 classes
      | _ -> 0)
    | _ -> 0
  in
  Printf.printf
    "%-12s off %8.3f s   on %8.3f s   overhead %5.1f%%   %d instrs retired\n" name
    off_secs on_secs overhead_pct retired;
  Telemetry.Json.Obj
    [
      ("name", Telemetry.Json.String name);
      ("cycles", Telemetry.Json.Int cycles);
      ("off_secs", Telemetry.Json.Float off_secs);
      ("off_cycles_per_s", Telemetry.Json.Float (float_of_int cycles /. off_secs));
      ("on_secs", Telemetry.Json.Float on_secs);
      ("on_cycles_per_s", Telemetry.Json.Float (float_of_int cycles /. on_secs));
      ("overhead_pct", Telemetry.Json.Float overhead_pct);
      ("retired_instrs", Telemetry.Json.Int retired);
    ]

let run () =
  Printf.printf "\n== evaluation engines (monolithic cycles/s) ==\n";
  bench ~name:"soc/1core" ~cycles:30_000 (Socgen.Soc.single_core_soc ~mem_latency:1 ());
  bench ~name:"soc/sha3" ~cycles:100_000 (Socgen.Soc.accel_soc Socgen.Soc.Sha3);
  bench ~name:"ring-8" ~cycles:20_000 (Harness.ring8 ());
  bench ~name:"mesh-4x4" ~cycles:4_000 (Harness.mesh4x4 ());
  Printf.printf "\n== vectorized lanes (aggregate cycles/s, N-lane vs N solo) ==\n";
  bench_lanes ~name:"ring-8" ~cycles:5_000 (Harness.ring8 ());
  bench_lanes ~name:"mesh-4x4" ~cycles:1_000 (Harness.mesh4x4 ());
  Printf.printf "\n== engine profiling overhead (bytecode, profile on vs off) ==\n";
  let engine_profile =
    [
      profile_overhead ~name:"ring-8" ~cycles:20_000 (Harness.ring8 ());
      profile_overhead ~name:"mesh-4x4" ~cycles:4_000 (Harness.mesh4x4 ());
    ]
  in
  Harness.write_report ~schema:"fireaxe-bench-eval-1"
    ~extra:
      [
        ("lane_sweep", Telemetry.Json.List (List.rev !lane_rows));
        ("engine_profile", Telemetry.Json.List engine_profile);
      ]
    ~designs:!report_rows ~path:"BENCH_eval.json" ()
