(* Evaluation-engine microbench: the same monolithic designs stepped
   under the closure engine, the compiled bytecode engine, and the
   deliberately naive fixpoint sweep, reporting cycles/s for each.

   All three produce bit-identical values (the engine crosscheck tests
   assert it), so this is a pure evaluation-strategy comparison: how
   much the flat instruction streams buy over per-assignment closures,
   and how much levelization buys over sweeping to a fixpoint. *)

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* One evaluation strategy: a fresh simulator plus the per-cycle body
   it is driven with. *)
type strategy = { st_name : string; st_make : unit -> Rtlsim.Sim.t * (unit -> unit) }

let strategies flat =
  let engined engine =
    let sim = Rtlsim.Sim.create ~engine flat in
    (sim, fun () -> Rtlsim.Sim.step sim)
  in
  [
    { st_name = "closure"; st_make = (fun () -> engined Rtlsim.Sim.Closure) };
    { st_name = "bytecode"; st_make = (fun () -> engined Rtlsim.Sim.Bytecode) };
    {
      st_name = "fixpoint";
      st_make =
        (fun () ->
          (* The closure engine swept in reverse declaration order until
             no value changes — the ablation baseline for levelization. *)
          let sim = Rtlsim.Sim.create ~engine:Rtlsim.Sim.Closure flat in
          ( sim,
            fun () ->
              Rtlsim.Sim.eval_comb_fixpoint sim;
              Rtlsim.Sim.step_seq sim ));
    };
  ]

let report_rows : (string * Telemetry.Json.t) list list ref = ref []

let bench ~name ~cycles circuit =
  let flat = Firrtl.Flatten.flatten circuit in
  Printf.printf "%-12s %d target cycles\n" name cycles;
  let rows =
    List.map
      (fun st ->
        let _, step = st.st_make () in
        (* Warm up: a few cycles touch every code path (and fault in the
           compiled program) before the clock starts. *)
        for _ = 1 to 16 do
          step ()
        done;
        let secs = time (fun () -> for _ = 1 to cycles do step () done) in
        let rate = float_of_int cycles /. secs in
        Printf.printf "  %-9s %8.3f s %12.0f cycles/s\n" st.st_name secs rate;
        (st.st_name, secs, rate))
      (strategies flat)
  in
  let rate_of n = List.find_map (fun (s, _, r) -> if s = n then Some r else None) rows in
  (match (rate_of "bytecode", rate_of "closure") with
  | Some b, Some c -> Printf.printf "  bytecode/closure: %.2fx\n" (b /. c)
  | _ -> ());
  report_rows :=
    ([
       ("name", Telemetry.Json.String name);
       ("cycles", Telemetry.Json.Int cycles);
     ]
    @ List.map
        (fun (st, secs, rate) ->
          ( st,
            Telemetry.Json.Obj
              [
                ("secs", Telemetry.Json.Float secs);
                ("cycles_per_s", Telemetry.Json.Float rate);
              ] ))
        rows
    @ [
        ( "bytecode_vs_closure",
          Telemetry.Json.Float
            (match (rate_of "bytecode", rate_of "closure") with
            | Some b, Some c -> b /. c
            | _ -> 0.) );
      ])
    :: !report_rows

(** Writes the machine-readable counterpart of the stdout table. *)
let write_report ~path =
  let doc =
    Telemetry.Json.Obj
      [
        ("schema", Telemetry.Json.String "fireaxe-bench-eval-1");
        ( "designs",
          Telemetry.Json.List
            (List.rev_map (fun fields -> Telemetry.Json.Obj fields) !report_rows) );
      ]
  in
  let oc = open_out path in
  output_string oc (Telemetry.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

let run () =
  Printf.printf "\n== evaluation engines (monolithic cycles/s) ==\n";
  bench ~name:"soc/1core" ~cycles:30_000 (Socgen.Soc.single_core_soc ~mem_latency:1 ());
  bench ~name:"soc/sha3" ~cycles:100_000 (Socgen.Soc.accel_soc Socgen.Soc.Sha3);
  bench ~name:"ring-8" ~cycles:20_000 (Socgen.Ring_noc.ring_soc ~n_tiles:8 ~period:4 ());
  bench ~name:"mesh-4x4" ~cycles:4_000
    (Socgen.Mesh_noc.mesh_soc ~width:4 ~height:4 ~period:4 ());
  write_report ~path:"BENCH_eval.json"
