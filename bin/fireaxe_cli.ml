(* fireaxe-cli: drive the FireAxe flow from the command line.

     fireaxe-cli describe ring=8
     fireaxe-cli plan soc --mode fast
     fireaxe-cli plan ring=12 --routers '0,1,2;3,4,5'
     fireaxe-cli run multisoc=4 --cycles 5000
     fireaxe-cli validate gemmini
     fireaxe-cli sweep --transport p2p

   Designs are built by the Socgen generators; the default module
   selection per design mirrors the paper's case studies. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Designs                                                             *)
(* ------------------------------------------------------------------ *)

type design = {
  d_name : string;
  d_circuit : unit -> Firrtl.Ast.circuit;
  d_selection : Fireaxe.Spec.selection;
  d_probes : string list;  (** registers worth printing after a run *)
}

let parse_design s =
  let name, arg =
    match String.index_opt s '=' with
    | Some i ->
      ( String.sub s 0 i,
        Some (int_of_string (String.sub s (i + 1) (String.length s - i - 1))) )
    | None -> (s, None)
  in
  match (name, arg) with
  | "soc", None ->
    Ok
      {
        d_name = s;
        d_circuit = (fun () -> Socgen.Soc.single_core_soc ());
        d_selection = Fireaxe.Spec.Instances [ [ "tile" ] ];
        d_probes = [ "tile$core$pc"; "tile$core$retired_count" ];
      }
  | "dramsoc", None ->
    Ok
      {
        d_name = s;
        d_circuit = (fun () -> Socgen.Dram.dram_soc ());
        d_selection = Fireaxe.Spec.Instances [ [ "tile" ] ];
        d_probes = [ "tile$core$retired_count"; "mem$hits_r"; "mem$misses_r" ];
      }
  | "multisoc", Some n ->
    Ok
      {
        d_name = s;
        d_circuit = (fun () -> Socgen.Soc.multi_core_soc ~cores:n ());
        d_selection =
          Fireaxe.Spec.Instances [ List.init n (Printf.sprintf "tile%d") ];
        d_probes = List.init n (Printf.sprintf "tile%d$core$retired_count");
      }
  | "ring", Some n ->
    let half = n / 2 in
    Ok
      {
        d_name = s;
        d_circuit = (fun () -> Socgen.Ring_noc.ring_soc ~n_tiles:n ());
        d_selection =
          Fireaxe.Spec.Noc_routers
            [ List.init half Fun.id; List.init (n - half) (fun i -> half + i) ];
        d_probes =
          List.concat_map
            (fun i -> [ Printf.sprintf "ttile%d$rcvd_r" i ])
            (List.init (min n 4) Fun.id);
      }
  | "k5soc", None ->
    Ok
      {
        d_name = s;
        d_circuit = (fun () -> Socgen.Kite5_core.soc ());
        d_selection = Fireaxe.Spec.Instances [ [ "core" ] ];
        d_probes = [ "core$retired_count"; "core$pc" ];
      }
  | "torus", Some n ->
    (* An n x n torus, partitioned into row bands of routers. *)
    Ok
      {
        d_name = s;
        d_circuit = (fun () -> Socgen.Torus_noc.torus_soc ~width:n ~height:n ());
        d_selection =
          Fireaxe.Spec.Noc_routers
            (List.init (n - 1) (fun r -> Socgen.Torus_noc.row_group ~width:n r));
        d_probes =
          List.concat_map
            (fun i -> [ Printf.sprintf "ttile%d$rcvd_r" i ])
            (List.init (min ((n * n) - 1) 4) Fun.id);
      }
  | "sha3", None ->
    Ok
      {
        d_name = s;
        d_circuit = (fun () -> Socgen.Soc.accel_soc Socgen.Soc.Sha3);
        d_selection = Fireaxe.Spec.Instances [ [ "accel" ] ];
        d_probes = [ "accel$state"; "accel$s0" ];
      }
  | "gemmini", None ->
    Ok
      {
        d_name = s;
        d_circuit = (fun () -> Socgen.Soc.accel_soc Socgen.Soc.Gemmini);
        d_selection = Fireaxe.Spec.Instances [ [ "accel" ] ];
        d_probes = [ "accel$state"; "accel$j" ];
      }
  | "bigcore", None ->
    Ok
      {
        d_name = s;
        d_circuit = (fun () -> Socgen.Bigcore.circuit ());
        d_selection = Fireaxe.Spec.Instances [ [ "backend" ] ];
        d_probes = [ "backend$commits_r"; "backend$checksum_r" ];
      }
  | "bigcore-tiny", None ->
    Ok
      {
        d_name = s;
        d_circuit = (fun () -> Socgen.Bigcore.circuit ~p:Socgen.Bigcore.tiny ());
        d_selection = Fireaxe.Spec.Instances [ [ "backend" ] ];
        d_probes = [ "backend$commits_r"; "backend$checksum_r" ];
      }
  | _ when Sys.file_exists s ->
    (* Any other argument naming a file loads a textual circuit. *)
    (try
       let circuit = Firrtl.Text.load ~path:s in
       (* Default selection: every top-level instance except the last
          goes to one extracted partition; refine with --select. *)
       let insts = Firrtl.Hierarchy.instances (Firrtl.Ast.main_module circuit) in
       let selection =
         match insts with
         | (first, _) :: _ -> Fireaxe.Spec.Instances [ [ first ] ]
         | [] -> Fireaxe.Spec.Instances []
       in
       Ok
         {
           d_name = s;
           d_circuit = (fun () -> circuit);
           d_selection = selection;
           d_probes = [];
         }
     with Firrtl.Text.Parse_error m -> Error (`Msg (Printf.sprintf "%s: %s" s m)))
  | _ ->
    Error
      (`Msg
        (Printf.sprintf
           "unknown design %S (try: soc, dramsoc, k5soc, multisoc=<n>, ring=<n>, torus=<n>, sha3, gemmini, bigcore, \
            bigcore-tiny, or a .fir file)"
           s))

let design_conv =
  Arg.conv ((fun s -> parse_design s), fun ppf d -> Fmt.string ppf d.d_name)

let design_arg =
  Arg.(
    required
    & pos 0 (some design_conv) None
    & info [] ~docv:"DESIGN" ~doc:"Target design (soc, dramsoc, k5soc, multisoc=<n>, ring=<n>, torus=<n>, sha3, gemmini, bigcore, bigcore-tiny).")

(* ------------------------------------------------------------------ *)
(* Shared options                                                      *)
(* ------------------------------------------------------------------ *)

let mode_arg =
  let mode = Arg.enum [ ("exact", Fireaxe.Spec.Exact); ("fast", Fireaxe.Spec.Fast) ] in
  Arg.(value & opt mode Fireaxe.Spec.Exact & info [ "mode" ] ~doc:"Partitioning mode.")

let scheduler_arg =
  (* Built on Scheduler.of_string so the CLI accepts every alias and an
     unknown value exits listing the accepted spellings. *)
  let s =
    Arg.conv
      ( (fun str -> Result.map_error (fun m -> `Msg m) (Libdn.Scheduler.of_string str)),
        fun ppf v -> Fmt.string ppf (Libdn.Scheduler.name v) )
  in
  Arg.(
    value
    & opt s Libdn.Scheduler.Sequential
    & info [ "scheduler" ] ~docv:"POLICY"
        ~doc:
          "Execution policy: sequential round-robin ($(b,seq) or $(b,sequential)) or \
           one domain per partition ($(b,par) or $(b,parallel)).  Both produce \
           cycle-identical results; any other value is rejected with the accepted \
           list.")

let engine_arg =
  let e =
    Arg.conv
      ( (fun str -> Result.map_error (fun m -> `Msg m) (Rtlsim.Sim.engine_of_string str)),
        fun ppf v -> Fmt.string ppf (Rtlsim.Sim.engine_name v) )
  in
  Arg.(
    value
    & opt e Rtlsim.Sim.default_engine
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "RTL evaluation engine: $(b,bytecode) (levelized assignments compiled to \
           flat instruction streams, the default) or $(b,closure) (the closure-tree \
           reference evaluator).  Both are bit-exact; closure keeps per-assignment \
           evaluation inspectable for debugging.")

let lanes_arg =
  let positive =
    Arg.conv
      ( (fun s ->
          match int_of_string_opt s with
          | Some n when n >= 1 -> Ok n
          | _ -> Error (`Msg (Printf.sprintf "bad lane count %S (want a positive int)" s))),
        Fmt.int )
  in
  Arg.(
    value
    & opt positive 1
    & info [ "lanes" ] ~docv:"N"
        ~doc:
          "Engine lanes: advance $(docv) identical copies of every partition in \
           lockstep through one vectorized evaluation pass (bytecode engine only).  \
           Inputs are broadcast to all lanes, so the copies must stay bit-identical; \
           the post-run probe check verifies they do.")

let batch_cycles_arg =
  Arg.(
    value
    & opt int 1
    & info [ "batch-cycles" ] ~docv:"K"
        ~doc:
          "Exchange boundary tokens in batches of up to $(docv) target cycles per \
           channel transfer — the software analogue of the paper's fast-mode \
           crossing amortization, generalized into the scheduler.  Bit-exact for \
           any $(docv) by LI-BDN determinism; the scheduler adapts the actual \
           batch depth per partition (starting at 1, growing while no channel \
           starves) up to this cap.  1, the default, keeps the historical \
           per-cycle exchange; anything below 1 exits 2.")

let spin_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "spin-budget" ] ~docv:"SPINS"
        ~doc:
          "Initial spin budget of the parallel scheduler's spin-then-park idle \
           policy: a starved domain re-checks its inputs $(docv) times before \
           parking on its notifier.  $(b,0) parks immediately (kindest on \
           oversubscribed hosts); unset keeps the adaptive default.  Negative \
           values exit 2.")

let placement_arg =
  Arg.(
    value
    & opt string "spread"
    & info [ "placement" ] ~docv:"POLICY"
        ~doc:
          "Partition-to-domain placement of the parallel scheduler: $(b,spread) \
           (one domain per partition — the historical mapping and the default) or \
           $(b,auto) (bin-pack partitions onto the available host domains, \
           weighted by a prior profile's load model when one is supplied, else by \
           the static resource estimate).  Any other value exits 2.")

(* Validates the scheduler-tuning flags together (exit 2 on bad values)
   and resolves the placement spelling to its policy. *)
let scheduler_knobs ~batch_cycles ~spin_budget ~placement =
  if batch_cycles < 1 then begin
    Fmt.epr "--batch-cycles %d: want a positive target-cycle count@." batch_cycles;
    exit 2
  end;
  (match spin_budget with
  | Some s when s < 0 ->
    Fmt.epr "--spin-budget %d: want a non-negative spin count@." s;
    exit 2
  | _ -> ());
  match Fireaxe.Place.policy_of_string placement with
  | Ok p -> p
  | Error msg ->
    Fmt.epr "--placement: %s@." msg;
    exit 2

let parse_groups kind s =
  String.split_on_char ';' s
  |> List.map (fun group ->
         String.split_on_char ',' group |> List.filter (fun x -> x <> "") |> List.map kind)

let select_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "select" ]
        ~doc:
          "Explicit module selection: instance paths separated by commas, partitions by \
           semicolons (e.g. 'tile0,tile1;tile2').")

let routers_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "routers" ]
        ~doc:"NoC-partition-mode selection: router indices, partitions by semicolons.")

let selection_of design select routers =
  match (select, routers) with
  | Some s, _ -> Fireaxe.Spec.Instances (parse_groups Fun.id s)
  | None, Some r -> Fireaxe.Spec.Noc_routers (parse_groups int_of_string r)
  | None, None -> design.d_selection

let config_of design mode select routers =
  {
    Fireaxe.Spec.default_config with
    Fireaxe.Spec.mode;
    Fireaxe.Spec.selection = selection_of design select routers;
  }

let transport_arg =
  let t =
    Arg.enum
      [
        ("qsfp", Platform.Transport.Qsfp);
        ("p2p", Platform.Transport.Pcie_p2p);
        ("host", Platform.Transport.Pcie_host);
      ]
  in
  Arg.(value & opt t Platform.Transport.Qsfp & info [ "transport" ] ~doc:"FPGA-to-FPGA transport.")

let freq_arg =
  Arg.(value & opt float 30. & info [ "freq" ] ~doc:"Bitstream frequency in MHz.")

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let describe design =
  let circuit = design.d_circuit () in
  print_endline (Firrtl.Printer.summary circuit);
  let est = Platform.Resource.estimate_circuit circuit in
  Fmt.pr "resources: %a@." Platform.Resource.pp est;
  Fmt.pr "on a U250: %a (fits: %b)@."
    Platform.Fpga.pp_utilization
    (Platform.Fpga.utilization Platform.Fpga.u250 est)
    (Platform.Fpga.fits Platform.Fpga.u250 est)

let describe_cmd =
  Cmd.v
    (Cmd.info "describe" ~doc:"Summarize a design and its FPGA resource footprint.")
    Term.(const describe $ design_arg)

let auto_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "auto" ]
        ~doc:"Automatically partition onto this many FPGAs (overrides --select/--routers).")

let plan design mode select routers auto transport freq =
  let plan =
    match auto with
    | Some n_fpgas ->
      let plan, assignment = Fireaxe.auto_partition ~mode ~n_fpgas (design.d_circuit ()) in
      Fmt.pr "automatic assignment:@.%a" Fireripper.Auto.pp_assignment assignment;
      plan
    | None ->
      Fireaxe.compile ~config:(config_of design mode select routers) (design.d_circuit ())
  in
  print_string (Fireaxe.Report.to_string (Fireaxe.report plan));
  Fmt.pr "estimated rate (%s, %.0f MHz): %.3f MHz@."
    (Platform.Transport.name transport)
    freq
    (Fireaxe.estimate_rate ~freq_mhz:freq ~transport plan /. 1e6);
  List.iter
    (fun (name, est, util, fits) ->
      Fmt.pr "unit %-16s %a | %a | fits: %b@." name Platform.Resource.pp est
        Platform.Fpga.pp_utilization util fits)
    (Fireaxe.utilization plan)

let plan_cmd =
  Cmd.v
    (Cmd.info "plan" ~doc:"Compile a partition plan and print FireRipper's quick feedback.")
    Term.(
      const plan $ design_arg $ mode_arg $ select_arg $ routers_arg $ auto_arg
      $ transport_arg $ freq_arg)

(* The worker binary for --remote lives next to this CLI binary. *)
let worker_path () =
  Filename.concat (Filename.dirname Sys.executable_name) "fireaxe_worker.exe"

let pp_resilience_event = function
  | Fireaxe.Resilience.Supervisor.Checkpointed { cycle; path } ->
    Fmt.pr "checkpoint: cycle %d -> %s@." cycle path
  | Fireaxe.Resilience.Supervisor.Worker_down { label; status } ->
    Fmt.pr "worker down: partition %s (%s)@." label status
  | Fireaxe.Resilience.Supervisor.Restarted { unit_index; label; attempt } ->
    Fmt.pr "respawned unit %d (partition %s), attempt %d@." unit_index label attempt
  | Fireaxe.Resilience.Supervisor.Rolled_back { to_cycle; path } ->
    Fmt.pr "rolled back to cycle %d from %s@." to_cycle path
  | Fireaxe.Resilience.Supervisor.Skipped_bundle { path; reason } ->
    Fmt.pr "skipped unusable bundle %s: %s@." path reason

(* Restores state before a run: bare [--resume] (or a directory) means
   the newest durable bundle; a file path means a legacy whole-sim
   snapshot file. *)
let do_resume h ~checkpoint_dir = function
  | None -> ()
  | Some spec ->
    let resume_bundles dir =
      match Fireaxe.Resilience.Supervisor.resume ~dir h with
      | Some c -> Fmt.pr "resumed from newest bundle in %s at target cycle %d@." dir c
      | None -> Fmt.pr "no checkpoint bundle in %s; starting fresh@." dir
    in
    if spec = "latest" then begin
      match checkpoint_dir with
      | Some dir -> resume_bundles dir
      | None ->
        Fmt.epr "--resume without a FILE needs --checkpoint-dir@.";
        exit 2
    end
    else if Sys.file_exists spec && Sys.is_directory spec then
      if Sys.file_exists (Filename.concat spec "MANIFEST") then begin
        let c = Fireaxe.Resilience.Bundle.restore ~path:spec h in
        Fmt.pr "resumed from bundle %s at target cycle %d@." spec c
      end
      else resume_bundles spec
    else begin
      Fireaxe.Runtime.load h ~path:spec;
      Fmt.pr "resumed from %s at target cycle %d@." spec (Fireaxe.Runtime.cycle h 0)
    end

(* The probe set a capture or flight recorder watches: an explicit
   [--sample] list wins over the design's declared probes. *)
let probes_of design sample =
  match sample with
  | Some s -> String.split_on_char ',' s |> List.filter (fun x -> x <> "")
  | None -> design.d_probes

let require_probes design probes ~flag =
  if probes = [] then begin
    Fmt.epr "%s: design %s declares no probe signals; pass --sample SIG1,SIG2@." flag
      design.d_name;
    exit 2
  end

(* Prints the newest flight-bundle path; [reason] forces a dump first
   (deadlocks already dumped through the network hook). *)
let report_flight flight_ref ?reason () =
  match !flight_ref with
  | None -> ()
  | Some fl ->
    let dir =
      match reason with
      | Some r -> (
        try Some (Fireaxe.Debug.Flight.dump fl ~reason:r)
        with _ -> Fireaxe.Debug.Flight.last_dump fl)
      | None -> Fireaxe.Debug.Flight.last_dump fl
    in
    (match dir with
    | Some d -> Fmt.pr "flight bundle: %s@." d
    | None -> ())

(* With several engine lanes every lane advanced an identical broadcast
   copy of the design, so any probe disagreeing across lanes is a
   vectorization bug; fail the run (CI's lane smoke rides on this).
   [flush] drains the metrics/trace/profile exporters first, so the
   diagnostic artifacts of the divergent run survive the exit. *)
let check_lane_agreement ~flush ~lanes ~read_lane probes =
  if lanes > 1 then begin
    let bad = ref 0 in
    List.iter
      (fun probe ->
        let v0 = read_lane probe 0 in
        for l = 1 to lanes - 1 do
          if read_lane probe l <> v0 then begin
            incr bad;
            Fmt.epr "lane %d disagrees with lane 0 on %s@." l probe
          end
        done)
      probes;
    if !bad > 0 then begin
      Fmt.epr "%d probe/lane disagreement(s) across %d lanes@." !bad lanes;
      flush ();
      exit 4
    end;
    Fmt.pr "lanes: %d broadcast lanes agree on all %d probes@." lanes
      (List.length probes)
  end

(* Progress lines with live throughput: instantaneous tokens/s since
   the previous line, aggregate simulated cycles/s (target rate x
   partitions), and the ETA the aggregate rate implies. *)
let make_progress_printer ~cycles ~units ~transfers () =
  let t_start = Unix.gettimeofday () in
  let last_t = ref t_start in
  let last_tok = ref (transfers ()) in
  fun c ->
    let now = Unix.gettimeofday () in
    let tok = transfers () in
    let dt = now -. !last_t in
    let tok_s = if dt > 0. then float_of_int (tok - !last_tok) /. dt else 0. in
    let elapsed = now -. t_start in
    let cyc_s = if elapsed > 0. then float_of_int c /. elapsed else 0. in
    let eta = if cyc_s > 0. then float_of_int (max 0 (cycles - c)) /. cyc_s else 0. in
    last_t := now;
    last_tok := tok;
    Fmt.pr
      "progress: cycle %d/%d (%d token transfers, %.0f tokens/s, %.0f cycles/s aggregate, ETA %.1fs)@."
      c cycles tok tok_s
      (cyc_s *. float_of_int units)
      eta

let run_remote ~telemetry ~profile ~profile_handle ~collect ~flush ~scheduler
    ~batch_cycles ~spin_budget ~placement ~engine ~lanes
    ~checkpoint_dir ~checkpoint_every ~chaos_seed ~resume ~vcd_path ~wave_out ~sample
    ~flight_depth ~flight_dir ~flight_ref ~progress design plan cycles =
  let n = Fireaxe.Plan.n_units plan in
  let chaos =
    Option.map
      (fun seed -> Fireaxe.Resilience.Chaos.plan ~seed ~cycles ~n_victims:n ())
      chaos_seed
  in
  (* A worker death dumps the flight ring even when the supervisor
     recovers it: the bundle is the post-mortem record of the crash
     window. *)
  let on_event ev =
    pp_resilience_event ev;
    match ev with
    | Fireaxe.Resilience.Supervisor.Worker_down _ ->
      report_flight flight_ref ~reason:"worker-down" ()
    | _ -> ()
  in
  let sv =
    Fireaxe.supervise ~scheduler ~batch_cycles ?spin_budget ~placement
      ~telemetry ~profile ~engine
      ?lanes:(if lanes > 1 then Some lanes else None)
      ?checkpoint_dir ~every:checkpoint_every ?chaos ~on_event
      ~worker:(worker_path ()) ~remote_units:(List.init n Fun.id) plan
  in
  let h = Fireaxe.Resilience.Supervisor.handle sv in
  profile_handle := Some h;
  let conns = Fireaxe.Runtime.remote_conns h in
  Fmt.pr "spawned %d worker processes (one per unit)@." (List.length conns);
  do_resume h ~checkpoint_dir resume;
  let probes = probes_of design sample in
  let flight =
    Option.map
      (fun depth ->
        let fl = Fireaxe.Debug.Flight.of_handle ~depth ~dir:flight_dir ~probes h in
        flight_ref := Some fl;
        fl)
      flight_depth
  in
  let capture =
    if vcd_path = None && wave_out = None then None
    else begin
      require_probes design probes
        ~flag:(if vcd_path <> None then "--vcd" else "--wave-out");
      Some (Fireaxe.Debug.Capture.of_handle h ~probes)
    end
  in
  let progress_print =
    make_progress_printer ~cycles ~units:n
      ~transfers:(fun () -> Fireaxe.Runtime.token_transfers h)
      ()
  in
  (if capture = None && flight = None then Fireaxe.Resilience.Supervisor.run sv ~cycles
   else begin
     (* Per-cycle driving so every target cycle lands in the capture and
        the flight ring; supervisor rollbacks re-run cycles the trace
        already holds, which the samplers ignore.  A worker can also die
        during the sample itself (it is a protocol read outside the
        supervised advance) — heal and re-advance, exactly like a death
        inside the chunk. *)
     let start = Fireaxe.Runtime.cycle h 0 in
     for c = start + 1 to cycles do
       let rec advance_and_sample () =
         Fireaxe.Resilience.Supervisor.run sv ~cycles:c;
         try
           (match capture with
           | Some cap -> Fireaxe.Debug.Capture.sample cap ~cycle:c
           | None -> ());
           match flight with
           | Some fl -> Fireaxe.Debug.Flight.record fl ~cycle:c
           | None -> ()
         with Libdn.Remote_engine.Worker_died { label; status; _ } ->
           Fireaxe.Resilience.Supervisor.heal sv ~label ~status;
           advance_and_sample ()
       in
       advance_and_sample ();
       match progress with
       | Some p when p > 0 && (c mod p = 0 || c = cycles) -> progress_print c
       | _ -> ()
     done
   end);
  (match capture with
  | Some cap ->
    (match vcd_path with
    | Some path ->
      Fireaxe.Debug.Capture.save cap ~path;
      Fmt.pr "wrote %s (%d probes across %d partitions, %d samples)@." path
        (List.length probes) n
        (Fireaxe.Debug.Capture.sample_count cap)
    | None -> ());
    (match wave_out with
    | Some path ->
      Fireaxe.Debug.Capture.save_wave cap ~path;
      Fmt.pr "wrote %s (binary wavestore, %d probes, %d samples)@." path
        (List.length probes)
        (Fireaxe.Debug.Capture.sample_count cap)
    | None -> ())
  | None -> ());
  Fmt.pr "ran %d target cycles across %d processes (%d token transfers, %d respawns)@."
    cycles n
    (Fireaxe.Runtime.token_transfers h)
    (Fireaxe.Resilience.Supervisor.restarts sv);
  (* Cross-check against the monolithic simulation, reading each probe
     from whichever worker holds it.  Any mismatch fails the run — CI's
     crash-recovery smoke rides on this exit code. *)
  let mono = Rtlsim.Sim.of_circuit (design.d_circuit ()) in
  for _ = 1 to cycles do
    Rtlsim.Sim.step mono
  done;
  let mismatches = ref 0 in
  List.iter
    (fun probe ->
      match List.find_opt (fun (_, c) -> Libdn.Remote_engine.has c probe) conns with
      | None -> Fmt.pr "  %-28s (not found in any worker)@." probe
      | Some (_, c) ->
        let v = Libdn.Remote_engine.get c probe in
        let m = Rtlsim.Sim.get mono probe in
        if v <> m then incr mismatches;
        Fmt.pr "  %-28s = %-8d (monolithic %d%s)@." probe v m
          (if v = m then ", exact" else " -- DIFFERS"))
    design.d_probes;
  check_lane_agreement ~flush
    ~lanes
    ~read_lane:(fun probe l ->
      match List.find_opt (fun (_, c) -> Libdn.Remote_engine.has c probe) conns with
      | Some (_, c) -> Libdn.Remote_engine.get_lane c probe ~lane:l
      | None -> 0)
    design.d_probes;
  (* Remote profile slices must cross the pipe while the workers are
     still alive; [collect] is once-only, so the exporter flush after
     this returns does not re-fetch. *)
  collect ();
  Fireaxe.Resilience.Supervisor.close sv;
  if !mismatches > 0 then begin
    Fmt.epr "%d probe(s) differ from the monolithic reference@." !mismatches;
    flush ();
    exit 4
  end

let run design mode select routers scheduler batch_cycles spin_budget placement
    engine lanes cycles vcd_path wave_out sample
    every resume save_snap check remote metrics trace_file progress checkpoint_dir
    checkpoint_every chaos_seed flight_depth flight_dir wavediff profile_file =
  let placement = scheduler_knobs ~batch_cycles ~spin_budget ~placement in
  (* A live sink only when some exporter was requested; otherwise the
     shared disabled sink keeps the hot path free. *)
  let telemetry =
    if metrics <> None || trace_file <> None then
      Telemetry.create ~trace:(trace_file <> None) ()
    else Telemetry.null
  in
  let profile =
    if profile_file <> None then Telemetry.Profile.create () else Telemetry.Profile.null
  in
  let profile_handle = ref None in
  (* Remote profile slices are fetched over the worker pipe, so they
     must be collected while the workers are alive — and only once. *)
  let profile_collected = ref false in
  let collect_profiles () =
    if not !profile_collected then begin
      profile_collected := true;
      match !profile_handle with
      | Some h -> ( try Fireaxe.Runtime.collect_remote_profiles h with _ -> ())
      | None -> ()
    end
  in
  (* Exporters run on success AND on deadlock, so a dead network still
     leaves its metrics snapshot and trace behind. *)
  let emit_telemetry () =
    (* Trace first: with [--metrics /dev/stdout] the snapshot is then
       the final stdout line, so it pipes straight into a JSON parser. *)
    (match trace_file with
    | Some path ->
      Telemetry.write_trace telemetry ~path;
      Fmt.pr "trace written to %s@." path
    | None -> ());
    match metrics with
    | Some path -> Telemetry.write_metrics telemetry ~path
    | None -> ()
  in
  let emit_profile () =
    match profile_file with
    | None -> ()
    | Some path ->
      collect_profiles ();
      Telemetry.Profile.write profile ~path;
      Telemetry.Profile.write_trace profile ~path:(path ^ ".trace.json");
      Fmt.pr "profile written to %s (flamegraph view: %s.trace.json)@." path path;
      print_string (Telemetry.Profile.report_string profile)
  in
  let emit_exporters () =
    emit_telemetry ();
    emit_profile ()
  in
  let flight_ref = ref None in
  match
    if wavediff then begin
      (* Side-by-side monolithic vs partitioned capture over the probe
         signals; the diff localizes the first divergent cycle. *)
      let probes = probes_of design sample in
      require_probes design probes ~flag:"--wave-diff";
      match
        Fireaxe.wave_diff ~scheduler ~mode ~engine ~circuit:design.d_circuit
          ~selection:(selection_of design select routers) ~probes ~cycles ()
      with
      | None ->
        Fmt.pr "no divergence: monolithic and partitioned traces match over %d cycles (%d probes)@."
          cycles (List.length probes)
      | Some dv ->
        Fmt.pr "first divergence: cycle %d, signal %s (monolithic %d, partitioned %d)@."
          dv.Fireaxe.Debug.Capture.dv_cycle dv.Fireaxe.Debug.Capture.dv_signal
          dv.Fireaxe.Debug.Capture.dv_a dv.Fireaxe.Debug.Capture.dv_b;
        exit 6
    end
    else begin
      let circuit = design.d_circuit () in
      let plan = Fireaxe.compile ~config:(config_of design mode select routers) circuit in
      if remote then
        run_remote ~telemetry ~profile ~profile_handle ~collect:collect_profiles
          ~flush:emit_exporters ~scheduler ~batch_cycles ~spin_budget ~placement
          ~engine ~lanes ~checkpoint_dir
          ~checkpoint_every ~chaos_seed ~resume ~vcd_path ~wave_out ~sample ~flight_depth
          ~flight_dir ~flight_ref ~progress design plan cycles
      else begin
        let h =
          Fireaxe.instantiate ~scheduler ~batch_cycles ?spin_budget ~placement
            ~telemetry ~profile ~engine ~lanes plan
        in
        profile_handle := Some h;
        do_resume h ~checkpoint_dir resume;
        (* With a checkpoint dir, plain in-process runs also advance under
           one supervisor so bundles land on every interval, even when the
           capture loop drives it a single target cycle at a time. *)
        let sv =
          Option.map
            (fun _ ->
              Fireaxe.Resilience.Supervisor.create ?checkpoint_dir
                ~every:checkpoint_every ~on_event:pp_resilience_event
                ~worker:(worker_path ()) h)
            checkpoint_dir
        in
        let advance ~cycles =
          match sv with
          | Some sv -> Fireaxe.Resilience.Supervisor.run sv ~cycles
          | None -> Fireaxe.Runtime.run h ~cycles
        in
        let probes = probes_of design sample in
        let flight =
          Option.map
            (fun depth ->
              let fl =
                Fireaxe.Debug.Flight.of_handle ~depth ~dir:flight_dir ~probes h
              in
              flight_ref := Some fl;
              fl)
            flight_depth
        in
        let progress_print =
          make_progress_printer ~cycles ~units:(Fireaxe.Plan.n_units plan)
            ~transfers:(fun () -> Fireaxe.Runtime.token_transfers h)
            ()
        in
        let progress_line c =
          match progress with
          | Some p when p > 0 && (c mod p = 0 || c = cycles) -> progress_print c
          | _ -> ()
        in
        (* Per-cycle driving, shared by waveform capture and the flight
           recorder: every target cycle is advanced (under the supervisor
           when checkpointing), sampled, recorded, and reported. *)
        let stepped sample_cycle =
          let start = Fireaxe.Runtime.cycle h 0 in
          for c = start + 1 to cycles do
            advance ~cycles:c;
            sample_cycle c;
            (match flight with
            | Some fl -> Fireaxe.Debug.Flight.record fl ~cycle:c
            | None -> ());
            progress_line c
          done
        in
        (match (vcd_path, wave_out, sample) with
        | None, None, Some signals ->
          (* AutoCounter-style out-of-band sampling while the run advances. *)
          let signals = String.split_on_char ',' signals in
          let samples = Fireaxe.Counters.collect h ~signals ~every ~cycles in
          print_string (Fireaxe.Counters.to_csv samples)
        | None, None, None when flight <> None -> stepped (fun _ -> ())
        | None, None, None -> (
          match progress with
          | Some n when n > 0 ->
            (* Chunked run with a progress line every [n] target cycles. *)
            let rec go c =
              let next = min cycles (c + n) in
              advance ~cycles:next;
              progress_print next;
              if next < cycles then go next
            in
            let start = Fireaxe.Runtime.cycle h 0 in
            if start < cycles then go start
          | _ -> advance ~cycles)
        | _ ->
          (* Full-design waveform: every probe is captured in whichever
             partition holds it — local simulator or remote worker — then
             rendered as a VCD (a scope per partition plus the
             boundary-channel token tracks) and/or the compact indexed
             binary wavestore, per flag. *)
          require_probes design probes
            ~flag:(if vcd_path <> None then "--vcd" else "--wave-out");
          let cap = Fireaxe.Debug.Capture.of_handle h ~probes in
          stepped (fun c -> Fireaxe.Debug.Capture.sample cap ~cycle:c);
          (match vcd_path with
          | Some path ->
            Fireaxe.Debug.Capture.save cap ~path;
            Fmt.pr "wrote %s (%d probes across %d partitions, %d samples)@." path
              (List.length probes)
              (Fireaxe.Plan.n_units plan)
              (Fireaxe.Debug.Capture.sample_count cap)
          | None -> ());
          (match wave_out with
          | Some path ->
            Fireaxe.Debug.Capture.save_wave cap ~path;
            Fmt.pr "wrote %s (binary wavestore, %d probes, %d samples)@." path
              (List.length probes)
              (Fireaxe.Debug.Capture.sample_count cap)
          | None -> ()));
        Fmt.pr "ran %d target cycles on %d partitions (%d token transfers)@." cycles
          (Fireaxe.Plan.n_units plan)
          (Fireaxe.Runtime.token_transfers h);
        (match save_snap with
        | Some path ->
          Fireaxe.Runtime.save h ~path;
          Fmt.pr "snapshot written to %s@." path
        | None -> ());
        if check then begin
          match Fireaxe.Runtime.assertions_violated h with
          | [] ->
            Fmt.pr "assertions: %d polled, none violated@."
              (List.length (Fireaxe.Runtime.assertions h))
          | bad ->
            Fmt.pr "ASSERTION VIOLATIONS: %s@." (String.concat ", " bad);
            report_flight flight_ref ~reason:"assertion" ()
        end;
        (* Cross-check against the monolithic simulation. *)
        let mono = Rtlsim.Sim.of_circuit (design.d_circuit ()) in
        for _ = 1 to cycles do
          Rtlsim.Sim.step mono
        done;
        List.iter
          (fun probe ->
            let u = Fireaxe.Runtime.locate h probe in
            let v = Rtlsim.Sim.get (Fireaxe.Runtime.sim_of h u) probe in
            let m = Rtlsim.Sim.get mono probe in
            Fmt.pr "  %-28s = %-8d (monolithic %d%s)@." probe v m
              (if v = m then ", exact" else " -- DIFFERS"))
          design.d_probes;
        check_lane_agreement ~flush:emit_exporters ~lanes
          ~read_lane:(fun probe l ->
            let u = Fireaxe.Runtime.locate h probe in
            Rtlsim.Sim.get ~lane:l (Fireaxe.Runtime.sim_of h u) probe)
          design.d_probes
      end
    end
  with
  | () -> emit_exporters ()
  | exception Libdn.Network.Deadlock msg ->
    (* The snapshot was already recorded into the sinks by the raise
       site, and the flight recorder's deadlock hook already dumped the
       ring; flush the exporters, then report. *)
    emit_exporters ();
    report_flight flight_ref ();
    Fmt.epr "%s@." msg;
    exit 3
  | exception Fireaxe.Debug.Capture.Unknown_signal names ->
    Fmt.epr "unresolvable probe signal(s): %s@." (String.concat ", " names);
    Fmt.epr "(probe names are flattened register names; try --sample with names from 'describe')@.";
    exit 2
  | exception (Libdn.Remote_engine.Worker_died _ as e) ->
    emit_exporters ();
    report_flight flight_ref ~reason:"worker-died" ();
    Fmt.epr "%s@." (Printexc.to_string e);
    exit 5
  | exception (Fireaxe.Resilience.Supervisor.Gave_up _ as e) ->
    emit_exporters ();
    report_flight flight_ref ~reason:"gave-up" ();
    Fmt.epr "%s@." (Printexc.to_string e);
    exit 5
  | exception (Fireaxe.Resilience.Supervisor.Recovery_failed _ as e) ->
    emit_exporters ();
    report_flight flight_ref ~reason:"recovery-failed" ();
    Fmt.epr "%s@." (Printexc.to_string e);
    exit 5

let cycles_arg =
  Arg.(value & opt int 1000 & info [ "cycles" ] ~doc:"Target cycles to simulate.")

let vcd_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "vcd" ]
        ~doc:
          "Capture the design's probe signals (or the $(b,--sample) list) to this VCD \
           file: every probe is sampled in whichever partition holds it — local or \
           remote — and merged into one file with a scope per partition plus the \
           LI-BDN boundary-channel token tracks.")

let wave_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "wave-out" ] ~docv:"FILE"
        ~doc:
          "Capture the same probe signals as $(b,--vcd), but into the compact indexed \
           binary waveform store (schema $(b,fireaxe-wave-1)): change-only records \
           with varint cycle deltas plus periodic keyframes and a cycle index for \
           random access.  Inspect or convert with the $(b,wave) subcommand; may be \
           combined with $(b,--vcd) to write both from one capture.")

let sample_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "sample" ]
        ~docv:"SIGNALS"
        ~doc:"Comma-separated flattened signal names to sample AutoCounter-style; prints CSV.")

let every_arg =
  Arg.(value & opt int 100 & info [ "every" ] ~doc:"Sampling period in target cycles.")

let remote_arg =
  Arg.(
    value & flag
    & info [ "remote" ]
        ~doc:"Host every partition in its own worker process (one per simulated FPGA).")

let check_arg =
  Arg.(value & flag & info [ "check" ] ~doc:"Poll synthesized assertion wires after the run.")

let resume_arg =
  Arg.(
    value
    & opt ~vopt:(Some "latest") (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Restore state before running.  Bare $(b,--resume) picks the newest durable \
           bundle under $(b,--checkpoint-dir); a directory resumes from that bundle \
           (or its newest bundle); a file restores a legacy snapshot.")

let save_snap_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~docv:"FILE" ~doc:"Write a whole-simulation snapshot after running.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a JSON metrics snapshot (per-channel token counts, stall \
           attribution, scheduler run/idle/barrier time) after the run — also on \
           deadlock.  Use /dev/stdout to print it.")

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a Chrome trace-event JSON file (loadable in Perfetto or \
           chrome://tracing): one track per partition, with run/stall spans under \
           the parallel scheduler.")

let progress_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "progress" ] ~docv:"N" ~doc:"Print a progress line every N target cycles.")

let checkpoint_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR"
        ~doc:
          "Write durable checkpoint bundles under this directory; with $(b,--remote), \
           crashed workers are respawned and rolled back to the newest bundle.")

let checkpoint_every_arg =
  Arg.(
    value
    & opt int 1000
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Target cycles between durable checkpoints (default 1000).")

let chaos_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos" ] ~docv:"SEED"
        ~doc:
          "Deterministic fault injection (with $(b,--remote)): SIGKILL a worker at a \
           seed-chosen cycle mid-run, exercising crash recovery.")

let flight_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "flight-recorder" ] ~docv:"N"
        ~doc:
          "Keep a ring of the last $(docv) target cycles of the probe signals and \
           boundary-channel state; on deadlock, worker death, supervisor exhaustion \
           or assertion failure the ring is dumped as a VCD + JSON flight bundle \
           naming the blocked channels and their last in-flight tokens.")

let flight_dir_arg =
  Arg.(
    value
    & opt string "flight"
    & info [ "flight-dir" ] ~docv:"DIR"
        ~doc:"Directory flight bundles are dumped under (default $(b,flight)).")

let profile_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Write a hot-path profile (schema $(b,fireaxe-profile-1)) to $(docv) after \
           the run — also on deadlock or divergence: per-opcode-class retired \
           instruction counts, per-cone eval time, per-partition \
           run/exchange/spin/park/barrier breakdown, per-channel exchange cost, \
           remote-worker wire cost, and the static-vs-measured partition load model.  \
           A flamegraph-compatible Chrome-trace view lands next to it as \
           $(docv).trace.json.  Profiled $(b,--scheduler par) runs always use one \
           domain per partition (never the cooperative single-core fallback), so the \
           breakdown reflects real parallel execution.")

let wave_diff_arg =
  Arg.(
    value & flag
    & info [ "wave-diff" ]
        ~doc:
          "Instead of a normal run, capture the probe signals monolithically and \
           partitioned side by side for $(b,--cycles) cycles and report the first \
           divergent (cycle, signal); exits 6 when a divergence is found.")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run a partitioned simulation and cross-check it against the monolithic one.")
    Term.(
      const run $ design_arg $ mode_arg $ select_arg $ routers_arg $ scheduler_arg
      $ batch_cycles_arg $ spin_budget_arg $ placement_arg
      $ engine_arg $ lanes_arg $ cycles_arg $ vcd_arg $ wave_out_arg $ sample_arg $ every_arg $ resume_arg $ save_snap_arg
      $ check_arg $ remote_arg $ metrics_arg $ trace_file_arg $ progress_arg
      $ checkpoint_dir_arg $ checkpoint_every_arg $ chaos_arg $ flight_arg
      $ flight_dir_arg $ wave_diff_arg $ profile_file_arg)

let sweep transport =
  Fmt.pr "simulation rate (MHz) vs interface width, %s@." (Platform.Transport.name transport);
  Fmt.pr "%-8s" "width";
  List.iter (fun m -> Fmt.pr " %10s" m) [ "exact"; "fast" ];
  Fmt.pr "@.";
  List.iter
    (fun bits ->
      Fmt.pr "%-8d" bits;
      List.iter
        (fun mode ->
          let spec = Platform.Perf.two_fpga_spec ~mode ~bits ~freq_mhz:90. ~transport in
          Fmt.pr " %10.3f" (Platform.Perf.rate spec /. 1e6))
        [ Fireaxe.Spec.Exact; Fireaxe.Spec.Fast ];
      Fmt.pr "@.")
    [ 128; 512; 1024; 1536; 3000; 7000 ]

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep" ~doc:"Print the interface-width performance sweep for a transport.")
    Term.(const sweep $ transport_arg)

let validate design scheduler batch_cycles spin_budget placement engine lanes
    wave_out profile_file =
  (* Generic validation: run until a design-specific "finished" register
     condition; for designs without one, compare state after N cycles. *)
  let placement = scheduler_knobs ~batch_cycles ~spin_budget ~placement in
  let profile =
    if profile_file <> None then Telemetry.Profile.create () else Telemetry.Profile.null
  in
  (* --wave-out additionally captures the golden monolithic trace of the
     validated workload over the design's probes (which also arms the
     side-by-side divergence check). *)
  let probes = if wave_out = None then [] else design.d_probes in
  if wave_out <> None then require_probes design probes ~flag:"--wave-out";
  let go ~circuit ~setup ~finished =
    let v =
      Fireaxe.validate ~scheduler ~batch_cycles ?spin_budget ~placement ~engine
        ~lanes ~profile ~name:design.d_name ~circuit
        ~selection:design.d_selection ~probes ?wave_out ~setup ~finished ()
    in
    Fmt.pr "monolithic %d | exact %d (%.2f%%) | fast %d (%.2f%%)@."
      v.Fireaxe.v_monolithic_cycles v.Fireaxe.v_exact_cycles v.Fireaxe.v_exact_error_pct
      v.Fireaxe.v_fast_cycles v.Fireaxe.v_fast_error_pct;
    (match v.Fireaxe.v_divergence with
    | Some dv ->
      Fmt.pr "DIVERGENCE: cycle %d, signal %s (monolithic %d, partitioned %d)@."
        dv.Fireaxe.Debug.Capture.dv_cycle dv.Fireaxe.Debug.Capture.dv_signal
        dv.Fireaxe.Debug.Capture.dv_a dv.Fireaxe.Debug.Capture.dv_b
    | None -> ());
    match wave_out with
    | Some path ->
      Fmt.pr "wrote %s (binary wavestore, %d probes, %d samples)@." path
        (List.length probes) v.Fireaxe.v_monolithic_cycles
    | None -> ()
  in
  (match design.d_name with
  | "soc" ->
    let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:16 ~reps:8 ~dst:60 in
    go
      ~circuit:(fun () -> Socgen.Soc.single_core_soc ())
      ~setup:(fun ~poke ->
        List.iteri (fun i w -> poke ~mem:"mem$mem" i w) (Socgen.Kite_isa.assemble program);
        List.iter (fun i -> poke ~mem:"mem$mem" (32 + i) (i * 3)) (List.init 16 Fun.id))
      ~finished:(fun ~peek -> peek "tile$core$state" = Socgen.Kite_core.s_halted)
  | "dramsoc" ->
    let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:16 ~reps:8 ~dst:60 in
    go
      ~circuit:(fun () -> Socgen.Dram.dram_soc ())
      ~setup:(fun ~poke ->
        List.iteri (fun i w -> poke ~mem:"mem$mem" i w) (Socgen.Kite_isa.assemble program);
        List.iter (fun i -> poke ~mem:"mem$mem" (32 + i) (i * 3)) (List.init 16 Fun.id))
      ~finished:(fun ~peek -> peek "tile$core$state" = Socgen.Kite_core.s_halted)
  | "sha3" | "gemmini" ->
    let kind, done_state =
      if design.d_name = "sha3" then (Socgen.Soc.Sha3, Socgen.Accel.h_done)
      else (Socgen.Soc.Gemmini, Socgen.Accel.g_done)
    in
    go
      ~circuit:(fun () -> Socgen.Soc.accel_soc kind)
      ~setup:(fun ~poke ->
        List.iteri (fun i v -> poke ~mem:"mem$mem" (16 + i) v)
          (List.init 48 (fun i -> i + 1));
        List.iteri (fun i v -> poke ~mem:"mem$mem" (80 + i) v)
          (List.init 16 (fun i -> i + 1)))
      ~finished:(fun ~peek -> peek "accel$state" = done_state)
  | "k5soc" ->
    let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:16 ~reps:8 ~dst:60 in
    go
      ~circuit:(fun () -> Socgen.Kite5_core.soc ())
      ~setup:(fun ~poke ->
        List.iteri (fun i w -> poke ~mem:"core$imem" i w) (Socgen.Kite_isa.assemble program);
        List.iter (fun i -> poke ~mem:"mem$mem" (32 + i) (i * 3)) (List.init 16 Fun.id))
      ~finished:(fun ~peek -> peek "core$halted_r" = 1)
  | _ -> Fmt.pr "validate supports: soc, dramsoc, k5soc, sha3, gemmini (use 'run' for other designs)@.");
  match profile_file with
  | None -> ()
  | Some path ->
    (* Both partitioned runs (exact and fast) accumulated into the one
       sink, so the profile covers the whole validation. *)
    Telemetry.Profile.write profile ~path;
    Telemetry.Profile.write_trace profile ~path:(path ^ ".trace.json");
    Fmt.pr "profile written to %s (flamegraph view: %s.trace.json)@." path path;
    print_string (Telemetry.Profile.report_string profile)

let validate_cmd =
  Cmd.v
    (Cmd.info "validate" ~doc:"Table II methodology: monolithic vs exact vs fast cycle counts.")
    Term.(
      const validate $ design_arg $ scheduler_arg $ batch_cycles_arg
      $ spin_budget_arg $ placement_arg $ engine_arg $ lanes_arg
      $ wave_out_arg $ profile_file_arg)

let runs_arg = Arg.(value & opt int 100 & info [ "runs" ] ~doc:"Simulations in the campaign.")

let cycles_per_run_arg =
  Arg.(
    value
    & opt int 1_000_000_000
    & info [ "cycles-per-run" ] ~doc:"Target cycles per simulation.")

let advise design runs cycles_per_run =
  let plan =
    Fireaxe.compile
      ~config:(config_of design Fireaxe.Spec.Exact None None)
      (design.d_circuit ())
  in
  let unit_estimates = List.map (fun (_, est, _, _) -> est) (Fireaxe.utilization plan) in
  let boundary = Fireaxe.Plan.total_boundary_width plan in
  let advice =
    Platform.Advisor.advise ~n_fpgas:(Fireaxe.Plan.n_units plan) ~boundary_bits:boundary
      ~cycles_per_run ~runs ~unit_estimates
  in
  Fmt.pr "%a@.%a@.recommendation: %s@." Platform.Advisor.pp_estimate
    advice.Platform.Advisor.a_on_prem Platform.Advisor.pp_estimate
    advice.Platform.Advisor.a_cloud advice.Platform.Advisor.a_recommendation

let emit design path =
  Firrtl.Text.save (design.d_circuit ()) ~path;
  Fmt.pr "wrote %s@." path

let emit_path_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc:"Output path.")

(* The TracerV bridge as a CLI verb: trace the design's core through a
   partitioned run, print the disassembled head of the trace and the
   FirePerf hot-PC profile. *)
let trace design mode select routers cycles head =
  let core_signals =
    match design.d_name with
    | "soc" -> Some ("tile$core$pc", "tile$core$retired_count", "mem$mem")
    | "k5soc" -> Some ("core$mw_pc", "core$retired_count", "core$imem")
    | _ -> None
  in
  match core_signals with
  | None -> Fmt.pr "trace supports: soc, k5soc@."
  | Some (pc, retired, imem) ->
    let circuit = design.d_circuit () in
    let plan = Fireaxe.compile ~config:(config_of design mode select routers) circuit in
    let h = Fireaxe.instantiate plan in
    let program = Socgen.Kite_isa.sum_repeat_program ~base:32 ~n:16 ~reps:8 ~dst:60 in
    let iu = Fireaxe.Runtime.locate h imem in
    List.iteri
      (fun i w -> Rtlsim.Sim.poke_mem (Fireaxe.Runtime.sim_of h iu) imem i w)
      (Socgen.Kite_isa.assemble program);
    let mu = Fireaxe.Runtime.locate h "mem$mem" in
    List.iter
      (fun i -> Rtlsim.Sim.poke_mem (Fireaxe.Runtime.sim_of h mu) "mem$mem" (32 + i) (i * 3))
      (List.init 16 Fun.id);
    let events = Fireaxe.Tracer.of_handle h ~pc ~retired ~cycles in
    Fmt.pr "%d commits in %d cycles (IPC %.3f)@." (List.length events) cycles
      (Fireaxe.Tracer.ipc events ~cycles);
    let fetch a = Rtlsim.Sim.peek_mem (Fireaxe.Runtime.sim_of h iu) imem a in
    let disasm w = Socgen.Kite_isa.to_string (Socgen.Kite_isa.decode w) in
    List.iteri
      (fun i l -> if i < head then Fmt.pr "%s@." l)
      (Fireaxe.Tracer.render events ~fetch ~disasm);
    Fmt.pr "hot PCs:@.";
    List.iteri
      (fun i (pcv, n) ->
        if i < 5 then Fmt.pr "  %04x %5d  %s@." pcv n (disasm (fetch pcv)))
      (Fireaxe.Tracer.histogram events)

let head_arg =
  Arg.(value & opt int 12 & info [ "head" ] ~doc:"Trace lines to print.")

let trace_cmd =
  Cmd.v
    (Cmd.info "trace" ~doc:"TracerV: committed-instruction trace + hot-PC profile of a partitioned run.")
    Term.(
      const trace $ design_arg $ mode_arg $ select_arg $ routers_arg $ cycles_arg $ head_arg)

let emit_cmd =
  Cmd.v
    (Cmd.info "emit" ~doc:"Serialize a generated design to the textual circuit format.")
    Term.(const emit $ design_arg $ emit_path_arg)

let advise_cmd =
  Cmd.v
    (Cmd.info "advise"
       ~doc:"Hybrid cloud/on-prem deployment advice for a simulation campaign (paper              Section VIII-A).")
    Term.(const advise $ design_arg $ runs_arg $ cycles_per_run_arg)

(* ------------------------------------------------------------------ *)
(* Binary waveform store                                               *)
(* ------------------------------------------------------------------ *)

module Wavestore = Fireaxe.Debug.Wavestore

let slurp path =
  match open_in_bin path with
  | exception Sys_error m ->
    Fmt.epr "%s@." m;
    exit 2
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    really_input_string ic (in_channel_length ic)

let load_wave path =
  match Wavestore.Reader.of_string (slurp path) with
  | r -> r
  | exception Wavestore.Corrupt m ->
    Fmt.epr "%s: not a %s file (%s)@." path Wavestore.schema m;
    exit 2

let wave_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:"Binary waveform store, as written by run/validate $(b,--wave-out).")

let wave_info path =
  let r = load_wave path in
  Fmt.pr "schema     %s@." Wavestore.schema;
  Fmt.pr "bytes      %d@." (Unix.stat path).Unix.st_size;
  Fmt.pr "samples    %d@." (Wavestore.Reader.sample_count r);
  Fmt.pr "keyframes  %d (every %d samples)@."
    (Wavestore.Reader.keyframe_count r)
    (Wavestore.Reader.keyframe_every r);
  (match (Wavestore.Reader.first_cycle r, Wavestore.Reader.last_cycle r) with
  | Some a, Some b -> Fmt.pr "cycles     %d..%d@." a b
  | _ -> Fmt.pr "cycles     (no samples)@.");
  Fmt.pr "signals    %d@." (Array.length (Wavestore.Reader.signals r));
  Array.iter
    (fun (n, w) -> Fmt.pr "  %-32s %2d bit%s@." n w (if w = 1 then "" else "s"))
    (Wavestore.Reader.signals r)

let wave_info_cmd =
  Cmd.v
    (Cmd.info "info" ~doc:"Print header, index and signal table of a waveform store.")
    Term.(const wave_info $ wave_file_arg)

let wave_slice path lo hi =
  let r = load_wave path in
  let names = Array.map fst (Wavestore.Reader.signals r) in
  List.iter
    (fun (c, changes) ->
      Fmt.pr "%d %s@." c
        (String.concat " "
           (List.map (fun (i, v) -> Printf.sprintf "%s=%d" names.(i) v) changes)))
    (Wavestore.Reader.slice r ~lo ~hi)

let wave_from_arg =
  Arg.(value & opt int 0 & info [ "from" ] ~docv:"CYCLE" ~doc:"First cycle of the slice.")

let wave_to_arg =
  Arg.(
    value & opt int max_int
    & info [ "to" ] ~docv:"CYCLE" ~doc:"Last cycle of the slice (inclusive).")

let wave_slice_cmd =
  Cmd.v
    (Cmd.info "slice"
       ~doc:
         "Print a cycle range of the store: the first line is a full snapshot \
          (reconstructed via the keyframe index, not a linear scan), later lines \
          carry only the signals that changed.")
    Term.(const wave_slice $ wave_file_arg $ wave_from_arg $ wave_to_arg)

let wave_to_vcd path out =
  let r = load_wave path in
  let vcd = Wavestore.Reader.to_vcd r in
  match out with
  | None -> print_string vcd
  | Some o ->
    let oc = open_out_bin o in
    output_string oc vcd;
    close_out oc;
    Fmt.pr "wrote %s (%d signals, %d samples)@." o
      (Array.length (Wavestore.Reader.signals r))
      (Wavestore.Reader.sample_count r)

let wave_vcd_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output VCD path (default: stdout).")

let wave_to_vcd_cmd =
  Cmd.v
    (Cmd.info "to-vcd"
       ~doc:
         "Convert a waveform store to VCD, losslessly — byte-identical to the VCD a \
          direct $(b,--vcd) capture of the same probes would have written.")
    Term.(const wave_to_vcd $ wave_file_arg $ wave_vcd_out_arg)

let wave_diff_files a b =
  let ra = load_wave a in
  let bc = slurp b in
  (* The right-hand side may be another store or a VCD; a store always
     starts with the schema magic, so parse failure means VCD. *)
  let issues =
    match Wavestore.Reader.of_string bc with
    | rb -> Wavestore.diff_stores ra rb
    | exception Wavestore.Corrupt _ -> Wavestore.diff_vcd ra bc
  in
  match issues with
  | [] ->
    Fmt.pr "match: %s and %s carry the same waveforms (%d signals, %d samples)@." a b
      (Array.length (Wavestore.Reader.signals ra))
      (Wavestore.Reader.sample_count ra)
  | l ->
    List.iter (fun m -> Fmt.epr "  %s@." m) l;
    Fmt.epr "%d difference(s) between %s and %s@." (List.length l) a b;
    exit 6

let wave_b_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"OTHER" ~doc:"Second trace: a waveform store or a VCD file.")

let wave_diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare a waveform store against another store or a VCD capture of the \
          same signals; exits 6 when any sample differs.")
    Term.(const wave_diff_files $ wave_file_arg $ wave_b_arg)

let wave_cmd =
  Cmd.group
    (Cmd.info "wave"
       ~doc:
         "Inspect, slice, convert and compare compact binary waveform stores \
          (schema fireaxe-wave-1) written by $(b,--wave-out).")
    [ wave_info_cmd; wave_slice_cmd; wave_to_vcd_cmd; wave_diff_cmd ]

(* ------------------------------------------------------------------ *)
(* Simulation service                                                   *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/fireaxe-service.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket of the simulation service.")

let board_arg =
  Arg.(
    value
    & opt (enum [ ("u250", Platform.Fpga.u250); ("vu9p_f1", Platform.Fpga.vu9p_f1) ])
        Platform.Fpga.u250
    & info [ "board" ] ~doc:"FPGA board modeling the admission budget.")

let serve socket state_dir board threshold no_pack pack_wait queue_wait max_sessions
    metrics =
  let telemetry = if metrics <> None then Telemetry.create () else Telemetry.null in
  let cfg =
    {
      (Service.Server.default_config ~socket_path:socket) with
      Service.Server.state_dir;
      board;
      fit_threshold = threshold;
      pack = not no_pack;
      pack_wait;
      queue_wait;
      max_sessions;
      telemetry;
    }
  in
  Fmt.pr "fireaxe service: listening on %s (budget %s at %.0f%%, packing %s%s)@." socket
    board.Platform.Fpga.board_name (threshold *. 100.)
    (if no_pack then "off" else "on")
    (match state_dir with
    | Some d -> Printf.sprintf ", state under %s" d
    | None -> ", no state dir");
  Fun.protect
    ~finally:(fun () ->
      match metrics with
      | Some path ->
        Telemetry.write_metrics telemetry ~path;
        Fmt.pr "metrics written to %s@." path
      | None -> ())
    (fun () -> Service.Server.run cfg);
  Fmt.pr "fireaxe service: shut down@."

let state_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "Directory for session checkpoint bundles; enables eviction, \
           $(b,checkpoint)/$(b,evict) and restart resurrection.")

let threshold_arg =
  Arg.(
    value & opt float 0.85
    & info [ "threshold" ] ~doc:"Routability threshold of the admission fit check.")

let no_pack_arg =
  Arg.(
    value & flag
    & info [ "no-pack" ]
        ~doc:"Disable tenant packing: every session gets a private engine.")

let pack_wait_arg =
  Arg.(
    value & opt float 0.2
    & info [ "pack-wait" ] ~docv:"SECONDS"
        ~doc:
          "How long a packed tenant's step may stall on the credit barrier before it \
           is detached into a private engine.")

let queue_wait_arg =
  Arg.(
    value & opt float 30.
    & info [ "queue-wait" ] ~docv:"SECONDS"
        ~doc:"How long a queue=1 create may wait for capacity before rejection.")

let max_sessions_arg =
  Arg.(value & opt int 64 & info [ "max-sessions" ] ~doc:"Session cap.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the simulation service: concurrent sessions over one socket, with \
          admission control against an FPGA budget and same-design tenant packing.")
    Term.(
      const serve $ socket_arg $ state_dir_arg $ board_arg $ threshold_arg $ no_pack_arg
      $ pack_wait_arg $ queue_wait_arg $ max_sessions_arg $ metrics_arg)

(* One service request per invocation: the scriptable face of the
   client library. *)
let client_run socket engine lanes pack queue args =
  let c = Service.Client.connect ~retry_for:5. ~socket_path:socket () in
  Fun.protect ~finally:(fun () -> Service.Client.close c) @@ fun () ->
  let int w = Libdn.Wire.int_word ~context:"client" w in
  match args with
  | [ "create"; d ] -> (
    match parse_design d with
    | Error (`Msg m) ->
      Fmt.epr "%s@." m;
      exit 2
    | Ok design ->
      let r =
        Service.Client.create ~engine:(Rtlsim.Sim.engine_name engine) ~lanes ~pack ~queue c
          ~design:(Firrtl.Text.emit (design.d_circuit ()))
      in
      Fmt.pr "session %s cycle %d packed %b group %d engine-lanes %d@."
        r.Service.Client.c_sid r.Service.Client.c_cycle r.Service.Client.c_packed
        r.Service.Client.c_group r.Service.Client.c_lanes)
  | [ "step"; sid; n ] -> Fmt.pr "cycle %d@." (Service.Client.step c ~sid (int n))
  | [ "step-async"; sid; n ] ->
    let cycle, pending = Service.Client.step_async c ~sid (int n) in
    Fmt.pr "cycle %d pending %d@." cycle pending
  | [ "wait"; sid ] -> Fmt.pr "cycle %d@." (Service.Client.wait c ~sid)
  | [ "set"; sid; name; v ] -> Service.Client.set c ~sid name (int v)
  | [ "get"; sid; name ] -> Fmt.pr "%d@." (Service.Client.get c ~sid name)
  | "probe" :: sid :: names ->
    List.iter2
      (fun n v -> Fmt.pr "%s %d@." n v)
      names
      (Service.Client.probe c ~sid names)
  | [ "poke"; sid; mem; addr; v ] -> Service.Client.poke_mem c ~sid mem (int addr) (int v)
  | [ "peek"; sid; mem; addr ] ->
    Fmt.pr "%d@." (Service.Client.peek_mem c ~sid mem (int addr))
  | [ "checkpoint"; sid ] ->
    let cycle, path = Service.Client.checkpoint c ~sid in
    Fmt.pr "cycle %d bundle %s@." cycle path
  | [ "evict"; sid ] -> Fmt.pr "evicted at cycle %d@." (Service.Client.evict c ~sid)
  | [ "resume"; sid ] -> Fmt.pr "cycle %d@." (Service.Client.resume c ~sid)
  | [ "kill"; sid ] -> Service.Client.kill c ~sid
  | [ "list" ] ->
    List.iter
      (fun r ->
        Fmt.pr "%-8s %-8s cycle %-8d %-8s group %-3d lane %-3d pending %d@."
          r.Service.Protocol.r_sid r.Service.Protocol.r_status r.Service.Protocol.r_cycle
          r.Service.Protocol.r_engine r.Service.Protocol.r_group r.Service.Protocol.r_lane
          r.Service.Protocol.r_pending)
      (Service.Client.list c)
  | [ "stats" ] -> print_endline (Telemetry.Json.to_string (Service.Client.stats c))
  | [ "shutdown" ] -> Service.Client.shutdown c
  | "watch" :: sid :: rest ->
    (* Tail a live session: subscribe, then print every pushed delta
       frame as a full "cycle N sig=v ..." snapshot line.  Options ride
       as k=v words like the wire protocol's own: every=N (push period),
       count=M (exit after M frames; 0 = forever), timeout=S. *)
    let opts, probes = Service.Protocol.split_options rest in
    let bad_opt k allowed =
      Fmt.epr "unknown %s option %S (try: %s)@." "watch" k allowed;
      exit 2
    in
    List.iter
      (fun (k, _) ->
        if not (List.mem k [ "every"; "count"; "timeout" ]) then
          bad_opt k "every=N, count=M, timeout=S")
      opts;
    if probes = [] then begin
      Fmt.epr "watch: no probe signals given@.";
      exit 2
    end;
    let geti k d = match List.assoc_opt k opts with Some v -> int v | None -> d in
    let timeout =
      match List.assoc_opt "timeout" opts with
      | None -> 30.
      | Some v -> (
        match float_of_string_opt v with
        | Some f -> f
        | None ->
          Fmt.epr "watch: timeout=%S is not a number@." v;
          exit 2)
    in
    let count = geti "count" 0 in
    let wid = Service.Client.subscribe ~every:(geti "every" 1) c ~sid ~probes in
    let seen = ref 0 in
    while count = 0 || !seen < count do
      match Service.Client.next_push ~timeout c with
      | None ->
        Fmt.epr "watch: no push within %.0fs (session done, killed, or idle?)@." timeout;
        exit 3
      | Some (Service.Client.Watch { w_wid; w_cycle; w_values; _ }) when w_wid = wid ->
        incr seen;
        Fmt.pr "cycle %d %s@." w_cycle
          (String.concat " " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) w_values))
      | Some _ -> ()
    done
  | "events" :: rest ->
    (* Tail the server lifecycle journal as JSONL, one fireaxe-events-1
       document per line.  from=N replays retained history first. *)
    let opts, extra = Service.Protocol.split_options rest in
    if extra <> [] then begin
      Fmt.epr "events takes only from=N, count=M, timeout=S options@.";
      exit 2
    end;
    List.iter
      (fun (k, _) ->
        if not (List.mem k [ "from"; "count"; "timeout" ]) then begin
          Fmt.epr "unknown events option %S (try: from=N, count=M, timeout=S)@." k;
          exit 2
        end)
      opts;
    let geti k d = match List.assoc_opt k opts with Some v -> int v | None -> d in
    let timeout =
      match List.assoc_opt "timeout" opts with
      | None -> 30.
      | Some v -> (
        match float_of_string_opt v with
        | Some f -> f
        | None ->
          Fmt.epr "events: timeout=%S is not a number@." v;
          exit 2)
    in
    let count = geti "count" 0 in
    let from = Option.map int (List.assoc_opt "from" opts) in
    let start = Service.Client.events ?from c in
    Fmt.epr "events: streaming from seq %d@." start;
    let seen = ref 0 in
    while count = 0 || !seen < count do
      match Service.Client.next_push ~timeout c with
      | None ->
        Fmt.epr "events: no event within %.0fs@." timeout;
        exit 3
      | Some (Service.Client.Event { e_json; _ }) ->
        incr seen;
        print_endline (Telemetry.Json.to_string e_json)
      | Some _ -> ()
    done
  | ws ->
    Fmt.epr
      "unknown client verb %S (try: create, step, step-async, wait, set, get, probe, \
       poke, peek, checkpoint, evict, resume, kill, list, stats, watch, events, \
       shutdown)@."
      (String.concat " " ws);
    exit 2

let client socket engine lanes pack queue args =
  try client_run socket engine lanes pack queue args with
  | Service.Client.Rejected m ->
    Fmt.epr "rejected: %s@." m;
    exit 7
  | Service.Client.Service_error m ->
    Fmt.epr "service error: %s@." m;
    exit 2
  | Libdn.Wire.Closed _ | Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
    Fmt.epr "cannot reach a service at %s (is 'fireaxe-cli serve' running?)@." socket;
    exit 2

let client_pack_arg =
  Arg.(
    value & opt bool true
    & info [ "pack" ] ~doc:"Allow create to land as a lane of a shared engine.")

let client_queue_arg =
  Arg.(
    value & flag
    & info [ "queue" ] ~doc:"Wait for capacity instead of taking a create rejection.")

let client_args =
  Arg.(value & pos_all string [] & info [] ~docv:"VERB" ~doc:"Request and its arguments.")

let client_cmd =
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running simulation service (see 'serve').")
    Term.(
      const client $ socket_arg $ engine_arg $ lanes_arg $ client_pack_arg
      $ client_queue_arg $ client_args)

(* The concurrent-session soak: N same-design sessions driven through
   interleaved lifecycles on separate connections — packed tenants
   filling the credit barrier round by round — with an optional
   mid-run eviction+resume and an optional mid-run chaos kill.  Every
   survivor must finish bit-exact against a monolithic reference sim;
   CI's service smoke rides on the exit code. *)
let soak socket design sessions cycles rounds evict_one kill_one =
  if sessions < 2 then begin
    Fmt.epr "soak needs at least 2 sessions@.";
    exit 2
  end;
  let circuit = design.d_circuit () in
  let text = Firrtl.Text.emit circuit in
  let per_round = max 1 (cycles / rounds) in
  let conns =
    Array.init sessions (fun _ ->
        Service.Client.connect ~retry_for:5. ~socket_path:socket ())
  in
  Fun.protect ~finally:(fun () -> Array.iter Service.Client.close conns) @@ fun () ->
  let created = Array.map (fun c -> Service.Client.create c ~design:text) conns in
  let sids = Array.map (fun r -> r.Service.Client.c_sid) created in
  let packed = Array.fold_left (fun n r -> if r.Service.Client.c_packed then n + 1 else n) 0 created in
  Fmt.pr "soak: %d sessions over %s (%d landed packed), %d rounds x %d cycles@." sessions
    design.d_name packed rounds per_round;
  let alive = Array.make sessions true in
  let killed = ref None in
  let evicted = ref None in
  for r = 1 to rounds do
    if r = max 2 (rounds / 2) then begin
      (if kill_one then begin
         (* Chaos: a tenant dies mid-run; its lane-mates must not notice. *)
         let victim = sessions - 1 in
         Service.Client.kill conns.(victim) ~sid:sids.(victim);
         alive.(victim) <- false;
         killed := Some sids.(victim);
         Fmt.pr "soak: killed %s mid-run@." sids.(victim)
       end);
      if evict_one then begin
        let v = Service.Client.evict conns.(0) ~sid:sids.(0) in
        evicted := Some (sids.(0), v);
        Fmt.pr "soak: evicted %s at cycle %d (next step resumes it)@." sids.(0) v
      end
    end;
    (* Fill the barrier first, then collect: every live tenant gets its
       credits before anyone blocks. *)
    Array.iteri
      (fun i c ->
        if alive.(i) then ignore (Service.Client.step_async c ~sid:sids.(i) per_round))
      conns;
    Array.iteri
      (fun i c -> if alive.(i) then ignore (Service.Client.wait c ~sid:sids.(i)))
      conns
  done;
  let total = rounds * per_round in
  let probes = design.d_probes in
  let mono = Rtlsim.Sim.of_circuit circuit in
  for _ = 1 to total do
    Rtlsim.Sim.step mono
  done;
  Rtlsim.Sim.eval_comb mono;
  let mismatches = ref 0 in
  Array.iteri
    (fun i c ->
      if alive.(i) then begin
        let cyc = Service.Client.wait c ~sid:sids.(i) in
        if cyc <> total then begin
          incr mismatches;
          Fmt.epr "soak: %s finished at cycle %d, wanted %d@." sids.(i) cyc total
        end;
        if probes <> [] then
          List.iter2
            (fun name v ->
              let m = Rtlsim.Sim.get mono name in
              if v <> m then begin
                incr mismatches;
                Fmt.epr "soak: %s: %s = %d, monolithic %d@." sids.(i) name v m
              end)
            probes
            (Service.Client.probe c ~sid:sids.(i) probes)
      end)
    conns;
  (match !evicted with
  | Some (sid, _) -> Fmt.pr "soak: %s was evicted and resumed transparently@." sid
  | None -> ());
  (match !killed with
  | Some sid -> Fmt.pr "soak: %s was chaos-killed; survivors unaffected@." sid
  | None -> ());
  if !mismatches > 0 then begin
    Fmt.epr "soak: %d mismatch(es) across %d surviving sessions@." !mismatches
      (Array.fold_left (fun n a -> if a then n + 1 else n) 0 alive);
    exit 4
  end;
  Fmt.pr "soak: all survivors bit-exact against the monolithic reference over %d cycles@."
    total

let soak_sessions_arg =
  Arg.(value & opt int 8 & info [ "sessions" ] ~doc:"Concurrent sessions to drive.")

let soak_rounds_arg =
  Arg.(value & opt int 10 & info [ "rounds" ] ~doc:"Credit-grant rounds.")

let soak_evict_arg =
  Arg.(
    value & flag
    & info [ "evict-one" ]
        ~doc:
          "Mid-run, force one session out to its bundle and let the next step resume \
           it (server must run with --state-dir).")

let soak_no_kill_arg =
  Arg.(value & flag & info [ "no-kill" ] ~doc:"Skip the mid-run chaos kill.")

let soak_main socket design sessions cycles rounds evict_one no_kill =
  try soak socket design sessions cycles rounds evict_one (not no_kill) with
  | Service.Client.Rejected m ->
    Fmt.epr "rejected: %s@." m;
    exit 7
  | Service.Client.Service_error m ->
    Fmt.epr "service error: %s@." m;
    exit 2

let soak_cmd =
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Drive many concurrent sessions through interleaved lifecycles against a \
          running service and verify every survivor bit-exact.")
    Term.(
      const soak_main $ socket_arg $ design_arg $ soak_sessions_arg $ cycles_arg
      $ soak_rounds_arg $ soak_evict_arg $ soak_no_kill_arg)

let () =
  let info =
    Cmd.info "fireaxe-cli" ~version:"1.0.0"
      ~doc:"Partitioned FPGA-accelerated RTL simulation (FireAxe reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            describe_cmd; plan_cmd; run_cmd; trace_cmd; sweep_cmd; validate_cmd; advise_cmd;
            emit_cmd; wave_cmd; serve_cmd; client_cmd; soak_cmd;
          ]))
