(* Worker process for multi-process partitioned simulation: loads a
   (flattened) circuit from the .fir file given on the command line and
   serves the Remote_engine pipe protocol on stdin/stdout.  One worker
   hosts one partition unit — the process-level stand-in for one FPGA.
   An optional second argument picks the evaluation engine
   (closure|bytecode); the simulator's default applies otherwise.  An
   optional third argument sets the engine's lane count (vectorized
   N-copy execution; bytecode engine only).  An optional fourth
   argument, the literal token "profile", enables hot-path profiling of
   this worker's sim; the parent fetches the resulting one-line JSON
   slice with the "profile" command. *)

let () =
  if Array.length Sys.argv < 2 || Array.length Sys.argv > 5 then begin
    prerr_endline
      "usage: fireaxe-worker <circuit.fir> [closure|bytecode] [lanes] [profile]";
    exit 2
  end;
  let engine =
    if Array.length Sys.argv < 3 then None
    else
      match Rtlsim.Sim.engine_of_string Sys.argv.(2) with
      | Ok e -> Some e
      | Error m ->
        prerr_endline ("fireaxe-worker: " ^ m);
        exit 2
  in
  let lanes =
    if Array.length Sys.argv < 4 then None
    else
      match int_of_string_opt Sys.argv.(3) with
      | Some n when n >= 1 -> Some n
      | _ ->
        prerr_endline
          (Printf.sprintf "fireaxe-worker: bad lane count %S (want a positive int)"
             Sys.argv.(3));
        exit 2
  in
  let profile =
    if Array.length Sys.argv < 5 then Telemetry.Profile.null
    else if Sys.argv.(4) = "profile" then Telemetry.Profile.create ()
    else begin
      prerr_endline
        (Printf.sprintf "fireaxe-worker: bad flag %S (want \"profile\")"
           Sys.argv.(4));
      exit 2
    end
  in
  let circuit = Firrtl.Text.load ~path:Sys.argv.(1) in
  let sim = Rtlsim.Sim.of_circuit ?engine ?lanes ~profile circuit in
  let eng = Libdn.Engine.of_sim sim in
  (* Cones and checkpoints draw from SEPARATE id counters: cone ids are
     then a pure function of registration order, which is what lets a
     supervisor respawn a dead worker and replay the registrations with
     every previously handed-out id still valid. *)
  let cones = Hashtbl.create 8 in
  let next_cone = ref 0 in
  let checkpoints = Hashtbl.create 8 in
  let next_ckpt = ref 0 in
  let fresh tbl counter v =
    let id = !counter in
    incr counter;
    Hashtbl.replace tbl id v;
    id
  in
  let reply fmt =
    Printf.ksprintf
      (fun line ->
        print_string line;
        print_newline ();
        flush stdout)
      fmt
  in
  let words = Libdn.Wire.words in
  let bad line = failwith (Printf.sprintf "fireaxe-worker: bad command %S" line) in
  let running = ref true in
  reply "ready";
  while !running do
    match input_line stdin with
    | exception End_of_file -> running := false
    | line -> (
      match words line with
      | [ "set"; name; v ] -> eng.Libdn.Engine.set_input name (int_of_string v)
      | [ "get"; name ] -> reply "%d" (eng.Libdn.Engine.get name)
      | [ "get"; name; lane ] ->
        (* Per-lane read: lets the parent check lane agreement or probe
           an individual copy when the engine runs several lanes. *)
        reply "%d" (Rtlsim.Sim.get ~lane:(int_of_string lane) sim name)
      | [ "lanes" ] -> reply "%d" (Rtlsim.Sim.lanes sim)
      | [ "eval" ] -> eng.Libdn.Engine.eval_comb ()
      | [ "step" ] -> eng.Libdn.Engine.step_seq ()
      | "cone" :: roots ->
        reply "%d" (fresh cones next_cone (eng.Libdn.Engine.make_cone_eval roots))
      | [ "runcone"; id ] -> (Hashtbl.find cones (int_of_string id)) ()
      | [ "deps"; port ] ->
        reply "%s" (String.concat " " (eng.Libdn.Engine.output_comb_deps port))
      | [ "checkpoint" ] ->
        reply "%d" (fresh checkpoints next_ckpt (eng.Libdn.Engine.checkpoint ()))
      | [ "restore"; id ] -> (Hashtbl.find checkpoints (int_of_string id)) ()
      | [ "poke"; mem; addr; v ] ->
        Rtlsim.Sim.poke_mem sim mem (int_of_string addr) (int_of_string v)
      | [ "peek"; mem; addr ] -> reply "%d" (Rtlsim.Sim.peek_mem sim mem (int_of_string addr))
      | "sample" :: names ->
        (* Batched signal read for waveform capture: one round trip
           returns every value, space-joined, in request order. *)
        reply "%s"
          (String.concat " "
             (List.map (fun n -> string_of_int (eng.Libdn.Engine.get n)) names))
      | [ "width"; name ] ->
        (* Signal width in bits; -1 when the name is not a signal here
           (memories included: they cannot be waveform-sampled). *)
        reply "%d"
          (match Hashtbl.find_opt sim.Rtlsim.Sim.slots name with
          | Some i -> sim.Rtlsim.Sim.widths.(i)
          | None -> -1)
      | [ "has"; name ] ->
        reply "%d"
          (if Hashtbl.mem sim.Rtlsim.Sim.slots name || Hashtbl.mem sim.Rtlsim.Sim.mems name
           then 1
           else 0)
      | [ "savestate" ] ->
        (* Framed multi-line reply: "state <n>" then the n lines of the
           standard simulator-state text. *)
        let text = Rtlsim.Sim.state_to_string (Rtlsim.Sim.save_state sim) in
        let lines =
          String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
        in
        reply "state %d" (List.length lines);
        List.iter (fun l -> reply "%s" l) lines
      | [ "loadstate"; n ] ->
        (* The n state-text lines follow on stdin. *)
        let n = int_of_string n in
        let buf = Buffer.create 4096 in
        (try
           for _ = 1 to n do
             Buffer.add_string buf (input_line stdin);
             Buffer.add_char buf '\n'
           done;
           Rtlsim.Sim.restore_state sim
             (Rtlsim.Sim.state_of_string (Buffer.contents buf));
           reply "ok"
         with
        | End_of_file -> running := false
        | Rtlsim.Sim.Sim_error m -> reply "error: %s" m)
      | [ "profile" ] -> reply "%s" (Telemetry.Profile.slice_string profile)
      | [ "quit" ] -> running := false
      | _ -> bad line)
  done
